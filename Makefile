# Convenience targets for the hypersphere-dominance reproduction.

PYTHON ?= python

.PHONY: install test lint fuzz chaos stream-chaos bench bench-smoke serve-smoke serve-procs-chaos examples experiments claims profile clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Domain-aware static analysis (docs/static-analysis.md) plus the
# strict-typing gate.  mypy is optional locally; CI always has it.
lint:
	$(PYTHON) -m repro.analysis
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy --strict src/repro; \
	else \
		echo "mypy not installed; skipping the typing gate (CI runs it)"; \
	fi

# The long hypothesis profile plus the robustness/fault suites: many
# more examples, fresh seeds each run.
fuzz:
	HYPOTHESIS_PROFILE=fuzz $(PYTHON) -m pytest -q \
		tests/test_boundary_fuzz.py tests/test_faults.py \
		tests/test_robust_exact.py tests/test_robust_decision.py \
		tests/test_criteria_properties.py

# The resilience gate (docs/resilience.md): the chaos matrix (every
# fault seam x mode), budget/degradation behaviour, snapshot integrity,
# the serve seam matrix, and the idle-budget overhead bound.
chaos:
	$(PYTHON) -m pytest -q \
		tests/test_chaos.py tests/test_resilience.py \
		tests/test_snapshot.py tests/test_serve_chaos.py \
		benchmarks/test_budget_overhead.py

# The streaming durability gate (docs/streaming.md): the crash matrix
# (SIGKILL at every WAL/compaction seam under load) plus the WAL,
# overlay, engine, property and serve-mutation suites.
stream-chaos:
	$(PYTHON) -m pytest -q \
		tests/test_stream_chaos.py tests/test_stream_wal.py \
		tests/test_stream_overlay.py tests/test_stream_engine.py \
		tests/test_stream_property.py tests/test_serve_mutate.py

# The serving gate (docs/serving.md): boot a server on a fixture
# snapshot, fire a fault-injected burst over real TCP, and fail unless
# every response is 200/206/429 and /metrics scrapes — then the full
# serve test suite (protocol, admission, breaker, retry, end-to-end,
# concurrency).
serve-smoke:
	$(PYTHON) -m repro serve smoke
	$(PYTHON) -m repro serve smoke --seam queue --mode nan --every 2
	$(PYTHON) -m pytest -q \
		tests/test_serve_protocol.py tests/test_serve_admission.py \
		tests/test_serve_app.py tests/test_serve_concurrency.py

# The worker-pool gate (docs/serving.md, supervised multi-process
# serving): the SIGKILL chaos matrix — workers killed mid-load by pid
# and through the worker_kill/worker_heartbeat/worker_spawn seams —
# plus the supervisor unit suite and a supervised smoke burst.
serve-procs-chaos:
	$(PYTHON) -m pytest -q \
		tests/test_serve_procs_chaos.py tests/test_serve_supervisor.py
	$(PYTHON) -m repro serve smoke --workers 2 --every 4

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The standing perf observatory (docs/benchmarking.md): sweep the
# pinned quick points into a fresh trajectory and diff it against the
# committed BENCH_*.json baselines.  The compare step is a soft gate
# (the leading '-'): cross-machine timing differences are reported, not
# failed, while `repro bench compare` itself still exits non-zero on a
# past-threshold regression for same-machine CI lanes.
bench-smoke:
	$(PYTHON) -m repro bench --quick --out-dir .bench-smoke
	-$(PYTHON) -m repro bench compare --baseline . --current .bench-smoke \
		--threshold 0.5

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

experiments:
	$(PYTHON) -m repro all

claims:
	$(PYTHON) -m repro claims

profile:
	$(PYTHON) -m repro stats

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist src/*.egg-info .domlint_cache .bench-smoke
	find . -name __pycache__ -type d -exec rm -rf {} +
