# Convenience targets for the hypersphere-dominance reproduction.

PYTHON ?= python

.PHONY: install test bench examples experiments claims profile clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

experiments:
	$(PYTHON) -m repro all

claims:
	$(PYTHON) -m repro claims

profile:
	$(PYTHON) -m repro stats

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
