# Convenience targets for the hypersphere-dominance reproduction.

PYTHON ?= python

.PHONY: install test fuzz bench examples experiments claims profile clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# The long hypothesis profile plus the robustness/fault suites: many
# more examples, fresh seeds each run.
fuzz:
	HYPOTHESIS_PROFILE=fuzz $(PYTHON) -m pytest -q \
		tests/test_boundary_fuzz.py tests/test_faults.py \
		tests/test_robust_exact.py tests/test_robust_decision.py \
		tests/test_criteria_properties.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

experiments:
	$(PYTHON) -m repro all

claims:
	$(PYTHON) -m repro claims

profile:
	$(PYTHON) -m repro stats

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
