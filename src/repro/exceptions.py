"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GeometryError(ReproError):
    """An invalid geometric object or operation (e.g. a negative radius)."""


class DimensionalityMismatchError(GeometryError):
    """Two geometric objects with different dimensionalities were combined."""

    def __init__(self, expected: int, actual: int) -> None:
        super().__init__(
            f"dimensionality mismatch: expected {expected}, got {actual}"
        )
        self.expected = expected
        self.actual = actual


class CriterionError(ReproError):
    """A dominance decision criterion was invoked on unsupported input."""


class IndexStructureError(ReproError):
    """An index structure (e.g. the SS-tree) detected an invalid state."""


#: Deprecated alias for :class:`IndexStructureError`.  The old name carried
#: a trailing underscore to avoid shadowing the built-in :class:`IndexError`;
#: the new name needs no such workaround.  Kept for one release so external
#: ``except IndexError_`` clauses keep working.
IndexError_ = IndexStructureError


class CertificationError(ReproError):
    """A certified (tri-state) dominance decision could not be produced."""


class QueryError(ReproError):
    """A query (kNN / RkNN) received invalid parameters."""


class ValidationError(QueryError):
    """User-supplied input failed validation before any work started.

    Subclasses :class:`QueryError` so callers that already catch the
    broader class keep working; new code should catch this type to
    distinguish bad input from mid-query failures.
    """


class ServeError(ReproError):
    """The query service could not be configured or operated."""


class ProtocolError(ServeError):
    """A malformed or over-limit HTTP request reached the service.

    Raised by :mod:`repro.serve.protocol` while parsing a request; the
    connection handler answers with a 4xx status instead of letting the
    connection die, so a garbage client can never take a worker down.
    """


class SnapshotError(ReproError):
    """An index snapshot could not be written or read."""


class SnapshotCorruptionError(SnapshotError):
    """A snapshot failed an integrity check (magic, length or CRC).

    Raised by :func:`repro.index.snapshot.load` / ``verify`` whenever
    the bytes on disk cannot be proven to match what ``save`` wrote —
    corruption is always surfaced as this typed error, never as a
    silently wrong index.
    """


class StreamError(ReproError):
    """The durable streaming-mutation pipeline failed an operation."""


class WalError(StreamError):
    """The write-ahead log could not be opened, appended or replayed."""


class WalCorruptionError(WalError):
    """A WAL frame failed an integrity check (magic, length or CRC).

    Raised only for damage *before* the recoverable tail: a torn or
    corrupt final frame is truncated silently (the recovery contract),
    while an unreadable header or an impossible structural claim is
    surfaced as this typed error, never as silently wrong mutations.
    """


class CompactionError(StreamError):
    """A checkpoint/compaction cycle could not fold the overlay safely."""


class DatasetError(ReproError):
    """A dataset could not be generated or loaded."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""
