"""Checkpoint/compaction: fold the overlay into a fresh base snapshot.

The compaction state machine has exactly four externally visible steps,
and a crash between *any* two of them recovers to a consistent state —
either entirely the old snapshot-plus-WAL or entirely the new snapshot,
never a hybrid:

1. **Fold + save** — build the effective dataset
   (:meth:`~repro.stream.overlay.DeltaOverlay.fold` over the live base),
   rebuild an index of the same kind, and
   :func:`~repro.index.snapshot.save` it to ``<base>.next``.  ``save``
   is internally atomic (tmp + fsync + rename), so a crash here leaves
   at most a stray ``.next`` file that the next compaction overwrites.
2. **Rename** — :func:`_rename` (``os.replace``, the ``compact_rename``
   fault seam) moves ``<base>.next`` over the live snapshot path, then
   the directory is fsynced.  This is the commit point.
3. **WAL truncate** — the log's records are now folded into the base,
   so the segments are deleted.  A crash *before* this step is safe
   because WAL replay is idempotent over the new snapshot: inserts are
   upserts and deletes are idempotent tombstones, so re-applying the
   already-folded history changes nothing.
4. **Overlay clear** — in-memory only; rebuilt from the (now empty)
   WAL on restart regardless.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro import obs
from repro.exceptions import CompactionError
from repro.index import snapshot as snapshot_io
from repro.index.linear import LinearIndex
from repro.index.mtree import MTree
from repro.index.sstree import SSTree
from repro.index.vptree import VPTree
from repro.obs import names
from repro.stream.overlay import DeltaOverlay
from repro.stream.wal import WriteAheadLog, _fsync_directory

__all__ = ["CompactionResult", "compact", "rebuild_like"]


def _rename(source: str, destination: str) -> None:
    """Atomically commit the new snapshot; the ``compact_rename`` seam."""
    os.replace(source, destination)


@dataclass(frozen=True)
class CompactionResult:
    """What one compaction cycle did."""

    entries: int
    dropped_tombstones: int
    snapshot_bytes: int
    wal_segments_removed: int


def rebuild_like(template: object, entries: "list") -> object:
    """Build an index of the same kind as *template* over *entries*."""
    if isinstance(template, LinearIndex):
        return LinearIndex(entries)
    if isinstance(template, SSTree):
        return SSTree.bulk_load(entries, max_entries=template.max_entries)
    if isinstance(template, MTree):
        return MTree.build(entries, max_entries=template.max_entries)
    if isinstance(template, VPTree):
        return VPTree.build(entries, leaf_capacity=template.leaf_capacity)
    raise CompactionError(
        f"cannot rebuild index of kind {type(template).__name__!r}"
    )


def compact(
    base_index: object,
    overlay: DeltaOverlay,
    wal: WriteAheadLog,
    snapshot_path: str,
) -> "tuple[object, CompactionResult]":
    """Fold *overlay* into *base_index* and commit a fresh snapshot.

    Returns the new base index and a :class:`CompactionResult`.  On any
    failure before the rename, the old snapshot and WAL are untouched;
    after the rename, replaying the surviving WAL over the new snapshot
    is a no-op (idempotence), so every crash point recovers cleanly.
    """
    with obs.trace(names.COMPACT_RUN_SPAN):
        folded = overlay.fold(iter(base_index))  # type: ignore[call-overload]
        if not folded:
            raise CompactionError(
                "compaction would produce an empty index; "
                "refusing to fold away the last entry"
            )
        dropped = len(overlay.tombstones)
        try:
            new_index = rebuild_like(base_index, folded)
        except CompactionError:
            raise
        except Exception as error:
            if obs.ENABLED:
                obs.incr(names.COMPACT_FAILURES)
            raise CompactionError(f"index rebuild failed: {error}") from error

        next_path = snapshot_path + ".next"
        try:
            summary = snapshot_io.save(new_index, next_path)
        except Exception as error:
            if obs.ENABLED:
                obs.incr(names.COMPACT_FAILURES)
            raise CompactionError(f"snapshot save failed: {error}") from error

        try:
            _rename(next_path, snapshot_path)
        except Exception as error:
            if obs.ENABLED:
                obs.incr(names.COMPACT_FAILURES)
            try:
                os.unlink(next_path)
            except OSError:
                pass
            raise CompactionError(f"snapshot commit failed: {error}") from error
        _fsync_directory(os.path.dirname(snapshot_path) or ".")

        # Commit point passed: the WAL is now redundant.
        removed = wal.truncate()
        overlay.clear()

    if obs.ENABLED:
        obs.incr(names.COMPACT_RUNS)
        obs.incr(names.COMPACT_FOLDED_ENTRIES, len(folded))
        obs.incr(names.COMPACT_DROPPED_TOMBSTONES, dropped)
    return new_index, CompactionResult(
        entries=len(folded),
        dropped_tombstones=dropped,
        snapshot_bytes=int(summary["bytes"]),
        wal_segments_removed=removed,
    )
