"""Durable streaming mutations over immutable snapshot-backed indexes.

The paper's dominance queries were served only from bulk-loaded,
immutable snapshots; this package turns that archive into a live system
the robustness-first way — every acknowledged mutation survives a crash
at any instant, and recovery always produces a consistent index:

- :mod:`repro.stream.wal` — a CRC32-framed, versioned write-ahead log
  with atomic append, fsync-on-ack, segment rotation, and
  truncate-at-first-bad-frame recovery for torn/partial/corrupt tails;
- :mod:`repro.stream.overlay` — the mutable delta overlay (a memtable
  of inserts plus a tombstone set for deletes) merged into
  kNN/RkNN/top-k-dominating results at query time;
- :mod:`repro.stream.compact` — the checkpoint/compaction cycle that
  folds overlay + base snapshot into a fresh snapshot atomically and
  then truncates the WAL;
- :mod:`repro.stream.engine` — :class:`StreamingIndex`, the pipeline
  tying the three together behind ``insert``/``delete``/``query_*``.

The crash matrix (``tests/test_stream_chaos.py``) kills a child process
at every WAL/compaction seam under load and asserts that recovery loses
no acked mutation, applies no partial mutation, and answers queries
bit-identically to an oracle replay of the recovered history.  See
``docs/streaming.md`` for the WAL format, the recovery contract and the
compaction state machine.
"""

from __future__ import annotations

from repro.stream.compact import CompactionResult, compact
from repro.stream.engine import StreamingIndex
from repro.stream.overlay import DeltaOverlay
from repro.stream.wal import Mutation, WriteAheadLog

__all__ = [
    "CompactionResult",
    "DeltaOverlay",
    "Mutation",
    "StreamingIndex",
    "WriteAheadLog",
    "compact",
]
