"""The mutable delta overlay: a memtable plus tombstones over a snapshot.

The base index stays immutable; the overlay holds everything that
happened since the last compaction.  Inserts are *upserts* into an
insertion-ordered memtable, deletes are tombstones.  Replaying the same
WAL twice therefore converges to the same overlay — the idempotence the
crash-recovery contract relies on (a crash between the compaction
rename and the WAL truncate re-applies the whole log over the new
snapshot without harm).

Query-time merge semantics (consumed by ``overlay=`` keyword arguments
on :func:`repro.queries.knn.knn`, :func:`repro.queries.rknn.rknn` and
:func:`repro.queries.dominating.top_dominating`):

- base-index entries whose key is *shadowed* (tombstoned, or re-inserted
  with new geometry) are excluded before dominance decisions;
- memtable entries are offered as candidates through the same certified
  cascade as base entries — overlay candidates get no special epsilon,
  no shortcut, just a different source.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.geometry.hypersphere import Hypersphere
from repro.stream.wal import Mutation

__all__ = ["DeltaOverlay"]


class DeltaOverlay:
    """Inserts-since-compaction plus tombstones, with fold/merge helpers."""

    def __init__(self) -> None:
        self._memtable: "dict[object, Hypersphere]" = {}
        self._tombstones: "set[object]" = set()

    def __len__(self) -> int:
        """Number of live memtable entries (tombstones not counted)."""
        return len(self._memtable)

    def __bool__(self) -> bool:
        return bool(self._memtable) or bool(self._tombstones)

    @property
    def tombstones(self) -> "frozenset[object]":
        return frozenset(self._tombstones)

    # ------------------------------------------------------------------
    # Mutation application
    # ------------------------------------------------------------------
    def apply(self, mutation: Mutation) -> None:
        """Apply one WAL record.  Idempotent: replay converges."""
        if mutation.op == "insert":
            self._memtable[mutation.key] = mutation.sphere()
            self._tombstones.discard(mutation.key)
        else:
            self._memtable.pop(mutation.key, None)
            self._tombstones.add(mutation.key)

    def insert(self, key: object, sphere: Hypersphere) -> None:
        """Upsert *key* directly (engine path, after the WAL ack)."""
        self._memtable[key] = sphere
        self._tombstones.discard(key)

    def delete(self, key: object) -> None:
        """Tombstone *key* directly (engine path, after the WAL ack)."""
        self._memtable.pop(key, None)
        self._tombstones.add(key)

    def snapshot(self) -> "DeltaOverlay":
        """A shallow copy for lock-free reads while mutations continue."""
        copy = DeltaOverlay()
        copy._memtable = dict(self._memtable)
        copy._tombstones = set(self._tombstones)
        return copy

    # ------------------------------------------------------------------
    # Query-time merge interface
    # ------------------------------------------------------------------
    def shadowed_keys(self) -> "frozenset[object]":
        """Base-index keys the merge must ignore.

        Both tombstoned keys and re-inserted keys shadow their base
        entry — the memtable's copy is the live one.
        """
        return frozenset(self._tombstones) | frozenset(self._memtable)

    def entries(self) -> "Iterator[tuple[object, Hypersphere]]":
        """Live overlay entries, in insertion order (deterministic)."""
        return iter(self._memtable.items())

    def fold(
        self, base: Iterable["tuple[object, Hypersphere]"]
    ) -> "list[tuple[object, Hypersphere]]":
        """The effective dataset: base minus shadowed, plus memtable.

        This is both the compaction fold and the oracle used by the
        property tests — the single definition of what the merged index
        *means*.
        """
        shadowed = self.shadowed_keys()
        merged = [(key, sphere) for key, sphere in base if key not in shadowed]
        merged.extend(self._memtable.items())
        return merged

    def clear(self) -> None:
        """Drop everything (the compaction folded it into the base)."""
        self._memtable.clear()
        self._tombstones.clear()
