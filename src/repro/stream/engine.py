""":class:`StreamingIndex` — the durable mutation pipeline, assembled.

Layout of a streaming index directory::

    <dir>/base.snap    immutable snapshot (repro.index.snapshot format)
    <dir>/wal/         write-ahead log segments (repro.stream.wal)

The lifecycle is create → open → mutate/query → checkpoint → reopen:

- :meth:`StreamingIndex.create` bulk-loads the initial dataset and
  saves the base snapshot;
- :meth:`StreamingIndex.open` loads (and optionally ``verify``-checks)
  the snapshot, then replays the WAL into a fresh
  :class:`~repro.stream.overlay.DeltaOverlay` — the warm-restart path;
- :meth:`insert` / :meth:`delete` append to the WAL, fsync, apply to
  the overlay, and only then return the assigned sequence number — the
  returned seq *is* the durability ack;
- :meth:`query_knn` / :meth:`query_rknn` / :meth:`query_dominating`
  run the existing certified query paths with the overlay merged in;
- :meth:`checkpoint` folds overlay + base into a fresh snapshot via
  :func:`repro.stream.compact.compact` and truncates the WAL.

Thread safety: mutations and checkpoints serialise on an internal
lock; queries grab an overlay snapshot under the lock and then run
lock-free, so a long query never blocks the ingest path.
"""

from __future__ import annotations

import os
import threading
import time

from repro import obs
from repro.exceptions import StreamError
from repro.geometry.hypersphere import Hypersphere
from repro.index import snapshot as snapshot_io
from repro.obs import names
from repro.queries.dominating import top_k_dominating
from repro.queries.knn import knn_query
from repro.queries.rknn import rnn_candidates
from repro.queries.validation import validate_query
from repro.stream.compact import CompactionResult, compact, rebuild_like
from repro.stream.overlay import DeltaOverlay
from repro.stream.wal import (
    DEFAULT_SEGMENT_BYTES,
    Mutation,
    WriteAheadLog,
)

__all__ = ["SNAPSHOT_NAME", "WAL_DIRNAME", "StreamingIndex"]

SNAPSHOT_NAME = "base.snap"
WAL_DIRNAME = "wal"


class StreamingIndex:
    """A mutable, crash-durable index over an immutable base snapshot."""

    def __init__(
        self,
        directory: str,
        base: object,
        wal: WriteAheadLog,
        overlay: DeltaOverlay,
    ) -> None:
        self.directory = os.fspath(directory)
        self._base = base
        self._wal = wal
        self._overlay = overlay
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str,
        entries: "list[tuple[object, Hypersphere]]",
        *,
        kind: str = "linear",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> "StreamingIndex":
        """Initialise *directory* with a base snapshot over *entries*."""
        from repro.index.linear import LinearIndex
        from repro.index.mtree import MTree
        from repro.index.sstree import SSTree
        from repro.index.vptree import VPTree

        builders = {
            "linear": LinearIndex,
            "sstree": lambda items: SSTree.bulk_load(items),
            "mtree": lambda items: MTree.build(items),
            "vptree": lambda items: VPTree.build(items),
        }
        if kind not in builders:
            raise StreamError(
                f"unknown index kind {kind!r}; use one of {sorted(builders)}"
            )
        if not entries:
            raise StreamError("cannot create a streaming index with no entries")
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        index = builders[kind](list(entries))
        snapshot_io.save(index, os.path.join(directory, SNAPSHOT_NAME))
        return cls.open(directory, segment_bytes=segment_bytes)

    @classmethod
    def open(
        cls,
        directory: str,
        *,
        verify: bool = False,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        exclusive: bool = False,
    ) -> "StreamingIndex":
        """Warm restart: load the snapshot, replay the WAL, serve.

        With ``verify=True`` the snapshot passes the full
        :func:`repro.index.snapshot.verify` integrity check before use
        (the quarantine path the serve CLI takes).  ``exclusive=True``
        additionally takes the WAL's advisory owner lock
        (:meth:`repro.stream.wal.WriteAheadLog.open`) — the
        multi-process server's mutation worker opens this way so a
        wedged predecessor can never share the log with its
        replacement.
        """
        directory = os.fspath(directory)
        snapshot_path = os.path.join(directory, SNAPSHOT_NAME)
        if not os.path.exists(snapshot_path):
            raise StreamError(
                f"no base snapshot at {snapshot_path}; "
                "use StreamingIndex.create first"
            )
        with obs.trace(names.STREAM_OPEN_SPAN):
            if verify:
                snapshot_io.verify(snapshot_path)
            base = snapshot_io.load(snapshot_path)
            wal = WriteAheadLog.open(
                os.path.join(directory, WAL_DIRNAME),
                segment_bytes=segment_bytes,
                exclusive=exclusive,
            )
            overlay = DeltaOverlay()
            for record in wal.records():
                overlay.apply(record)
            if obs.ENABLED and wal.replayed:
                obs.incr(names.STREAM_REPLAYS)
        return cls(directory, base, wal, overlay)

    def close(self) -> None:
        with self._lock:
            self._wal.close()
            self._closed = True

    def __enter__(self) -> "StreamingIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self._base.dimension  # type: ignore[attr-defined]

    @property
    def base(self) -> object:
        """The immutable base index (replaced only by checkpoints)."""
        return self._base

    @property
    def overlay(self) -> DeltaOverlay:
        return self._overlay

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def last_seq(self) -> int:
        """The highest acked sequence number (0 when none yet)."""
        return self._wal.next_seq - 1

    def effective_entries(self) -> "list[tuple[object, Hypersphere]]":
        """The merged dataset: base minus shadowed, plus memtable."""
        with self._lock:
            overlay = self._overlay.snapshot()
            base = self._base
        return overlay.fold(iter(base))  # type: ignore[call-overload]

    def __len__(self) -> int:
        return len(self.effective_entries())

    # ------------------------------------------------------------------
    # Mutations (acked == durable)
    # ------------------------------------------------------------------
    def insert(self, key: object, sphere: Hypersphere) -> int:
        """Durably upsert ``key -> sphere``; returns the acked seq."""
        validate_query(sphere, self.dimension)
        started = time.perf_counter()
        with self._lock:
            self._ensure_open()
            acked = self._wal.append(Mutation.insert(key, sphere))
            self._overlay.insert(acked.key, sphere)
            overlay_size = len(self._overlay)
        if obs.ENABLED:
            obs.incr(names.STREAM_INSERTS)
            obs.incr(names.STREAM_MUTATIONS_ACKED)
            obs.observe(names.STREAM_OVERLAY_SIZE, overlay_size)
            obs.observe(
                names.STREAM_MUTATE_LATENCY_S, time.perf_counter() - started
            )
        return acked.seq

    def delete(self, key: object) -> int:
        """Durably tombstone *key*; returns the acked seq.

        Deleting an absent key is allowed (the tombstone is idempotent)
        — at-least-once clients can retry safely.
        """
        started = time.perf_counter()
        with self._lock:
            self._ensure_open()
            acked = self._wal.append(Mutation.delete(key))
            self._overlay.delete(acked.key)
            overlay_size = len(self._overlay)
        if obs.ENABLED:
            obs.incr(names.STREAM_DELETES)
            obs.incr(names.STREAM_MUTATIONS_ACKED)
            obs.observe(names.STREAM_OVERLAY_SIZE, overlay_size)
            obs.observe(
                names.STREAM_MUTATE_LATENCY_S, time.perf_counter() - started
            )
        return acked.seq

    def apply(self, mutation: Mutation) -> int:
        """Append a pre-built mutation (op dispatch helper)."""
        if mutation.op == "insert":
            return self.insert(mutation.key, mutation.sphere())
        return self.delete(mutation.key)

    def _ensure_open(self) -> None:
        if self._closed:
            raise StreamError("streaming index is closed")

    # ------------------------------------------------------------------
    # Queries (overlay-merged, same certified cascade)
    # ------------------------------------------------------------------
    def _capture(self) -> "tuple[object, DeltaOverlay]":
        with self._lock:
            return self._base, self._overlay.snapshot()

    def query_knn(self, query: Hypersphere, k: int, **kwargs: object) -> object:
        base, overlay = self._capture()
        return knn_query(base, query, k, overlay=overlay, **kwargs)  # type: ignore[arg-type]

    def query_rknn(self, query: Hypersphere, **kwargs: object) -> object:
        base, overlay = self._capture()
        return rnn_candidates(base, query, overlay=overlay, **kwargs)  # type: ignore[arg-type]

    def query_dominating(
        self, query: Hypersphere, k: int, **kwargs: object
    ) -> object:
        base, overlay = self._capture()
        return top_k_dominating(base, query, k, overlay=overlay, **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Checkpoint / compaction
    # ------------------------------------------------------------------
    def checkpoint(self) -> CompactionResult:
        """Fold the overlay into a fresh base snapshot and truncate.

        Serialises against mutations; a crash at any point recovers to
        the old state (pre-rename) or the new one (post-rename), never
        a hybrid — see :mod:`repro.stream.compact`.
        """
        with self._lock:
            self._ensure_open()
            if not self._overlay:
                return CompactionResult(
                    entries=len(self._base),  # type: ignore[arg-type]
                    dropped_tombstones=0,
                    snapshot_bytes=0,
                    wal_segments_removed=0,
                )
            new_base, result = compact(
                self._base,
                self._overlay,
                self._wal,
                os.path.join(self.directory, SNAPSHOT_NAME),
            )
            self._base = new_base
        return result

    def rebuild_base(self) -> None:
        """Fold in memory only (no snapshot write) — test/bench helper."""
        with self._lock:
            folded = self._overlay.fold(iter(self._base))  # type: ignore[call-overload]
            self._base = rebuild_like(self._base, folded)
            self._overlay.clear()
