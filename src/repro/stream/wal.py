"""The write-ahead log behind durable streaming mutations.

Every mutation is durable *before* it is acknowledged: :meth:`append`
frames the record, writes it through :func:`_io_write`, flushes, and
fsyncs through :func:`_fsync` — only then does the caller ack.  The
on-disk format mirrors the snapshot framing of
:mod:`repro.index.snapshot` byte for byte in spirit:

- each **segment** file (``wal-<number>.log``) starts with a magic
  string and a format version;
- each **record** is framed as ``length || payload || crc32(payload)``
  where the payload is compact JSON carrying the mutation's sequence
  number, operation, key and geometry.

Segments rotate once they exceed ``segment_bytes``; sequence numbers
are monotone across segments and compactions, so an acked seq uniquely
names one mutation forever.

**Recovery contract (truncate-at-first-bad-frame).**  A crash can tear
the final frame: a short length header, a partial payload, a missing or
wrong CRC.  :meth:`WriteAheadLog.open` replays segments in order and
stops at the first frame that fails any check; that segment is
truncated at the last good frame and every later segment is deleted.
Everything *before* the bad frame — which is exactly the acked history,
because frames are written and fsynced in order — is preserved.  A
CRC-valid frame whose payload is semantically malformed is different:
that is a software bug, not a torn write, and it surfaces as a typed
:class:`~repro.exceptions.WalCorruptionError` rather than silent data
loss.

Raw I/O goes through the module attributes :func:`_io_write`,
:func:`_io_read` and :func:`_fsync` so the fault harness
(:mod:`repro.robust.faults`, seams ``"wal_append"`` / ``"wal_read"`` /
``"wal_fsync"``) can corrupt bytes, skip syncs or explode mid-call; the
crash matrix additionally kills whole processes at these seams.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterator

try:  # pragma: no cover - fcntl is stdlib on every POSIX platform
    import fcntl
except ImportError:  # pragma: no cover - advisory locking unavailable
    fcntl = None  # type: ignore[assignment]

from repro import obs
from repro.exceptions import WalCorruptionError, WalError
from repro.geometry.hypersphere import Hypersphere
from repro.index.snapshot import _decode_key, _encode_key
from repro.obs import names

__all__ = ["MAGIC", "VERSION", "Mutation", "WriteAheadLog"]

MAGIC = b"HSDOMWAL"
VERSION = 1

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
#: Segment header: magic, format version, and the seq hint — the last
#: sequence number the log had assigned when this segment was created.
#: The hint is what keeps seqs monotone across a compaction (which
#: deletes every record) followed by a restart.
_HEADER_LEN = len(MAGIC) + _U32.size + _U64.size
_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.log$")

#: Default rotation threshold — small enough that the rotation path is
#: exercised by realistic test workloads, large enough to amortise the
#: per-segment header.
DEFAULT_SEGMENT_BYTES = 1 << 20

OPS = ("insert", "delete")


# ----------------------------------------------------------------------
# Raw I/O seams (patched by repro.robust.faults and the crash matrix)
# ----------------------------------------------------------------------
def _io_write(handle: BinaryIO, data: bytes) -> None:
    """Write *data*; the ``wal_append`` fault seam wraps this attribute."""
    handle.write(data)


def _io_read(handle: BinaryIO, size: int) -> bytes:
    """Read up to *size* bytes; the ``wal_read`` seam wraps this."""
    return handle.read(size)


def _fsync(fileno: int) -> None:
    """Durably flush *fileno*; the ``wal_fsync`` seam wraps this."""
    os.fsync(fileno)


# ----------------------------------------------------------------------
# The mutation record
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Mutation:
    """One durable mutation: an upsert of a keyed sphere, or a delete.

    ``seq`` is assigned by the WAL at append time and is unique and
    monotone for the lifetime of the log directory.  Deletes carry no
    geometry (``center``/``radius`` are ``None``).
    """

    seq: int
    op: str
    key: object
    center: "tuple[float, ...] | None" = None
    radius: "float | None" = None

    def sphere(self) -> Hypersphere:
        """The inserted geometry (raises for deletes)."""
        if self.op != "insert" or self.center is None or self.radius is None:
            raise WalError(f"mutation {self.seq} ({self.op}) carries no sphere")
        return Hypersphere(list(self.center), self.radius)

    def to_payload(self) -> bytes:
        body: "dict[str, object]" = {
            "seq": self.seq,
            "op": self.op,
            "key": _encode_key(self.key),
        }
        if self.op == "insert":
            body["center"] = list(self.center or ())
            body["radius"] = self.radius
        try:
            return json.dumps(
                body, allow_nan=False, separators=(",", ":")
            ).encode("utf-8")
        except ValueError as error:
            raise WalError(f"cannot serialise mutation: {error}") from error

    @classmethod
    def from_payload(cls, payload: bytes) -> "Mutation":
        """Decode a CRC-valid payload (malformed ⇒ typed corruption)."""
        try:
            body = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WalCorruptionError(
                f"WAL record is not valid JSON despite a passing CRC: {error}"
            ) from error
        if not isinstance(body, dict):
            raise WalCorruptionError("WAL record is not a JSON object")
        try:
            seq = int(body["seq"])
            op = str(body["op"])
            key = _decode_key(body["key"])
        except (KeyError, TypeError, ValueError) as error:
            raise WalCorruptionError(
                f"WAL record is structurally malformed: {error}"
            ) from error
        if op not in OPS:
            raise WalCorruptionError(f"WAL record has unknown op {op!r}")
        if op == "delete":
            return cls(seq=seq, op=op, key=key)
        try:
            center = tuple(float(c) for c in body["center"])
            radius = float(body["radius"])
        except (KeyError, TypeError, ValueError) as error:
            raise WalCorruptionError(
                f"WAL insert record has malformed geometry: {error}"
            ) from error
        return cls(seq=seq, op=op, key=key, center=center, radius=radius)

    @classmethod
    def insert(cls, key: object, sphere: Hypersphere, seq: int = 0) -> "Mutation":
        return cls(
            seq=seq,
            op="insert",
            key=key,
            center=tuple(float(c) for c in sphere.center),
            radius=float(sphere.radius),
        )

    @classmethod
    def delete(cls, key: object, seq: int = 0) -> "Mutation":
        return cls(seq=seq, op="delete", key=key)


def _frame(payload: bytes) -> bytes:
    return (
        _U32.pack(len(payload))
        + payload
        + _U32.pack(zlib.crc32(payload) & 0xFFFFFFFF)
    )


def _segment_name(number: int) -> str:
    return f"wal-{number:08d}.log"


def _fsync_directory(directory: str) -> None:
    """Best-effort directory fsync so creates/unlinks are durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass
class _ScanResult:
    """One segment's replay outcome: good records and the good prefix."""

    records: "list[Mutation]"
    good_bytes: int
    torn: bool
    seq_hint: int = 0


def _scan_segment(path: str) -> _ScanResult:
    """Parse one segment; stop (without raising) at the first bad frame.

    Returns the decoded records, the byte offset of the end of the last
    good frame, and whether a bad frame was hit.  Only a CRC-valid but
    semantically malformed payload raises (software bug, not torn
    write).
    """
    size = os.path.getsize(path)
    records: "list[Mutation]" = []
    with open(path, "rb") as handle:
        try:
            header = _io_read(handle, _HEADER_LEN)
        except ArithmeticError:
            return _ScanResult(records, 0, True)
        if (
            len(header) != _HEADER_LEN
            or header[: len(MAGIC)] != MAGIC
            or _U32.unpack(header[len(MAGIC) : len(MAGIC) + _U32.size])[0]
            != VERSION
        ):
            # A torn or foreign segment header: nothing here is provably
            # ours, so the good prefix is empty.
            return _ScanResult(records, 0, True)
        (seq_hint,) = _U64.unpack(header[len(MAGIC) + _U32.size :])
        offset = _HEADER_LEN
        while offset < size:
            try:
                length_raw = _io_read(handle, _U32.size)
                if len(length_raw) != _U32.size:
                    return _ScanResult(records, offset, True, seq_hint)
                (length,) = _U32.unpack(length_raw)
                if length == 0:
                    # No mutation serialises to zero bytes, but a zeroed
                    # sector does — and it would pass the CRC check
                    # (crc32(b"") == 0).  Treat it as a torn write.
                    return _ScanResult(records, offset, True, seq_hint)
                if offset + _U32.size + length + _U32.size > size:
                    return _ScanResult(records, offset, True, seq_hint)
                payload = _io_read(handle, length)
                if len(payload) != length:
                    return _ScanResult(records, offset, True, seq_hint)
                crc_raw = _io_read(handle, _U32.size)
                if len(crc_raw) != _U32.size:
                    return _ScanResult(records, offset, True, seq_hint)
            except ArithmeticError:
                # A raising read seam is indistinguishable from an
                # unreadable sector: recover the prefix.
                return _ScanResult(records, offset, True, seq_hint)
            (expected,) = _U32.unpack(crc_raw)
            if zlib.crc32(payload) & 0xFFFFFFFF != expected:
                return _ScanResult(records, offset, True, seq_hint)
            records.append(Mutation.from_payload(payload))
            offset += _U32.size + length + _U32.size
    return _ScanResult(records, offset, False, seq_hint)


class WriteAheadLog:
    """A segmented, CRC-framed, fsync-on-ack write-ahead log.

    Use :meth:`open` to create-or-recover a log in a directory::

        wal = WriteAheadLog.open("/var/lib/repro/stream/wal")
        mutation = wal.append(Mutation.insert("a", sphere))
        # mutation.seq is durable here — safe to ack

    ``replayed`` holds the records recovered at open time (in order);
    ``truncated_frames`` counts bad tails dropped by recovery.
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if segment_bytes < _HEADER_LEN + 3 * _U32.size:
            raise WalError(
                f"segment_bytes={segment_bytes} cannot hold even one record"
            )
        self.directory = os.fspath(directory)
        self.segment_bytes = int(segment_bytes)
        self.replayed: "list[Mutation]" = []
        self.truncated_frames = 0
        self._next_seq = 1
        self._segment_number = 1
        self._handle: "BinaryIO | None" = None
        self._segment_size = 0
        self._closed = False
        self._owner_fd: "int | None" = None

    # ------------------------------------------------------------------
    # Open / recover
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        directory: str,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        exclusive: bool = False,
    ) -> "WriteAheadLog":
        """Create or recover the log at *directory* (made if missing).

        With ``exclusive=True`` the opener also takes the advisory
        *owner lock* (``flock`` on ``wal.lock`` in the directory) and
        holds it until :meth:`close`.  This is the worker-death handoff
        contract of the multi-process server: the kernel releases the
        lock the instant the owning process dies — even by SIGKILL —
        so a respawned mutation worker can take over immediately, while
        a *wedged* (still-alive) predecessor keeps the lock and the
        newcomer fails fast with :class:`~repro.exceptions.WalError`
        instead of interleaving appends.
        """
        wal = cls(directory, segment_bytes=segment_bytes)
        os.makedirs(wal.directory, exist_ok=True)
        if exclusive:
            wal._acquire_owner_lock()
        with obs.trace(names.WAL_REPLAY_SPAN):
            wal._recover()
        return wal

    def _acquire_owner_lock(self) -> None:
        """Take the directory's advisory owner lock, or fail fast."""
        if fcntl is None:  # pragma: no cover - non-POSIX best effort
            return
        path = os.path.join(self.directory, "wal.lock")
        fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise WalError(
                f"write-ahead log at {self.directory!r} is owned by a "
                "live process (exclusive owner lock is held); refusing "
                "to open it for writing"
            ) from None
        self._owner_fd = fd

    def _segment_paths(self) -> "list[tuple[int, str]]":
        found: "list[tuple[int, str]]" = []
        for name in os.listdir(self.directory):
            match = _SEGMENT_RE.match(name)
            if match:
                found.append(
                    (int(match.group(1)), os.path.join(self.directory, name))
                )
        return sorted(found)

    def _recover(self) -> None:
        segments = self._segment_paths()
        truncated = False
        seq_hint = 0
        for position, (number, path) in enumerate(segments):
            if truncated:
                # Everything after the first bad frame is logically
                # beyond the durable history: drop it.
                os.unlink(path)
                self.truncated_frames += 1
                continue
            scan = _scan_segment(path)
            self.replayed.extend(scan.records)
            seq_hint = max(seq_hint, scan.seq_hint)
            self._segment_number = number
            if scan.torn:
                truncated = True
                self.truncated_frames += 1
                if scan.good_bytes == 0:
                    os.unlink(path)
                    self._segment_number = max(number - 1, 1) if position else 1
                else:
                    with open(path, "r+b") as handle:
                        handle.truncate(scan.good_bytes)
                        handle.flush()
                        os.fsync(handle.fileno())
        if truncated:
            _fsync_directory(self.directory)
        if self.replayed:
            seq_hint = max(
                seq_hint, max(record.seq for record in self.replayed)
            )
        self._next_seq = seq_hint + 1
        if obs.ENABLED:
            obs.incr(names.WAL_REPLAYED_RECORDS, len(self.replayed))
            if self.truncated_frames:
                obs.incr(names.WAL_TRUNCATED_FRAMES, self.truncated_frames)
                obs.incr(names.WAL_CORRUPTIONS)

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """The sequence number the next append will be assigned."""
        return self._next_seq

    def _open_segment(self, number: int) -> None:
        path = os.path.join(self.directory, _segment_name(number))
        exists = os.path.exists(path)
        handle: BinaryIO = open(path, "ab")
        if not exists or os.path.getsize(path) == 0:
            _io_write(
                handle,
                MAGIC + _U32.pack(VERSION) + _U64.pack(self._next_seq - 1),
            )
            handle.flush()
            _fsync(handle.fileno())
            _fsync_directory(self.directory)
        self._handle = handle
        self._segment_number = number
        self._segment_size = os.path.getsize(path)

    def _writable_handle(self) -> BinaryIO:
        if self._closed:
            raise WalError("write-ahead log is closed")
        if self._handle is None:
            # Append to the recovered tail segment, or start segment 1.
            segments = self._segment_paths()
            number = segments[-1][0] if segments else self._segment_number
            self._open_segment(number)
        assert self._handle is not None
        return self._handle

    def append(self, mutation: Mutation) -> Mutation:
        """Durably append *mutation*; returns it with its assigned seq.

        The record is on stable storage when this returns — the caller
        may ack.  Rotation to a fresh segment happens *before* the
        append so one record is never split across segments.
        """
        if mutation.op not in OPS:
            raise WalError(f"unknown mutation op {mutation.op!r}")
        handle = self._writable_handle()
        assigned = Mutation(
            seq=self._next_seq,
            op=mutation.op,
            key=mutation.key,
            center=mutation.center,
            radius=mutation.radius,
        )
        framed = _frame(assigned.to_payload())
        if (
            self._segment_size + len(framed) > self.segment_bytes
            and self._segment_size > _HEADER_LEN
        ):
            self.rotate()
            handle = self._writable_handle()
        _io_write(handle, framed)
        handle.flush()
        _fsync(handle.fileno())
        self._segment_size += len(framed)
        self._next_seq += 1
        if obs.ENABLED:
            obs.incr(names.WAL_APPENDS)
            obs.incr(names.WAL_FSYNCS)
            obs.observe(names.WAL_RECORD_BYTES, len(framed))
        return assigned

    def rotate(self) -> None:
        """Close the live segment and start the next one."""
        if self._handle is not None:
            self._handle.flush()
            _fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
        self._open_segment(self._segment_number + 1)
        if obs.ENABLED:
            obs.incr(names.WAL_ROTATIONS)

    # ------------------------------------------------------------------
    # Truncation (post-compaction) and teardown
    # ------------------------------------------------------------------
    def truncate(self) -> int:
        """Delete every segment (the compaction made them redundant).

        Sequence numbering continues where it left off, so seqs stay
        unique across compactions.  Returns the number of segment files
        removed.
        """
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        removed = 0
        for _, path in self._segment_paths():
            os.unlink(path)
            removed += 1
        _fsync_directory(self.directory)
        self._segment_size = 0
        # Re-establish the seq high-water mark durably: an empty segment
        # whose header carries the hint, so a restart right after a
        # compaction keeps numbering monotone instead of starting over.
        self._open_segment(self._segment_number + 1)
        if obs.ENABLED:
            obs.incr(names.WAL_TRUNCATIONS)
        return removed

    def records(self) -> "Iterator[Mutation]":
        """The recovered records (live appends are not re-read)."""
        return iter(self.replayed)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            _fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
        if self._owner_fd is not None:
            # Closing the descriptor releases the flock; on crash the
            # kernel does the same, which is the whole handoff story.
            os.close(self._owner_fd)
            self._owner_fd = None
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
