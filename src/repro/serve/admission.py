"""Admission control: bounded concurrency, bounded queue, token buckets.

Overload handling is a *product decision* here, not an accident: a
saturated server answers **429 with Retry-After** immediately instead
of queueing without bound and timing every request out.  Three gates,
cheapest first:

1. **Queue bound** — at most ``max_concurrency`` requests execute and
   at most ``max_queue`` wait; anything beyond is shed with reason
   ``"queue_full"``.  Shedding costs O(1) — the whole point of
   admission control is that the overloaded path is the cheap one.
2. **Token bucket per tenant** — each tenant class sustains
   ``rate_per_s`` with a ``burst`` allowance; beyond that the request
   is shed with reason ``"rate_limited"`` and a Retry-After derived
   from the refill rate.
3. **Concurrency semaphore** — admitted requests wait (bounded by the
   queue gate above) for one of ``max_concurrency`` execution slots.

Clock reads go through the same module attribute the resilience layer
uses (:data:`repro.resilience.budget._monotonic`), so the ``"clock"``
fault seam skews admission exactly like it skews deadlines.  A broken
clock can never mint tokens: refills are clamped to the non-negative
range and a raising/non-finite clock freezes the bucket at its current
level (tallied on ``serve.admission.clock_faults``) — conservative in
the only direction that matters, because a frozen bucket sheds (429,
retryable) rather than over-admits.

The ``"queue"`` fault seam patches :func:`_overflow_probe` to simulate
a full queue regardless of actual depth — chaos tests use it to prove
that saturation surfaces as 429 all the way through the HTTP layer.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
from dataclasses import dataclass
from typing import AsyncIterator

from repro import obs
from repro.exceptions import ServeError
from repro.obs import names
from repro.resilience import budget as _budget
from repro.serve.tenancy import TenantClass

__all__ = ["AdmissionController", "AdmissionDecision", "TokenBucket"]


def _overflow_probe() -> bool:
    """Whether the queue should be treated as overflowing right now.

    Always ``False`` in production; the ``"queue"`` fault seam
    (:mod:`repro.robust.faults`) patches this attribute to force the
    shed path deterministically.
    """
    return False


def _read_clock() -> "float | None":
    """One guarded monotonic read; ``None`` means the clock is broken.

    Reads through :data:`repro.resilience.budget._monotonic` so the
    ``"clock"`` fault seam covers admission too.
    """
    try:
        now = float(_budget._monotonic())
    except ArithmeticError:
        return None
    if not math.isfinite(now):
        return None
    return now


@dataclass(frozen=True)
class AdmissionDecision:
    """The verdict on one request, pre-execution."""

    admitted: bool
    #: ``None`` when admitted; ``"queue_full"`` / ``"rate_limited"``
    #: / ``"breaker_open"`` when shed.
    reason: "str | None" = None
    #: Suggested client back-off, seconds (the Retry-After header).
    retry_after_s: float = 0.0


class TokenBucket:
    """A per-tenant-class token bucket with a guarded clock."""

    __slots__ = ("rate_per_s", "burst", "_tokens", "_stamp")

    def __init__(self, rate_per_s: float, burst: int) -> None:
        if rate_per_s <= 0.0:
            raise ServeError(f"rate_per_s must be positive, got {rate_per_s!r}")
        if burst < 1:
            raise ServeError(f"burst must be >= 1, got {burst!r}")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens = float(burst)
        self._stamp: "float | None" = None

    @property
    def tokens(self) -> float:
        """The current token level (diagnostics only)."""
        return self._tokens

    def try_take(self) -> "tuple[bool, float]":
        """Take one token; returns ``(granted, retry_after_s)``.

        A broken or backwards clock refills nothing (and is tallied);
        the bucket then drains to empty and sheds until the clock
        recovers — never the over-admitting direction.
        """
        now = _read_clock()
        if now is None:
            if obs.ENABLED:
                obs.incr(names.SERVE_ADMISSION_CLOCK_FAULTS)
        elif self._stamp is None:
            self._stamp = now
        else:
            elapsed = now - self._stamp
            if elapsed > 0.0:
                self._tokens = min(
                    float(self.burst), self._tokens + elapsed * self.rate_per_s
                )
                self._stamp = now
            elif elapsed < 0.0:
                # A rewound clock: re-anchor without minting tokens.
                self._stamp = now
                if obs.ENABLED:
                    obs.incr(names.SERVE_ADMISSION_CLOCK_FAULTS)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        deficit = 1.0 - self._tokens
        return False, deficit / self.rate_per_s


class AdmissionController:
    """The three admission gates in front of the query executor."""

    def __init__(self, *, max_concurrency: int = 8, max_queue: int = 32) -> None:
        if max_concurrency < 1:
            raise ServeError(
                f"max_concurrency must be >= 1, got {max_concurrency!r}"
            )
        if max_queue < 0:
            raise ServeError(f"max_queue must be >= 0, got {max_queue!r}")
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self._slots = asyncio.Semaphore(max_concurrency)
        self._in_flight = 0
        self._buckets: "dict[str, TokenBucket]" = {}

    @property
    def in_flight(self) -> int:
        """Requests admitted and not yet finished (running + queued)."""
        return self._in_flight

    @property
    def queued(self) -> int:
        """Requests waiting for an execution slot."""
        return max(0, self._in_flight - self.max_concurrency)

    def bucket_for(self, tenant: TenantClass) -> TokenBucket:
        bucket = self._buckets.get(tenant.name)
        if bucket is None:
            bucket = TokenBucket(tenant.rate_per_s, tenant.burst)
            self._buckets[tenant.name] = bucket
        return bucket

    def try_admit(self, tenant: TenantClass) -> AdmissionDecision:
        """Gate one request; sheds are decided here, synchronously.

        An injected queue-overflow fault (probe returning ``True`` *or*
        raising) is absorbed into the ``"queue_full"`` shed — a fault
        in the admission machinery itself must surface as a retryable
        429, never as a 5xx.
        """
        try:
            overflowing = bool(_overflow_probe())
        except ArithmeticError:
            overflowing = True
        if overflowing or self.queued >= self.max_queue:
            if obs.ENABLED:
                obs.incr(names.SERVE_ADMISSION_QUEUE_FULL)
            return AdmissionDecision(
                admitted=False, reason="queue_full", retry_after_s=1.0
            )
        granted, retry_after_s = self.bucket_for(tenant).try_take()
        if not granted:
            if obs.ENABLED:
                obs.incr(names.SERVE_ADMISSION_RATE_LIMITED)
            return AdmissionDecision(
                admitted=False,
                reason="rate_limited",
                retry_after_s=max(retry_after_s, 0.05),
            )
        if obs.ENABLED:
            obs.incr(names.SERVE_ADMISSION_ADMITTED)
            obs.observe(names.SERVE_QUEUE_DEPTH, float(self.queued))
        return AdmissionDecision(admitted=True)

    @contextlib.asynccontextmanager
    async def slot(self) -> "AsyncIterator[None]":
        """Hold one execution slot for an admitted request."""
        self._in_flight += 1
        try:
            async with self._slots:
                yield
        finally:
            self._in_flight -= 1
