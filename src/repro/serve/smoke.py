"""The serve smoke scenario: boot, burst, fault, assert — in-process.

``make serve-smoke`` (and ``repro serve smoke``) runs this end to end:

1. build a synthetic SS-tree, snapshot it to a temp file, and boot a
   :class:`~repro.serve.app.ServeApp` from that snapshot on an
   ephemeral port — the warm-start path, not a shortcut;
2. fire a burst of kNN/RkNN/top-k-dominating requests across tenant
   classes **with a fault seam enabled** (default: the ``"handler"``
   seam in ``raise`` mode, firing every third request);
3. fail unless every response is **200, 206 or 429**, at least one
   clean answer came back, and ``/metrics`` scrapes as Prometheus text
   carrying the ``serve.*`` families.

``--workers N`` runs the same burst against a supervised worker pool
(:mod:`repro.serve.supervisor`) instead: the default seam becomes
``"worker_kill"`` (SIGKILL a worker right before dispatch), **503**
joins the allowed statuses (a supervisor that has lost every worker
answers honestly rather than hanging), and the scenario additionally
requires ``/readyz`` to converge back to quorum after the burst.

The module also hosts :func:`request`, the dependency-free asyncio
HTTP client the serve test suite drives the real network stack with.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
from pathlib import Path
from typing import Any, Sequence

from repro import obs
from repro.data.synthetic import synthetic_dataset
from repro.data.workload import knn_queries
from repro.index import snapshot as snapshot_io
from repro.index.sstree import SSTree
from repro.serve.admission import AdmissionController
from repro.serve.app import ServeApp, start_server

__all__ = ["main", "request", "run_smoke"]


async def request(
    host: str,
    port: int,
    method: str,
    path: str,
    *,
    body: "dict[str, Any] | None" = None,
    headers: "dict[str, str] | None" = None,
) -> "tuple[int, dict[str, str], bytes]":
    """One HTTP/1.1 exchange; returns ``(status, headers, body)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            f"Content-Length: {len(payload)}",
            "Content-Type: application/json",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    head, _, response_body = raw.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split(" ")[1])
    response_headers: "dict[str, str]" = {}
    for line in head_lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            response_headers[name.strip().lower()] = value.strip()
    return status, response_headers, response_body


def _smoke_bodies(
    dataset: Any, count: int, seed: int
) -> "list[dict[str, Any]]":
    """A mixed burst: all three query kinds over seeded query spheres."""
    kinds = ("knn", "rknn", "dominating")
    bodies = []
    for i, sphere in enumerate(knn_queries(dataset, count=count, seed=seed)):
        bodies.append(
            {
                "kind": kinds[i % len(kinds)],
                "index": "default",
                "center": [float(c) for c in sphere.center],
                "radius": float(sphere.radius),
                "k": 3,
            }
        )
    return bodies


async def _run_burst(
    app: ServeApp,
    bodies: "Sequence[dict[str, Any]]",
    seam: str,
    mode: str,
    every: int,
) -> "dict[str, Any]":
    from repro.robust import faults

    server = await start_server(app)
    host, port = server.sockets[0].getsockname()[:2]
    tenants = ("interactive", "standard", "batch")
    statuses: "list[int]" = []
    try:
        with faults.inject(seam, mode, every=every):
            for i, body in enumerate(bodies):
                status, _, _ = await request(
                    host,
                    port,
                    "POST",
                    "/query",
                    body=body,
                    headers={"x-tenant-class": tenants[i % len(tenants)]},
                )
                statuses.append(status)
        metrics_status, _, metrics_body = await request(
            host, port, "GET", "/metrics"
        )
        readyz_status, _, _ = await request(host, port, "GET", "/readyz")
    finally:
        server.close()
        await server.wait_closed()
    return {
        "statuses": statuses,
        "metrics_status": metrics_status,
        "metrics_text": metrics_body.decode("utf-8"),
        "readyz_status": readyz_status,
    }


async def _run_supervised_burst(
    supervisor: Any,
    bodies: "Sequence[dict[str, Any]]",
    seam: str,
    mode: str,
    every: int,
) -> "dict[str, Any]":
    from repro.robust import faults

    host, port = await supervisor.start()
    tenants = ("interactive", "standard", "batch")
    statuses: "list[int]" = []
    try:
        with faults.inject(seam, mode, every=every):
            for i, body in enumerate(bodies):
                status, _, _ = await request(
                    host,
                    port,
                    "POST",
                    "/query",
                    body=body,
                    headers={"x-tenant-class": tenants[i % len(tenants)]},
                )
                statuses.append(status)
        # The pool must heal: poll /readyz until quorum converges.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 30.0
        readyz_status = 503
        while loop.time() < deadline:
            readyz_status, _, _ = await request(host, port, "GET", "/readyz")
            if readyz_status == 200:
                break
            await asyncio.sleep(0.1)
        metrics_status, _, metrics_body = await request(
            host, port, "GET", "/metrics"
        )
    finally:
        await supervisor.drain_and_stop()
    return {
        "statuses": statuses,
        "metrics_status": metrics_status,
        "metrics_text": metrics_body.decode("utf-8"),
        "readyz_status": readyz_status,
    }


def run_smoke(
    *,
    requests: int = 30,
    seam: "str | None" = None,
    mode: str = "raise",
    every: int = 3,
    seed: int = 0,
    workers: int = 0,
) -> "dict[str, Any]":
    """Run the scenario; returns a summary dict with ``"ok"``."""
    obs.enable()
    if seam is None:
        seam = "worker_kill" if workers > 0 else "handler"
    dataset = synthetic_dataset(200, 3, seed=seed)
    tree = SSTree.bulk_load(dataset.items())
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        path = str(Path(tmp) / "smoke.snap")
        snapshot_io.save(tree, path)
        bodies = _smoke_bodies(dataset, requests, seed)
        with obs.scope():
            if workers > 0:
                from repro.serve.supervisor import (
                    Supervisor,
                    SupervisorConfig,
                )

                supervisor = Supervisor(
                    SupervisorConfig(
                        query_workers=workers,
                        snapshots={"default": path},
                        backoff_base_s=0.05,
                        backoff_cap_s=0.5,
                        seed=seed,
                    )
                )
                summary = asyncio.run(
                    _run_supervised_burst(
                        supervisor, bodies, seam, mode, every
                    )
                )
            else:
                app = ServeApp.from_snapshots(
                    {"default": path},
                    admission=AdmissionController(
                        max_concurrency=4, max_queue=8
                    ),
                    seed=seed,
                )
                try:
                    summary = asyncio.run(
                        _run_burst(app, bodies, seam, mode, every)
                    )
                finally:
                    app.close()
    statuses = summary["statuses"]
    allowed = {200, 206, 429, 503} if workers > 0 else {200, 206, 429}
    offenders = sorted({s for s in statuses if s not in allowed})
    counts = {code: statuses.count(code) for code in sorted(set(statuses))}
    ok = (
        not offenders
        and counts.get(200, 0) > 0
        and summary["metrics_status"] == 200
        and "repro_serve_requests_total" in summary["metrics_text"]
        and summary["readyz_status"] == 200
    )
    summary.update(
        {
            "ok": ok,
            "counts": counts,
            "offenders": offenders,
            "seam": seam,
            "mode": mode,
            "workers": workers,
        }
    )
    return summary


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve smoke",
        description=(
            "Boot a server on a fixture snapshot, fire a fault-injected "
            "burst, and assert 200/206/429-only plus a scrape-able /metrics."
        ),
    )
    parser.add_argument(
        "--requests", type=int, default=30, help="burst size (default 30)"
    )
    parser.add_argument(
        "--seam",
        default=None,
        help=(
            "fault seam to enable during the burst (default handler; "
            "worker_kill with --workers)"
        ),
    )
    parser.add_argument(
        "--mode", default="raise", help="fault mode (default raise)"
    )
    parser.add_argument(
        "--every",
        type=int,
        default=3,
        help="fire the fault on every Nth seam call (default 3)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "run the burst against a supervised pool of N worker "
            "processes (0 = single-process, the default)"
        ),
    )
    args = parser.parse_args(list(sys.argv[1:] if argv is None else argv))

    summary = run_smoke(
        requests=args.requests,
        seam=args.seam,
        mode=args.mode,
        every=args.every,
        seed=args.seed,
        workers=args.workers,
    )
    print(
        f"serve smoke: workers={summary['workers']} seam={summary['seam']} "
        f"mode={summary['mode']} statuses={summary['counts']}"
    )
    allowed_note = (
        "200/206/429/503" if summary["workers"] > 0 else "200/206/429"
    )
    if not summary["ok"]:
        if summary["offenders"]:
            print(
                f"FAIL: disallowed status codes {summary['offenders']} "
                f"(only {allowed_note} may appear under faults)",
                file=sys.stderr,
            )
        else:
            print(
                "FAIL: no clean 200, unhealthy /readyz, or /metrics did "
                "not scrape",
                file=sys.stderr,
            )
        return 1
    print(f"serve smoke: OK ({allowed_note} only; /metrics scraped)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
