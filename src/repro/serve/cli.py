"""The ``repro serve`` front end.

Boots one :class:`~repro.serve.app.ServeApp` over snapshot-backed
indexes and serves until interrupted::

    repro snapshot save /var/lib/repro/spheres.snap --kind sstree
    repro serve --snapshot default=/var/lib/repro/spheres.snap --port 8080

With no ``--snapshot`` the server builds one synthetic SS-tree in
memory (name ``default``) — enough to demo the API and drive the smoke
suite.  A corrupt snapshot does **not** abort boot: the index comes up
quarantined, ``/readyz`` says so, and queries against it answer 503
(see ``docs/serving.md`` for the runbook).

``--stream NAME=DIR`` serves a *mutable* streaming index from DIR (a
directory created with ``repro stream init``): the snapshot is
integrity-checked, the write-ahead log is replayed over it, and
``POST /mutate`` accepts durable inserts/deletes (see
``docs/streaming.md``).

``--workers N`` (N >= 1) switches to supervised multi-process serving
(:mod:`repro.serve.supervisor`): N query workers share the read-only
snapshot shards, one mutation worker exclusively owns the streams'
write-ahead logs, and the supervisor heals crashes with heartbeats,
backoff respawns and request failover.  ``--drain-ms`` bounds how long
in-flight requests may finish after SIGTERM/SIGINT (both modes honour
it; the single-process server drains through
:meth:`~repro.serve.app.ServeApp.close`).

``repro serve smoke`` runs the self-contained smoke scenario
(:mod:`repro.serve.smoke`): boot on a fixture snapshot, fire a burst of
queries with a fault seam enabled, and fail unless every response is
200/206/429 and ``/metrics`` scrapes.

``repro serve slo`` aggregates a ``--event-log`` JSONL file into
per-tenant p50/p95/p99 latency and shed/degraded/error counts
(:mod:`repro.serve.slo`).

``--deadline-ms`` is validated at this boundary
(:func:`repro.queries.validation.validate_deadline_ms`): a negative,
zero, NaN or non-numeric value is rejected with exit code 2 before any
socket is bound.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Sequence

from repro import obs
from repro.cli import deadline_ms_argtype
from repro.exceptions import ReproError
from repro.obs import export as obs_export
from repro.serve.admission import AdmissionController
from repro.serve.app import ServeApp, start_server
from repro.serve.tenancy import TenantPolicy, default_classes

__all__ = ["build_parser", "main"]

#: The standard tenant class's stock deadline; ``--deadline-ms`` is
#: interpreted as the new standard deadline and every class scales
#: proportionally (interactive stays ~7x tighter, batch ~10x looser).
_STANDARD_DEADLINE_MS = 1000.0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve kNN/RkNN/top-k-dominating queries over snapshot-backed "
            "indexes with admission control, per-tenant budgets, retries "
            "and circuit breakers."
        ),
    )
    parser.add_argument(
        "--snapshot",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help=(
            "serve the snapshot at PATH under index NAME (repeatable); "
            "a corrupt snapshot quarantines the index instead of aborting"
        ),
    )
    parser.add_argument(
        "--stream",
        action="append",
        default=[],
        metavar="NAME=DIR",
        help=(
            "serve the streaming index directory DIR under NAME "
            "(repeatable); the WAL is replayed at boot and POST /mutate "
            "accepts durable inserts/deletes"
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port (default 8080; 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=deadline_ms_argtype,
        default=None,
        metavar="MS",
        help=(
            "per-request wall-clock budget for the 'standard' tenant class; "
            "all classes scale proportionally (default 1000)"
        ),
    )
    parser.add_argument(
        "--max-concurrency",
        type=int,
        default=8,
        help="concurrent query executions (default 8)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=32,
        help="admitted requests allowed to wait for a slot (default 32)",
    )
    parser.add_argument(
        "--event-log",
        metavar="PATH",
        default=None,
        help="append one JSONL record per query to PATH",
    )
    parser.add_argument(
        "--n",
        type=int,
        default=400,
        help="synthetic dataset size when no --snapshot is given (default 400)",
    )
    parser.add_argument(
        "--dimension",
        type=int,
        default=3,
        help="synthetic dimensionality when no --snapshot is given (default 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for the synthetic fallback"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "serve through a supervised pool of N query worker processes "
            "(plus one mutation worker when --stream is given); 0 = "
            "single-process serving (default)"
        ),
    )
    parser.add_argument(
        "--drain-ms",
        type=float,
        default=2000.0,
        metavar="MS",
        help=(
            "wall clock granted to in-flight requests after SIGTERM/SIGINT "
            "before they are cancelled (default 2000)"
        ),
    )
    return parser


def _parse_snapshot_specs(specs: "Sequence[str]") -> "dict[str, str]":
    table: "dict[str, str]" = {}
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise ReproError(
                f"--snapshot expects NAME=PATH, got {spec!r}"
            )
        table[name] = path
    return table


def build_app(args: argparse.Namespace) -> ServeApp:
    """One configured :class:`ServeApp` from parsed CLI arguments."""
    scale = (
        args.deadline_ms / _STANDARD_DEADLINE_MS
        if args.deadline_ms is not None
        else 1.0
    )
    app = ServeApp(
        policy=TenantPolicy(default_classes(deadline_scale=scale)),
        admission=AdmissionController(
            max_concurrency=args.max_concurrency, max_queue=args.max_queue
        ),
        event_log=(
            obs_export.QueryEventLog.open(args.event_log)
            if args.event_log
            else None
        ),
        seed=args.seed,
    )
    specs = _parse_snapshot_specs(args.snapshot)
    stream_specs = _parse_snapshot_specs(getattr(args, "stream", []))
    overlap = set(specs) & set(stream_specs)
    if overlap:
        raise ReproError(
            f"index name(s) given to both --snapshot and --stream: "
            f"{sorted(overlap)}"
        )
    for name, directory in stream_specs.items():
        state = app.load_stream(name, directory)
        if state.quarantined:
            print(
                f"warning: streaming index {name!r} quarantined at boot: "
                f"{state.error}",
                file=sys.stderr,
            )
    if specs:
        for name, path in specs.items():
            state = app.load_snapshot(name, path)
            if state.quarantined:
                print(
                    f"warning: index {name!r} quarantined at boot: "
                    f"{state.error}",
                    file=sys.stderr,
                )
    elif not stream_specs:
        from repro.data.synthetic import synthetic_dataset
        from repro.index.sstree import SSTree

        dataset = synthetic_dataset(args.n, args.dimension, seed=args.seed)
        tree = SSTree.bulk_load(dataset.items())
        app.register_index("default", tree, source="synthetic")
    return app


async def _serve_forever(
    app: ServeApp, host: str, port: int, drain_s: float
) -> None:
    server = await start_server(app, host=host, port=port)
    bound = server.sockets[0].getsockname()
    healthy = sum(1 for state in app.indexes.values() if state.healthy)
    print(
        f"repro serve listening on {bound[0]}:{bound[1]} "
        f"({healthy}/{len(app.indexes)} index(es) healthy)",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            # Flag-only handler (Event.set) — the DOM207 contract.
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-Unix loop: Ctrl-C falls back to KeyboardInterrupt
    await stop.wait()
    # Graceful drain: stop accepting, give in-flight requests their
    # wall clock *inside* the loop (ServeApp.close's sync drain would
    # block the very loop the requests run on).
    server.close()
    await server.wait_closed()
    deadline = loop.time() + max(drain_s, 0.0)
    while app.admission.in_flight > 0 and loop.time() < deadline:
        await asyncio.sleep(0.01)


def main(argv: "Sequence[str] | None" = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "smoke":
        from repro.serve.smoke import main as smoke_main

        return smoke_main(arguments[1:])
    if arguments and arguments[0] == "slo":
        from repro.serve.slo import main as slo_main

        return slo_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    obs.enable()
    drain_s = max(args.drain_ms, 0.0) / 1000.0
    if args.workers > 0:
        from repro.serve.supervisor import run_supervisor

        scale = (
            args.deadline_ms / _STANDARD_DEADLINE_MS
            if args.deadline_ms is not None
            else 1.0
        )
        try:
            snapshots = _parse_snapshot_specs(args.snapshot)
            streams = _parse_snapshot_specs(args.stream)
            overlap = set(snapshots) & set(streams)
            if overlap:
                raise ReproError(
                    f"index name(s) given to both --snapshot and --stream: "
                    f"{sorted(overlap)}"
                )
            return run_supervisor(
                workers=args.workers,
                snapshots=snapshots,
                streams=streams,
                host=args.host,
                port=args.port,
                drain_ms=args.drain_ms,
                deadline_scale=scale,
                max_queue=args.max_queue,
                seed=args.seed,
                n=args.n,
                dimension=args.dimension,
            )
        except ReproError as error:
            print(f"serve error: {error}", file=sys.stderr)
            return 1
    try:
        app = build_app(args)
    except ReproError as error:
        print(f"serve error: {error}", file=sys.stderr)
        return 1
    try:
        asyncio.run(_serve_forever(app, args.host, args.port, drain_s))
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    finally:
        # In-flight work already got its drain window inside the loop;
        # close() only has the executor queue left to settle.
        app.close(drain_s=0.0)
        if app.event_log is not None:
            app.event_log.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
