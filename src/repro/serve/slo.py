"""``repro serve slo`` — SLO aggregation over the JSONL event log.

The serving front end can append one structured
:class:`~repro.obs.export.QueryEvent` per request (``--event-log``);
each record carries the tenant class and the HTTP status it was
answered with.  This module folds that log into the numbers an
operator actually pages on: per-tenant p50/p95/p99 latency and the
shed / degraded / error tallies::

    repro serve slo /var/log/repro/queries.jsonl
    repro serve slo /var/log/repro/queries.jsonl --json

Events written before the ``tenant``/``status`` fields existed (or by
non-serving code, which never sets them) aggregate under tenant
``"unknown"`` with their status bucketed as ``ok`` — the tool degrades
on old logs instead of refusing them.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.export import QueryEvent, read_events

__all__ = ["TenantSlo", "aggregate", "build_parser", "main"]

#: Latency quantiles reported per tenant.
QUANTILES = (0.50, 0.95, 0.99)


def _quantile(sorted_values: "list[float]", q: float) -> float:
    """Nearest-rank quantile over an already-sorted, non-empty list."""
    if not sorted_values:
        return 0.0
    rank = max(int(q * len(sorted_values) + 0.5), 1)
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class TenantSlo:
    """One tenant class's aggregated service-level numbers."""

    tenant: str
    requests: int = 0
    ok: int = 0
    degraded: int = 0
    shed: int = 0
    rejected: int = 0
    errors: int = 0
    #: Latencies (seconds) of the requests that actually executed —
    #: sheds and rejections are control-plane refusals, not latency.
    latencies_s: "list[float]" = field(default_factory=list)

    def add(self, event: QueryEvent) -> None:
        self.requests += 1
        status = event.status or 200
        if status == 200:
            self.ok += 1
        elif status == 206:
            self.degraded += 1
        elif status == 429:
            self.shed += 1
        elif 400 <= status < 500:
            self.rejected += 1
        else:
            self.errors += 1
        if status in (200, 206):
            self.latencies_s.append(float(event.duration_s))

    def to_dict(self) -> "dict[str, object]":
        ordered = sorted(self.latencies_s)
        return {
            "tenant": self.tenant,
            "requests": self.requests,
            "ok": self.ok,
            "degraded": self.degraded,
            "shed": self.shed,
            "rejected": self.rejected,
            "errors": self.errors,
            "latency_s": {
                f"p{int(q * 100)}": _quantile(ordered, q) for q in QUANTILES
            },
        }


def aggregate(events: "Sequence[QueryEvent]") -> "dict[str, TenantSlo]":
    """Fold *events* into per-tenant SLO summaries (tenant-sorted)."""
    table: "dict[str, TenantSlo]" = {}
    for event in events:
        tenant = event.tenant or "unknown"
        slo = table.get(tenant)
        if slo is None:
            slo = table[tenant] = TenantSlo(tenant=tenant)
        slo.add(event)
    return dict(sorted(table.items()))


def _render_table(table: "dict[str, TenantSlo]") -> str:
    header = (
        f"{'tenant':<14} {'reqs':>6} {'ok':>6} {'206':>5} {'429':>5} "
        f"{'4xx':>5} {'5xx':>5} {'p50ms':>8} {'p95ms':>8} {'p99ms':>8}"
    )
    lines = [header, "-" * len(header)]
    for slo in table.values():
        stats = slo.to_dict()
        latency = stats["latency_s"]
        assert isinstance(latency, dict)
        lines.append(
            f"{slo.tenant:<14} {slo.requests:>6} {slo.ok:>6} "
            f"{slo.degraded:>5} {slo.shed:>5} {slo.rejected:>5} "
            f"{slo.errors:>5} "
            f"{latency['p50'] * 1e3:>8.2f} "
            f"{latency['p95'] * 1e3:>8.2f} "
            f"{latency['p99'] * 1e3:>8.2f}"
        )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve slo",
        description=(
            "Aggregate a serve event log (JSONL) into per-tenant "
            "p50/p95/p99 latency and shed/degraded/error counts."
        ),
    )
    parser.add_argument("log", help="path to the JSONL event log")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the table",
    )
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    args = build_parser().parse_args(
        list(sys.argv[1:] if argv is None else argv)
    )
    try:
        events = read_events(args.log)
    except (OSError, ValueError, KeyError) as error:
        print(f"slo error: cannot read {args.log!r}: {error}", file=sys.stderr)
        return 1
    table = aggregate(events)
    if args.json:
        print(
            json.dumps(
                {name: slo.to_dict() for name, slo in table.items()},
                indent=2,
                sort_keys=True,
            )
        )
    elif not table:
        print("no events in log")
    else:
        print(_render_table(table))
    return 0
