"""``repro.serve`` — the fault-tolerant multi-tenant query service.

A zero-dependency asyncio HTTP/JSON front end over the snapshot-backed
indexes, composing the resilience layer end to end: tenant classes mint
per-request budgets (:mod:`repro.serve.tenancy`), admission control
sheds overload as 429 (:mod:`repro.serve.admission`), circuit breakers
guard each index (:mod:`repro.serve.breaker`), transient absorbed-fault
degradations get one retry or hedge (:mod:`repro.serve.retry`), and
degraded answers ship as HTTP 206 with their serialised
:class:`~repro.resilience.ResilienceReport`
(:mod:`repro.serve.app`).  ``docs/serving.md`` is the operator's guide.
"""

from repro.serve.admission import AdmissionController, AdmissionDecision, TokenBucket
from repro.serve.app import IndexState, ServeApp, start_server
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.protocol import HttpRequest, HttpResponse, json_response
from repro.serve.retry import RetryOutcome, RetryPolicy, is_transient, run_with_retry
from repro.serve.tenancy import TenantClass, TenantPolicy, default_classes

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BreakerState",
    "CircuitBreaker",
    "HttpRequest",
    "HttpResponse",
    "IndexState",
    "RetryOutcome",
    "RetryPolicy",
    "ServeApp",
    "TenantClass",
    "TenantPolicy",
    "TokenBucket",
    "default_classes",
    "is_transient",
    "json_response",
    "run_with_retry",
    "start_server",
]
