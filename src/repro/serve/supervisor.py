"""Supervised multi-process serving (``repro serve --workers N``).

One supervisor process owns the listening socket and a pool of child
workers (:mod:`repro.serve.worker`):

- **N query workers** share the *read-only* snapshot shards — each
  loads the same snapshot files, so any of them can answer any query
  and a crash loses no state;
- **one mutation worker** (present when ``--stream`` directories are
  configured) exclusively owns the write-ahead logs, holding the
  advisory WAL owner lock (:mod:`repro.stream.wal`) so the
  fsync-before-ack durability contract of :mod:`repro.stream` is
  untouched by multi-processing.

The supervisor is a pure router: admission control and per-tenant
token buckets run here (sheds stay synchronous 429s that never touch a
worker), everything else — budgets, breakers, worker-side retries,
206 degradation shaping — runs inside each worker's private
:class:`~repro.serve.app.ServeApp`, which is what keeps a supervised
answer bitwise identical to the single-process server's.

Robustness machinery, all driven by the chaos suite
(``tests/test_serve_procs_chaos.py``):

- **Health checking** — each worker exchanges length-prefixed JSON
  frames over its stdin/stdout pipes; idle workers are pinged every
  ``heartbeat_s``, and a missed heartbeat or wedged dispatch gets the
  worker SIGKILLed and respawned.
- **Respawn with backoff and a flap cap** — a dead worker is respawned
  after an exponentially growing delay (``backoff_base_s`` doubling up
  to ``backoff_cap_s``); more than ``flap_max`` respawns inside
  ``flap_window_s`` marks the slot *failed* and stops the crash loop
  (``serve.workers.flap_capped``).
- **Query failover** — queries are idempotent, so a dispatch that dies
  mid-flight is shaped exactly like an absorbed handler fault (a
  transient, degraded :class:`~repro.resilience.partial.PartialResult`)
  and the standing :func:`repro.serve.retry.run_with_retry` machinery
  retries it once on a surviving worker.  Both attempts dead is an
  honest 503, never a fabricated answer.
- **Mutation re-ack via the WAL seq hint** — mutations are serialized
  through the mutation worker (one in flight, ever).  If it dies
  mid-mutation, the respawned worker's handshake reports the recovered
  ``last_seq``; a hint *above* the last acked seq proves the in-flight
  append reached the fsynced log (re-ack it, resending would apply it
  twice), a hint *at* the last acked seq proves it never did (resend
  it once).  No acked mutation is lost or doubled.
- **Graceful drain** — SIGTERM/SIGINT set a flag (nothing else; the
  DOM207 lint rule polices exactly this), the listener closes, new
  work answers 503 ``draining``, in-flight requests get ``drain_s``
  to finish, then workers are shut down.
- **/readyz quorum** — ready means a majority of query workers are
  live *and* the mutation worker (when configured) is live.

Supervision tree (see ``docs/serving.md`` for the full picture)::

    supervisor ─ listener + admission + router
      ├─ query worker 0   (snapshot shards, read-only)
      ├─ ...
      ├─ query worker N-1 (snapshot shards, read-only)
      └─ mutation worker  (streams; exclusive WAL owner lock)

The ``worker_spawn`` / ``worker_heartbeat`` / ``worker_kill`` fault
seams (:mod:`repro.robust.faults`) patch :func:`_spawn_probe`,
:func:`_heartbeat_probe` and :func:`_kill_probe` to force spawn
failures, missed heartbeats and process kills deterministically.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import sys
import time
from asyncio.subprocess import Process
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro import obs
from repro.exceptions import ProtocolError, ReproError, ServeError
from repro.obs import export as obs_export
from repro.obs import names
from repro.resilience.budget import Budget
from repro.resilience.partial import PartialResult, ResilienceReport
from repro.serve.admission import AdmissionController
from repro.serve.protocol import (
    HttpRequest,
    HttpResponse,
    encode_frame,
    json_response,
    read_frame_async,
    read_request,
    write_response,
)
from repro.serve.retry import RetryPolicy, run_with_retry
from repro.serve.tenancy import TenantClass, TenantPolicy, default_classes

__all__ = [
    "Supervisor",
    "SupervisorConfig",
    "WorkerSlot",
    "WorkerUnavailable",
    "run_supervisor",
]

#: How long one connection may take to deliver a full request
#: (mirrors :mod:`repro.serve.app`).
_READ_TIMEOUT_S = 10.0


class WorkerUnavailable(ServeError):
    """A dispatch found its worker dead, wedged, or gone mid-exchange."""


# ----------------------------------------------------------------------
# Fault seams (patched by repro.robust.faults)
# ----------------------------------------------------------------------
def _spawn_probe() -> None:
    """The ``worker_spawn`` fault seam: a raising hook fails the spawn."""
    return None


def _heartbeat_probe() -> bool:
    """The ``worker_heartbeat`` seam: ``False``/raise = missed beat."""
    return True


def _kill_probe() -> bool:
    """The ``worker_kill`` seam: ``True``/raise = SIGKILL the target.

    Consulted right before each query dispatch, so an injected kill
    lands at the worst moment — with a request about to be in flight —
    which is exactly what the failover path must survive.
    """
    return False


@dataclass
class SupervisorConfig:
    """Everything one :class:`Supervisor` needs to run a worker pool."""

    query_workers: int = 2
    snapshots: "dict[str, str]" = field(default_factory=dict)
    streams: "dict[str, str]" = field(default_factory=dict)
    deadline_scale: float = 1.0
    seed: int = 0
    max_queue: int = 32
    #: Wall clock granted to in-flight requests at drain time.
    drain_s: float = 2.0
    heartbeat_s: float = 0.25
    #: Slack added on top of the tenant's (doubled, for the worker-side
    #: retry) deadline when sizing a dispatch timeout.
    dispatch_margin_s: float = 1.0
    #: How long one worker boot may take before it counts as failed.
    ready_timeout_s: float = 30.0
    backoff_base_s: float = 0.2
    backoff_cap_s: float = 5.0
    flap_window_s: float = 30.0
    flap_max: int = 8
    #: How long a mutation waits for the mutation worker to respawn
    #: before answering 503 ``acked: false``.
    mutation_failover_s: float = 20.0
    worker_max_concurrency: int = 2
    worker_max_queue: int = 8


@dataclass
class WorkerSlot:
    """One supervised child: its process, pipes, and health state."""

    slot: int
    role: str  # "query" | "mutation"
    state: str = "starting"  # starting | ready | dead | failed | stopped
    process: "Process | None" = None
    pid: "int | None" = None
    lock: "asyncio.Lock" = field(default_factory=asyncio.Lock)
    #: Per-index recovered WAL high-water mark from the last handshake.
    last_seq: "dict[str, int]" = field(default_factory=dict)
    indexes: "dict[str, Any]" = field(default_factory=dict)
    restarts: int = 0
    #: Consecutive failed spawn attempts (drives the backoff exponent).
    spawn_failures: int = 0
    #: Successful respawn times inside the flap window (loop clock).
    restart_times: "list[float]" = field(default_factory=list)


@dataclass
class _WorkerReply:
    """One proxied HTTP exchange as it came back over the pipe."""

    status: int
    content_type: str
    headers: "dict[str, str]"
    body: str

    @classmethod
    def from_frame(cls, frame: "Mapping[str, Any]") -> "_WorkerReply":
        return cls(
            status=int(frame.get("status", 500)),
            content_type=str(frame.get("content_type", "application/json")),
            headers={
                str(k): str(v)
                for k, v in dict(frame.get("headers") or {}).items()
            },
            body=str(frame.get("body", "")),
        )

    def to_response(self) -> HttpResponse:
        return HttpResponse(
            status=self.status,
            body=self.body.encode("utf-8"),
            content_type=self.content_type,
            headers=dict(self.headers),
        )


def _worker_fault_outcome(detail: str) -> PartialResult:
    """A dead-worker attempt, shaped exactly like an absorbed fault.

    ``exhausted="fault"`` with one absorbed fault makes
    :func:`repro.serve.retry.is_transient` true, so the standing retry
    machinery spends its one extra attempt on a surviving worker —
    query failover *is* the ordinary transient-retry path.
    """
    report = ResilienceReport()
    report.mark_incomplete("fault")
    report.absorbed_faults = 1
    report.mark_conservative(f"worker unavailable: {detail}")
    return PartialResult([], report)


def _child_env() -> "dict[str, str]":
    """The worker's environment: inherit, plus our import root."""
    env = dict(os.environ)
    serve_dir = os.path.dirname(os.path.abspath(__file__))
    src_root = os.path.dirname(os.path.dirname(serve_dir))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    return env


class Supervisor:
    """The supervisor process: spawn, route, heal, drain."""

    def __init__(self, config: SupervisorConfig) -> None:
        if config.query_workers < 1:
            raise ServeError(
                f"query_workers must be >= 1, got {config.query_workers!r}"
            )
        if not config.snapshots and not config.streams:
            raise ServeError(
                "a supervisor needs at least one snapshot or stream shard"
            )
        self.config = config
        self.policy = TenantPolicy(
            default_classes(deadline_scale=config.deadline_scale)
        )
        self.admission = AdmissionController(
            max_concurrency=max(config.query_workers, 1),
            max_queue=config.max_queue,
        )
        self.retry_policy = RetryPolicy()
        self._rng = random.Random(config.seed)
        self._slots: "list[WorkerSlot]" = []
        self._mutation_slot: "WorkerSlot | None" = None
        #: index name -> which pool serves it ("query" | "mutation").
        self._routes: "dict[str, str]" = {}
        for name in config.snapshots:
            self._routes[name] = "query"
        for name in config.streams:
            self._routes[name] = "mutation"
        #: Per-index highest seq ever acked to a client (the dedup
        #: anchor for crash re-acks).
        self._last_acked: "dict[str, int]" = {}
        self._mutation_gate = asyncio.Lock()
        self._drain_event = asyncio.Event()
        self._frame_ids = 0
        self._rr = 0
        self._server: "asyncio.AbstractServer | None" = None
        self._draining = False
        self._stopping = False
        self._tasks: "set[asyncio.Task[None]]" = set()
        self._heartbeat_task: "asyncio.Task[None] | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "tuple[str, int]":
        """Spawn the pool, bind the listener; returns (host, port)."""
        for i in range(self.config.query_workers):
            self._slots.append(WorkerSlot(slot=i, role="query"))
        if self.config.streams:
            self._mutation_slot = WorkerSlot(
                slot=len(self._slots), role="mutation"
            )
            self._slots.append(self._mutation_slot)
        await asyncio.gather(*(self._boot(slot) for slot in self._slots))
        self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())
        self._server = await asyncio.start_server(
            self.handle_connection, host=host, port=port
        )
        bound = self._server.sockets[0].getsockname()
        return str(bound[0]), int(bound[1])

    async def serve_until_drained(
        self, host: str = "127.0.0.1", port: int = 8080
    ) -> None:
        """The CLI's main coroutine: run until SIGTERM/SIGINT, drain."""
        bound = await self.start(host, port)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loop: Ctrl-C falls back to KeyboardInterrupt
        print(
            f"repro serve supervising {self.config.query_workers} query "
            f"worker(s)"
            + (" + 1 mutation worker" if self._mutation_slot else "")
            + f" on {bound[0]}:{bound[1]}",
            flush=True,
        )
        await self._drain_event.wait()
        await self.drain_and_stop()

    def _request_drain(self) -> None:
        """The SIGTERM/SIGINT handler: set flags, nothing else (DOM207)."""
        self._draining = True
        self._drain_event.set()

    def request_drain(self) -> None:
        """Programmatic drain trigger (what the signal handler does)."""
        self._request_drain()

    async def drain_and_stop(self) -> None:
        """Stop accepting, wait out in-flight work, stop the pool."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(self.config.drain_s, 0.0)
        while self.admission.in_flight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.01)
        if obs.ENABLED:
            if self.admission.in_flight > 0:
                obs.incr(names.SERVE_WORKERS_DRAIN_TIMEOUTS)
            else:
                obs.incr(names.SERVE_WORKERS_DRAINED)
        self._stopping = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        await asyncio.gather(
            *(self._stop_worker(slot) for slot in self._slots),
            return_exceptions=True,
        )
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def _stop_worker(self, slot: WorkerSlot) -> None:
        process = slot.process
        if process is not None and process.returncode is None and (
            slot.state == "ready"
        ):
            try:
                await self._dispatch(slot, {"op": "shutdown"}, timeout=1.0)
            except ServeError:
                pass
        slot.state = "stopped"
        if process is None:
            return
        if process.returncode is None:
            try:
                process.kill()
            except ProcessLookupError:  # pragma: no cover - exit race
                pass
        try:
            await asyncio.wait_for(process.wait(), timeout=5.0)
        except asyncio.TimeoutError:  # pragma: no cover - kernel stall
            pass

    # ------------------------------------------------------------------
    # Spawning, monitoring, respawn
    # ------------------------------------------------------------------
    def _schedule(self, coro: "Any") -> None:
        task: "asyncio.Task[None]" = asyncio.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _worker_config(self, slot: WorkerSlot) -> "dict[str, Any]":
        shared = {
            "deadline_scale": self.config.deadline_scale,
            "seed": self.config.seed + 101 * (slot.slot + 1),
            "max_concurrency": self.config.worker_max_concurrency,
            "max_queue": self.config.worker_max_queue,
        }
        if slot.role == "mutation":
            return {
                "role": "mutation",
                "streams": dict(self.config.streams),
                "snapshots": {},
                **shared,
            }
        return {
            "role": "query",
            "snapshots": dict(self.config.snapshots),
            "streams": {},
            **shared,
        }

    async def _spawn(self, slot: WorkerSlot) -> None:
        """Fork one worker and wait for its ready handshake."""
        _spawn_probe()
        process = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.serve.worker",
            json.dumps(self._worker_config(slot), sort_keys=True),
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=_child_env(),
        )
        slot.process = process
        slot.pid = process.pid
        assert process.stdout is not None
        try:
            frame = await asyncio.wait_for(
                read_frame_async(process.stdout),
                timeout=self.config.ready_timeout_s,
            )
        except (asyncio.TimeoutError, ProtocolError) as error:
            process.kill()
            raise WorkerUnavailable(
                f"worker slot {slot.slot} failed its handshake: {error}"
            ) from None
        if frame is None or frame.get("op") != "ready":
            process.kill()
            raise WorkerUnavailable(
                f"worker slot {slot.slot} sent no ready frame"
            )
        slot.pid = int(frame.get("pid", process.pid))
        slot.last_seq = {
            str(k): int(v)
            for k, v in dict(frame.get("last_seq") or {}).items()
        }
        slot.indexes = dict(frame.get("indexes") or {})
        slot.state = "ready"
        if slot.role == "mutation":
            for index, seq in slot.last_seq.items():
                # First boot only: anchor the dedup mark at the
                # recovered high-water mark.  On respawn the existing
                # mark is the whole point — never overwrite it here.
                self._last_acked.setdefault(index, seq)
        if obs.ENABLED:
            obs.incr(names.SERVE_WORKERS_SPAWNED)
        self._schedule(self._monitor(slot, process))

    async def _boot(self, slot: WorkerSlot) -> None:
        """First spawn of a slot; failures enter the respawn loop."""
        try:
            await self._spawn(slot)
        except (WorkerUnavailable, ArithmeticError, OSError, ValueError):
            slot.state = "dead"
            slot.spawn_failures += 1
            if obs.ENABLED:
                obs.incr(names.SERVE_WORKERS_SPAWN_FAILURES)
            self._schedule(self._respawn_loop(slot))

    async def _monitor(self, slot: WorkerSlot, process: Process) -> None:
        """Wait for one process to die, then heal the slot."""
        await process.wait()
        if self._stopping or slot.process is not process:
            return
        slot.state = "dead"
        if obs.ENABLED:
            obs.incr(names.SERVE_WORKERS_EXITS)
        self._note_quorum(slot)
        await self._respawn_loop(slot)

    def _note_quorum(self, slot: WorkerSlot) -> None:
        if not obs.ENABLED:
            return
        if slot.role == "mutation" or self._live_query() < self._quorum():
            obs.incr(names.SERVE_WORKERS_QUORUM_LOST)

    async def _respawn_loop(self, slot: WorkerSlot) -> None:
        """Exponential backoff respawn, capped by the flap-rate guard."""
        loop = asyncio.get_running_loop()
        while not self._stopping:
            now = loop.time()
            slot.restart_times = [
                t
                for t in slot.restart_times
                if now - t < self.config.flap_window_s
            ]
            if len(slot.restart_times) >= self.config.flap_max:
                slot.state = "failed"
                if obs.ENABLED:
                    obs.incr(names.SERVE_WORKERS_FLAP_CAPPED)
                return
            delay = min(
                self.config.backoff_base_s * (2.0 ** slot.spawn_failures),
                self.config.backoff_cap_s,
            )
            await asyncio.sleep(delay)
            if self._stopping:
                return
            slot.restart_times.append(loop.time())
            try:
                await self._spawn(slot)
            except (WorkerUnavailable, ArithmeticError, OSError, ValueError):
                slot.spawn_failures += 1
                if obs.ENABLED:
                    obs.incr(names.SERVE_WORKERS_SPAWN_FAILURES)
                continue
            slot.spawn_failures = 0
            slot.restarts += 1
            if obs.ENABLED:
                obs.incr(names.SERVE_WORKERS_RESPAWNS)
            return

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.config.heartbeat_s)
            for slot in list(self._slots):
                if self._stopping or slot.state != "ready":
                    continue
                if slot.lock.locked():
                    # Mid-request: the dispatch timeout polices liveness.
                    continue
                try:
                    alive = bool(_heartbeat_probe())
                except ArithmeticError:
                    alive = False
                if alive:
                    try:
                        await self._dispatch(
                            slot,
                            {"op": "ping"},
                            timeout=max(self.config.heartbeat_s * 4, 1.0),
                        )
                        continue
                    except ServeError:
                        pass  # dispatch already marked the slot dead
                if obs.ENABLED:
                    obs.incr(names.SERVE_WORKERS_HEARTBEAT_MISSES)
                self._kill_slot(slot)

    def _kill_slot(self, slot: WorkerSlot) -> None:
        """SIGKILL one worker; the monitor task owns the respawn."""
        process = slot.process
        slot.state = "dead"
        if process is not None and process.returncode is None:
            if obs.ENABLED:
                obs.incr(names.SERVE_WORKERS_KILLS)
            try:
                process.kill()
            except ProcessLookupError:  # pragma: no cover - exit race
                pass

    # ------------------------------------------------------------------
    # Frame dispatch
    # ------------------------------------------------------------------
    def _next_frame_id(self) -> int:
        self._frame_ids += 1
        return self._frame_ids

    async def _dispatch(
        self, slot: WorkerSlot, payload: "Mapping[str, Any]", timeout: float
    ) -> "dict[str, Any]":
        """One frame exchange under the slot's lock (workers are serial)."""
        process = slot.process
        if process is None or slot.state != "ready":
            raise WorkerUnavailable(
                f"worker slot {slot.slot} is {slot.state}"
            )
        async with slot.lock:
            frame = dict(payload)
            frame["id"] = self._next_frame_id()
            loop = asyncio.get_running_loop()
            deadline = loop.time() + max(timeout, 0.05)
            try:
                assert process.stdin is not None
                assert process.stdout is not None
                process.stdin.write(encode_frame(frame))
                await asyncio.wait_for(
                    process.stdin.drain(),
                    timeout=max(deadline - loop.time(), 0.05),
                )
                while True:
                    reply = await asyncio.wait_for(
                        read_frame_async(process.stdout),
                        timeout=max(deadline - loop.time(), 0.05),
                    )
                    if reply is None:
                        raise WorkerUnavailable(
                            f"worker {slot.pid} closed its pipe"
                        )
                    if reply.get("id") == frame["id"]:
                        return reply
            except (
                asyncio.TimeoutError,
                ConnectionResetError,
                BrokenPipeError,
                ProtocolError,
                OSError,
            ) as error:
                self._kill_slot(slot)
                raise WorkerUnavailable(
                    f"worker {slot.pid} lost mid-dispatch: "
                    f"{type(error).__name__}: {error}"
                ) from None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def handle(self, request: HttpRequest) -> HttpResponse:
        if obs.ENABLED:
            obs.incr(names.SERVE_REQUESTS)
        if request.path == "/healthz":
            return json_response(200, {"status": "ok", "supervisor": True})
        if request.path == "/readyz":
            return self._readyz()
        if request.path == "/metrics":
            text = obs_export.to_prometheus(obs.collect())
            return HttpResponse(
                status=200,
                body=text.encode("utf-8"),
                content_type="text/plain; version=0.0.4",
            )
        if request.path in ("/query", "/v1/query"):
            if request.method != "POST":
                return json_response(
                    405, {"error": "method_not_allowed", "allow": "POST"}
                )
            if self._draining:
                return self._unavailable_draining()
            return await self._handle_query(request)
        if request.path in ("/mutate", "/v1/mutate"):
            if request.method != "POST":
                return json_response(
                    405, {"error": "method_not_allowed", "allow": "POST"}
                )
            if self._draining:
                return self._unavailable_draining()
            return await self._handle_mutate(request)
        return json_response(404, {"error": "not_found", "path": request.path})

    def _unavailable_draining(self) -> HttpResponse:
        if obs.ENABLED:
            obs.incr(names.SERVE_RESPONSES_UNAVAILABLE)
        return json_response(
            503,
            {"error": "draining", "retry_after_s": 1.0},
            headers={"Retry-After": "1.000"},
        )

    def _live_query(self) -> int:
        return sum(
            1
            for s in self._slots
            if s.role == "query" and s.state == "ready"
        )

    def _quorum(self) -> int:
        total = sum(1 for s in self._slots if s.role == "query")
        return max(1, (total + 1) // 2)

    def _readyz(self) -> HttpResponse:
        query_total = sum(1 for s in self._slots if s.role == "query")
        query_live = self._live_query()
        quorum = self._quorum()
        mutation_live = (
            self._mutation_slot is not None
            and self._mutation_slot.state == "ready"
        )
        ready = (
            query_live >= quorum
            and (self._mutation_slot is None or mutation_live)
            and not self._draining
        )
        indexes: "dict[str, Any]" = {}
        for slot in self._slots:
            if slot.state == "ready":
                for name, info in slot.indexes.items():
                    indexes.setdefault(name, info)
        payload: "dict[str, Any]" = {
            "ready": ready,
            "draining": self._draining,
            "workers": {
                "query": {
                    "total": query_total,
                    "live": query_live,
                    "quorum": quorum,
                },
                "mutation": (
                    {"live": mutation_live}
                    if self._mutation_slot is not None
                    else None
                ),
                "slots": [
                    {
                        "slot": s.slot,
                        "role": s.role,
                        "state": s.state,
                        "pid": s.pid,
                        "restarts": s.restarts,
                    }
                    for s in self._slots
                ],
            },
            "indexes": indexes,
        }
        return json_response(200 if ready else 503, payload)

    # ------------------------------------------------------------------
    # The query path: route, admit, dispatch with failover
    # ------------------------------------------------------------------
    def _dispatch_allowance_s(self, tenant: TenantClass) -> float:
        # The worker may spend up to two budgeted attempts internally.
        return (
            2.0 * tenant.deadline_ms / 1000.0 + self.config.dispatch_margin_s
        )

    async def _handle_query(self, request: HttpRequest) -> HttpResponse:
        started = time.perf_counter()
        tenant = self.policy.resolve(request.header("x-tenant-class") or None)
        if obs.ENABLED:
            obs.incr(names.tenant_outcome(tenant.name, "requests"))
        try:
            payload = request.json()
        except ProtocolError as error:
            if obs.ENABLED:
                obs.incr(names.SERVE_RESPONSES_REJECTED)
            return json_response(
                400, {"error": "validation", "message": str(error)}
            )
        index_name = payload.get("index", "default")
        if not isinstance(index_name, str) or not index_name:
            if obs.ENABLED:
                obs.incr(names.SERVE_RESPONSES_REJECTED)
            return json_response(
                400,
                {
                    "error": "validation",
                    "message": f"index must be a non-empty string, "
                    f"got {index_name!r}",
                },
            )
        route = self._routes.get(index_name)
        if route is None:
            if obs.ENABLED:
                obs.incr(names.SERVE_RESPONSES_REJECTED)
            return json_response(
                404,
                {
                    "error": "unknown_index",
                    "index": index_name,
                    "known": sorted(self._routes),
                },
            )
        decision = self.admission.try_admit(tenant)
        if not decision.admitted:
            return self._shed(
                tenant, decision.reason or "queue_full", decision.retry_after_s
            )
        body_text = request.body.decode("utf-8")
        async with self.admission.slot():
            settled = await run_with_retry(
                self._attempt_factory(route, request.path, tenant, body_text),
                self.retry_policy,
                self._rng,
                allow_retry=True,
                hedge=False,
            )
        outcome = settled.outcome
        if obs.ENABLED:
            obs.observe(names.SERVE_LATENCY_S, time.perf_counter() - started)
        if isinstance(outcome, _WorkerReply):
            self._count_query_status(outcome.status, tenant)
            return outcome.to_response()
        # Every attempt lost its worker: an honest 503, never a
        # fabricated answer (the invariant tolerates 503, not wrong 200s).
        if obs.ENABLED:
            obs.incr(names.SERVE_RESPONSES_UNAVAILABLE)
        return json_response(
            503,
            {
                "error": "worker_unavailable",
                "retry_after_s": self.config.backoff_base_s,
                "attempts": settled.attempts,
            },
            headers={"Retry-After": f"{self.config.backoff_base_s:.3f}"},
        )

    def _attempt_factory(
        self, route: str, path: str, tenant: TenantClass, body_text: str
    ) -> "Any":
        budget = Budget(deadline_s=self._dispatch_allowance_s(tenant)).start()

        async def attempt() -> "Any":
            slot = self._pick_slot(route)
            if slot is None:
                if obs.ENABLED:
                    obs.incr(names.SERVE_WORKERS_FAILOVERS)
                return _worker_fault_outcome(f"no live {route} worker")
            try:
                chaos_kill = bool(_kill_probe())
            except ArithmeticError:
                chaos_kill = True
            if chaos_kill:
                self._kill_slot(slot)
            remaining = budget.remaining_s()
            timeout = (
                remaining
                if remaining is not None
                else self.config.dispatch_margin_s
            )
            try:
                reply = await self._dispatch(
                    slot,
                    {
                        "op": "request",
                        "method": "POST",
                        "path": path,
                        "headers": {"x-tenant-class": tenant.name},
                        "body": body_text,
                    },
                    timeout=timeout,
                )
            except WorkerUnavailable as error:
                if obs.ENABLED:
                    obs.incr(names.SERVE_WORKERS_FAILOVERS)
                return _worker_fault_outcome(str(error))
            if reply.get("op") != "response":
                if obs.ENABLED:
                    obs.incr(names.SERVE_WORKERS_FAILOVERS)
                return _worker_fault_outcome(
                    f"unexpected frame op {reply.get('op')!r}"
                )
            return _WorkerReply.from_frame(reply)

        return attempt

    def _pick_slot(self, route: str) -> "WorkerSlot | None":
        if route == "mutation":
            slot = self._mutation_slot
            if slot is not None and slot.state == "ready":
                return slot
            return None
        ready = [
            s
            for s in self._slots
            if s.role == "query" and s.state == "ready"
        ]
        if not ready:
            return None
        self._rr += 1
        return ready[self._rr % len(ready)]

    def _count_query_status(self, status: int, tenant: TenantClass) -> None:
        if not obs.ENABLED:
            return
        if status == 200:
            obs.incr(names.SERVE_RESPONSES_OK)
            obs.incr(names.tenant_outcome(tenant.name, "ok"))
        elif status == 206:
            obs.incr(names.SERVE_RESPONSES_DEGRADED)
            obs.incr(names.tenant_outcome(tenant.name, "degraded"))
        elif status == 429:
            obs.incr(names.SERVE_RESPONSES_SHED)
            obs.incr(names.tenant_outcome(tenant.name, "shed"))
        elif status in (400, 404, 409):
            obs.incr(names.SERVE_RESPONSES_REJECTED)
        elif status >= 500:
            obs.incr(names.SERVE_RESPONSES_UNAVAILABLE)

    def _shed(
        self, tenant: TenantClass, reason: str, retry_after_s: float
    ) -> HttpResponse:
        if obs.ENABLED:
            obs.incr(names.SERVE_RESPONSES_SHED)
            obs.incr(names.tenant_outcome(tenant.name, "shed"))
        retry_after = max(retry_after_s, 0.05)
        return json_response(
            429,
            {
                "error": "shed",
                "reason": reason,
                "retry_after_s": retry_after,
                "tenant_class": tenant.name,
            },
            headers={"Retry-After": f"{retry_after:.3f}"},
        )

    # ------------------------------------------------------------------
    # The mutation path: serialize, dispatch, dedup on crash
    # ------------------------------------------------------------------
    async def _handle_mutate(self, request: HttpRequest) -> HttpResponse:
        tenant = self.policy.resolve(request.header("x-tenant-class") or None)
        if obs.ENABLED:
            obs.incr(names.SERVE_MUTATIONS)
            obs.incr(names.tenant_outcome(tenant.name, "requests"))
        try:
            payload = request.json()
        except ProtocolError as error:
            if obs.ENABLED:
                obs.incr(names.SERVE_MUTATIONS_REJECTED)
            return json_response(
                400, {"error": "validation", "message": str(error)}
            )
        index_name = payload.get("index", "default")
        if not isinstance(index_name, str) or not index_name:
            if obs.ENABLED:
                obs.incr(names.SERVE_MUTATIONS_REJECTED)
            return json_response(
                400,
                {
                    "error": "validation",
                    "message": f"index must be a non-empty string, "
                    f"got {index_name!r}",
                },
            )
        route = self._routes.get(index_name)
        if route is None:
            if obs.ENABLED:
                obs.incr(names.SERVE_MUTATIONS_REJECTED)
            return json_response(
                404,
                {
                    "error": "unknown_index",
                    "index": index_name,
                    "known": sorted(self._routes),
                },
            )
        if route != "mutation":
            if obs.ENABLED:
                obs.incr(names.SERVE_MUTATIONS_REJECTED)
            return json_response(
                409,
                {
                    "error": "immutable_index",
                    "index": index_name,
                    "message": "index is a frozen snapshot shard; serve it "
                    "with --stream to accept mutations",
                },
            )
        decision = self.admission.try_admit(tenant)
        if not decision.admitted:
            return self._shed(
                tenant, decision.reason or "queue_full", decision.retry_after_s
            )
        frame = {
            "op": "request",
            "method": "POST",
            "path": request.path,
            "headers": {"x-tenant-class": tenant.name},
            "body": request.body.decode("utf-8"),
        }
        timeout = self._dispatch_allowance_s(tenant)
        async with self.admission.slot():
            # One mutation in flight, ever: the serialization that makes
            # the crash-recovery seq comparison exact.
            async with self._mutation_gate:
                slot = self._mutation_slot
                assert slot is not None  # route == "mutation" implies it
                try:
                    reply = await self._dispatch(slot, frame, timeout=timeout)
                except WorkerUnavailable:
                    return await self._recover_mutation(
                        slot, index_name, payload, frame, timeout
                    )
                return self._finish_mutation(index_name, reply)

    def _finish_mutation(
        self, index_name: str, reply: "Mapping[str, Any]"
    ) -> HttpResponse:
        result = _WorkerReply.from_frame(reply)
        if result.status == 200:
            try:
                seq = int(json.loads(result.body).get("seq", 0))
            except (ValueError, AttributeError):
                seq = 0
            if seq > 0:
                self._last_acked[index_name] = max(
                    self._last_acked.get(index_name, 0), seq
                )
            if obs.ENABLED:
                obs.incr(names.SERVE_MUTATIONS_ACKED)
        return result.to_response()

    async def _recover_mutation(
        self,
        slot: WorkerSlot,
        index_name: str,
        payload: "Mapping[str, Any]",
        frame: "dict[str, Any]",
        timeout: float,
    ) -> HttpResponse:
        """Mutation-worker death with one in-flight mutation: dedup.

        The respawned worker's handshake carries the WAL's recovered
        high-water mark.  Above the last acked seq, the in-flight
        append was durable before the crash — re-ack it with the
        recovered seq (resending would apply the mutation twice).  At
        the last acked seq, it provably never reached the log — resend
        it once.  The comparison is exact *because* mutations are
        serialized through :attr:`_mutation_gate`.
        """
        ready = await self._await_slot_ready(
            slot, self.config.mutation_failover_s
        )
        if not ready:
            if obs.ENABLED:
                obs.incr(names.SERVE_RESPONSES_UNAVAILABLE)
            return json_response(
                503,
                {
                    "error": "mutation_failed",
                    "acked": False,
                    "message": "mutation worker did not recover in time",
                },
            )
        last_acked = self._last_acked.get(index_name, 0)
        recovered_seq = slot.last_seq.get(index_name, 0)
        if recovered_seq > last_acked:
            self._last_acked[index_name] = recovered_seq
            if obs.ENABLED:
                obs.incr(names.SERVE_WORKERS_MUTATIONS_REACKED)
                obs.incr(names.SERVE_MUTATIONS_ACKED)
            return json_response(
                200,
                {
                    "acked": True,
                    "seq": recovered_seq,
                    "op": payload.get("op"),
                    "key": payload.get("key"),
                    "index": index_name,
                    "recovered": True,
                },
            )
        if obs.ENABLED:
            obs.incr(names.SERVE_WORKERS_MUTATIONS_RESENT)
        try:
            reply = await self._dispatch(slot, dict(frame), timeout=timeout)
        except WorkerUnavailable:
            if obs.ENABLED:
                obs.incr(names.SERVE_RESPONSES_UNAVAILABLE)
            return json_response(
                503,
                {
                    "error": "mutation_failed",
                    "acked": False,
                    "message": "mutation worker died twice in one request",
                },
            )
        return self._finish_mutation(index_name, reply)

    async def _await_slot_ready(
        self, slot: WorkerSlot, timeout_s: float
    ) -> bool:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while loop.time() < deadline:
            if slot.state == "ready":
                return True
            if slot.state == "failed":
                return False
            await asyncio.sleep(0.02)
        return bool(slot.state == "ready")

    # ------------------------------------------------------------------
    # Connection plumbing (mirrors ServeApp.handle_connection)
    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader), timeout=_READ_TIMEOUT_S
                )
            except asyncio.TimeoutError:
                if obs.ENABLED:
                    obs.incr(names.SERVE_PROTOCOL_ERRORS)
                await write_response(
                    writer, json_response(408, {"error": "request_timeout"})
                )
                return
            except ProtocolError as error:
                if obs.ENABLED:
                    obs.incr(names.SERVE_PROTOCOL_ERRORS)
                status = int(getattr(error, "status", 400))
                await write_response(
                    writer,
                    json_response(
                        status, {"error": "protocol", "message": str(error)}
                    ),
                )
                return
            try:
                response = await self.handle(request)
            except ReproError as error:
                response = json_response(
                    500, {"error": type(error).__name__, "message": str(error)}
                )
            await write_response(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass  # the client hung up; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # Introspection (tests, smoke, bench)
    # ------------------------------------------------------------------
    def worker_pids(self, role: "str | None" = None) -> "list[int]":
        """Live worker pids (optionally one role's), for chaos drivers."""
        return [
            s.pid
            for s in self._slots
            if s.pid is not None
            and s.state == "ready"
            and (role is None or s.role == role)
        ]

    def slots_snapshot(self) -> "list[dict[str, Any]]":
        return [
            {
                "slot": s.slot,
                "role": s.role,
                "state": s.state,
                "pid": s.pid,
                "restarts": s.restarts,
            }
            for s in self._slots
        ]


def run_supervisor(
    *,
    workers: int,
    snapshots: "Mapping[str, str]",
    streams: "Mapping[str, str]",
    host: str = "127.0.0.1",
    port: int = 8080,
    drain_ms: float = 2000.0,
    deadline_scale: float = 1.0,
    max_queue: int = 32,
    seed: int = 0,
    n: int = 400,
    dimension: int = 3,
) -> int:
    """The ``repro serve --workers N`` entry point (blocking).

    With neither snapshots nor streams, a synthetic SS-tree snapshot is
    materialised into a temporary directory so the workers have a
    shared read-only shard to load — the same fixture the
    single-process server builds in memory.
    """
    import shutil
    import tempfile

    snapshots = dict(snapshots)
    streams = dict(streams)
    scratch: "str | None" = None
    if not snapshots and not streams:
        from repro.data.synthetic import synthetic_dataset
        from repro.index import snapshot as snapshot_io
        from repro.index.sstree import SSTree

        scratch = tempfile.mkdtemp(prefix="repro-serve-workers-")
        dataset = synthetic_dataset(n, dimension, seed=seed)
        tree = SSTree.bulk_load(dataset.items())
        path = os.path.join(scratch, "default.snap")
        snapshot_io.save(tree, path)
        snapshots["default"] = path
    supervisor = Supervisor(
        SupervisorConfig(
            query_workers=workers,
            snapshots=snapshots,
            streams=streams,
            deadline_scale=deadline_scale,
            seed=seed,
            max_queue=max_queue,
            drain_s=max(drain_ms, 0.0) / 1000.0,
        )
    )
    try:
        asyncio.run(supervisor.serve_until_drained(host, port))
    except KeyboardInterrupt:  # pragma: no cover - no-signal-handler path
        print("interrupted; shutting down", file=sys.stderr)
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)
    return 0
