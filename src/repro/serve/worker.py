"""One supervised serving worker (``python -m repro.serve.worker``).

The multi-process front end (:mod:`repro.serve.supervisor`) forks N of
these as child processes.  Each worker builds a full private
:class:`~repro.serve.app.ServeApp` — budgets, breakers, retries and
206-shaping all behave exactly as in the single-process server, which
is what makes the chaos suite's bitwise-baseline comparison possible —
and then serves length-prefixed JSON frames
(:func:`repro.serve.protocol.read_frame`) off its **stdin**, answering
on its **stdout**.  stderr passes through to the supervisor for
operator logs.

The child side is deliberately a plain synchronous loop: the
supervisor dispatches at most one request at a time per worker (the
pipe is the queue), so there is nothing to overlap and nothing for the
async-blocking lint rules to police.  Each request frame is executed
by driving the app's own async ``handle`` on a private event loop.

Frame vocabulary (all objects carry the caller's ``id`` back):

- ``{"op": "ready"}`` — sent once by the worker after boot, carrying
  ``pid``, ``role``, per-index health and, for streaming indexes, the
  recovered ``last_seq`` high-water mark.  The supervisor uses the
  seq hint to decide, after a mutation-worker crash, whether the
  in-flight mutation became durable (re-ack) or not (resend) — see
  ``docs/serving.md``.
- ``{"op": "ping", "id": n}`` → ``{"op": "pong", "id": n}`` —
  heartbeat.
- ``{"op": "request", "id": n, "method", "path", "headers", "body"}``
  → ``{"op": "response", "id": n, "status", "content_type",
  "headers", "body"}`` — one HTTP exchange by proxy.
- ``{"op": "shutdown", "id": n}`` → ``{"op": "bye", "id": n}`` —
  graceful exit (drain is the supervisor's business; the worker is
  idle by construction when it reads a frame).

A ``mutation``-role worker opens its streaming directories with the
exclusive WAL owner lock (:mod:`repro.stream.wal`), so a respawned
worker can never race a wedged predecessor for the log.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from typing import Any, BinaryIO, Mapping, Sequence

from repro import obs
from repro.exceptions import ProtocolError, ReproError
from repro.serve.admission import AdmissionController
from repro.serve.app import ServeApp
from repro.serve.protocol import (
    HttpRequest,
    encode_frame,
    json_response,
    read_frame,
)
from repro.serve.tenancy import TenantPolicy, default_classes

__all__ = ["build_worker_app", "main", "serve_frames"]


def build_worker_app(config: "Mapping[str, Any]") -> ServeApp:
    """One :class:`ServeApp` from the supervisor's JSON worker config.

    Query workers get the (shared, read-only) snapshot shards; the
    mutation worker gets the streaming directories and takes the
    exclusive WAL owner lock on each.  Corruption quarantines exactly
    as in the single-process server — the worker still boots and
    reports the index unhealthy in its handshake.
    """
    exclusive = config.get("role") == "mutation"
    app = ServeApp(
        policy=TenantPolicy(
            default_classes(
                deadline_scale=float(config.get("deadline_scale", 1.0))
            )
        ),
        admission=AdmissionController(
            max_concurrency=int(config.get("max_concurrency", 2)),
            max_queue=int(config.get("max_queue", 8)),
        ),
        seed=int(config.get("seed", 0)),
    )
    for name, directory in dict(config.get("streams") or {}).items():
        state = app.load_stream(str(name), str(directory), exclusive=exclusive)
        if state.quarantined:
            print(
                f"worker {os.getpid()}: streaming index {name!r} quarantined: "
                f"{state.error}",
                file=sys.stderr,
            )
    for name, path in dict(config.get("snapshots") or {}).items():
        state = app.load_snapshot(str(name), str(path))
        if state.quarantined:
            print(
                f"worker {os.getpid()}: index {name!r} quarantined: "
                f"{state.error}",
                file=sys.stderr,
            )
    return app


def _handshake(app: ServeApp, role: str) -> "dict[str, Any]":
    indexes: "dict[str, Any]" = {}
    last_seq: "dict[str, int]" = {}
    for name, state in app.indexes.items():
        indexes[name] = {"healthy": state.healthy, "mutable": state.mutable}
        if state.stream is not None:
            last_seq[name] = state.stream.last_seq
    return {
        "op": "ready",
        "pid": os.getpid(),
        "role": role,
        "indexes": indexes,
        "last_seq": last_seq,
    }


def _send(stdout: "BinaryIO", payload: "Mapping[str, Any]") -> None:
    stdout.write(encode_frame(payload))
    stdout.flush()


def _serve_request(
    app: ServeApp,
    loop: "asyncio.AbstractEventLoop",
    frame: "Mapping[str, Any]",
) -> "dict[str, Any]":
    headers = {
        str(key).lower(): str(value)
        for key, value in dict(frame.get("headers") or {}).items()
    }
    request = HttpRequest(
        method=str(frame.get("method", "POST")),
        path=str(frame.get("path", "/query")),
        query={},
        headers=headers,
        body=str(frame.get("body", "")).encode("utf-8"),
    )
    try:
        response = loop.run_until_complete(app.handle(request))
    except ReproError as error:
        response = json_response(
            500, {"error": type(error).__name__, "message": str(error)}
        )
    return {
        "op": "response",
        "id": frame.get("id"),
        "status": response.status,
        "content_type": response.content_type,
        "headers": dict(response.headers),
        "body": response.body.decode("utf-8"),
    }


def serve_frames(
    app: ServeApp,
    loop: "asyncio.AbstractEventLoop",
    stdin: "BinaryIO",
    stdout: "BinaryIO",
    role: str,
) -> None:
    """The worker's whole life: handshake, then frames until EOF."""
    _send(stdout, _handshake(app, role))
    while True:
        try:
            frame = read_frame(stdin)
        except ProtocolError:
            # A torn frame means the supervisor died mid-write (or the
            # pipe is garbage); either way there is no one to answer.
            break
        if frame is None:
            break
        op = frame.get("op")
        if op == "ping":
            _send(
                stdout,
                {"op": "pong", "id": frame.get("id"), "pid": os.getpid()},
            )
        elif op == "request":
            _send(stdout, _serve_request(app, loop, frame))
        elif op == "shutdown":
            _send(stdout, {"op": "bye", "id": frame.get("id")})
            break
        else:
            _send(
                stdout,
                {
                    "op": "error",
                    "id": frame.get("id"),
                    "message": f"unknown op {op!r}",
                },
            )


def main(argv: "Sequence[str] | None" = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print(
            "usage: python -m repro.serve.worker '<json config>'",
            file=sys.stderr,
        )
        return 2
    try:
        config = json.loads(args[0])
    except ValueError as error:
        print(f"worker: config is not valid JSON: {error}", file=sys.stderr)
        return 2
    if not isinstance(config, dict):
        print("worker: config must be a JSON object", file=sys.stderr)
        return 2
    role = str(config.get("role", "query"))
    obs.enable()
    try:
        app = build_worker_app(config)
    except ReproError as error:
        print(f"worker: boot failed: {error}", file=sys.stderr)
        return 1
    loop = asyncio.new_event_loop()
    try:
        serve_frames(app, loop, sys.stdin.buffer, sys.stdout.buffer, role)
    finally:
        loop.close()
        app.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    raise SystemExit(main())
