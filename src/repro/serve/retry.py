"""Server-side retries with jittered backoff, and optional hedging.

Some degradations are *transient*: an absorbed kernel fault or a
corrupted intermediate that poisoned one attempt will usually not
recur, because the fault absorption machinery (PR 4) turned it into a
conservative answer rather than an error.  For tenants entitled to it,
the server spends one extra attempt on such requests:

- **Sequential retry** — wait ``backoff_s`` ± jitter, then rerun the
  query with a *fresh* budget.  Jitter is decorrelated per request so
  a burst of faulted requests does not resynchronise into a retry
  stampede.
- **Hedged retry** — for latency-sensitive tenants the second attempt
  starts after only a short fixed stagger (``hedge_delay_s``) instead
  of a full exponential backoff, and the *better* outcome wins (clean
  beats degraded; ties go to the first attempt).  Hedging trades work
  for tail latency, so only the interactive class defaults to it.

What is retryable is deliberately narrow (:func:`is_transient`): only
outcomes degraded by **absorbed faults** qualify.  Deadline or quota
exhaustion is *not* retried — the budget was the product decision, and
retrying an exhausted request doubles load exactly when the server can
least afford it.  Load sheds never reach this module (they are decided
before execution).

Randomness comes from a :class:`random.Random` seeded per policy, so
tests replay byte-identically.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

from repro import obs
from repro.exceptions import ServeError
from repro.obs import names
from repro.resilience.partial import PartialResult

__all__ = ["RetryPolicy", "RetryOutcome", "is_transient", "run_with_retry"]


#: Exhaustion reasons that mean "the budget was spent", where a retry
#: would just spend another budget on the same outcome.
_BUDGET_REASONS = frozenset({"deadline", "candidates", "escalations", "clock"})


def is_transient(outcome: "Any") -> bool:
    """Whether *outcome* degraded in a way a retry could repair.

    True exactly when the resilience report carries absorbed faults —
    the marker of a corrupted intermediate rather than an exhausted
    budget.  A clean result, a non-degraded partial, or a
    deadline/quota exhaustion all return False.  (A handler-level fault
    absorbed by the serving layer records reason ``"fault"``, which is
    deliberately *not* in the budget-reason set: it is transient.)
    """
    if not isinstance(outcome, PartialResult):
        return False
    report = outcome.report
    if not report.degraded:
        return False
    return (
        report.absorbed_faults > 0 and report.exhausted not in _BUDGET_REASONS
    )


@dataclass(frozen=True)
class RetryPolicy:
    """How much extra work a degraded request may cost the server."""

    #: Total attempts, first included (2 = one retry).
    max_attempts: int = 2
    #: Base pause before a sequential retry, seconds.
    backoff_s: float = 0.01
    #: Jitter fraction: the pause is drawn from backoff_s * [1-j, 1+j].
    jitter: float = 0.5
    #: Stagger before a hedged second attempt, seconds.
    hedge_delay_s: float = 0.005

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ServeError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.backoff_s < 0.0 or self.hedge_delay_s < 0.0:
            raise ServeError("backoff_s and hedge_delay_s must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ServeError(f"jitter must be in [0, 1], got {self.jitter!r}")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """The jittered pause before *attempt* (1-based retry index)."""
        base = self.backoff_s * (2.0 ** (attempt - 1))
        spread = self.jitter * base
        return max(base - spread + rng.random() * 2.0 * spread, 0.0)


@dataclass(frozen=True)
class RetryOutcome:
    """What the retry loop settled on, plus its spend."""

    outcome: Any
    attempts: int
    hedged: bool
    #: Whether a retry turned a degraded outcome into a clean one.
    rescued: bool


def _better(first: Any, second: Any) -> Any:
    """Prefer the clean outcome; tie-break toward the first attempt."""
    return second if not _degraded(second) else first


def _degraded(outcome: Any) -> bool:
    return isinstance(outcome, PartialResult) and outcome.report.degraded


async def run_with_retry(
    attempt: "Callable[[], Awaitable[Any]]",
    policy: RetryPolicy,
    rng: random.Random,
    *,
    allow_retry: bool = True,
    hedge: bool = False,
) -> RetryOutcome:
    """Run *attempt* under *policy*; every attempt gets a fresh call.

    The callable owns budget minting, so each attempt runs against a
    full per-tenant budget rather than the exhausted remains of the
    previous one.
    """
    first = await attempt()
    if (
        not allow_retry
        or policy.max_attempts < 2
        or not is_transient(first)
    ):
        return RetryOutcome(outcome=first, attempts=1, hedged=False, rescued=False)

    if obs.ENABLED:
        obs.incr(names.SERVE_RETRIES)
    if hedge:
        if obs.ENABLED:
            obs.incr(names.SERVE_HEDGES)
        if policy.hedge_delay_s:
            await asyncio.sleep(policy.hedge_delay_s)
        second = await attempt()
    else:
        await asyncio.sleep(policy.backoff(1, rng))
        second = await attempt()
    settled = _better(first, second)
    rescued = _degraded(first) and not _degraded(settled)
    if rescued and obs.ENABLED:
        obs.incr(names.SERVE_RETRY_RESCUES)
    return RetryOutcome(
        outcome=settled, attempts=2, hedged=hedge, rescued=rescued
    )
