"""The fault-tolerant multi-tenant query service (``repro serve``).

One :class:`ServeApp` serves kNN / RkNN / top-k-dominating queries over
immutable snapshot-backed indexes, hardened end to end:

- **Warm start with quarantine** — indexes load from crash-safe
  snapshots (:mod:`repro.index.snapshot`); a
  :class:`~repro.exceptions.SnapshotCorruptionError` at boot marks the
  index *quarantined* instead of crashing the process, and ``/readyz``
  reflects it.
- **Admission first** — every query passes the tenant's token bucket
  and the bounded queue (:mod:`repro.serve.admission`) before any work
  starts; saturation is a 429 with Retry-After, never a timeout.
- **A budget per request** — the tenant class mints a fresh
  :class:`~repro.resilience.Budget`; past the deadline the query layer
  degrades to certified-conservative partial answers (the paper's
  MinMax tier), which the service returns as **HTTP 206** with the
  serialised :class:`~repro.resilience.ResilienceReport`.
- **Retries and hedging** — a request degraded by a *transient*
  absorbed fault is retried once (jittered backoff, or a short hedge
  stagger for interactive tenants) before the 206 is accepted
  (:mod:`repro.serve.retry`).
- **A circuit breaker per index** — consecutive absorbed-fault
  interactions open the breaker (:mod:`repro.serve.breaker`); while
  open, requests short-circuit to 429 without touching the index, and
  half-open probes decide recovery.

The degradation invariant, now spanning the network layer: **no fault
or overload mode ever yields a wrong certified verdict, and overload /
degradation surface only as 206 or 429, never as 5xx**
(``tests/test_serve_chaos.py`` drives this across every serve seam ×
mode of :mod:`repro.robust.faults`).

Queries execute on a thread-pool executor sized to the admission
concurrency bound, each under ``contextvars.copy_context()`` so the
active obs registry, budget scope and event log all propagate into the
worker thread.  The ``"handler"`` fault seam patches
:func:`_handler_hook` to inject slow or exploding handlers.
"""

from __future__ import annotations

import asyncio
import contextvars
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Mapping

from repro import obs
from repro.exceptions import (
    ProtocolError,
    ReproError,
    ServeError,
    SnapshotCorruptionError,
    SnapshotError,
    StreamError,
    ValidationError,
    WalError,
)
from repro.geometry.hypersphere import Hypersphere
from repro.index import snapshot as snapshot_io
from repro.index.linear import LinearIndex
from repro.obs import export as obs_export
from repro.obs import names
from repro.queries.dominating import top_k_dominating
from repro.queries.knn import knn_query
from repro.queries.rknn import rnn_candidates
from repro.queries.validation import validate_mutation
from repro.resilience.budget import scope as budget_scope
from repro.resilience.partial import PartialResult, ResilienceReport, to_jsonable
from repro.serve.admission import AdmissionController
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.protocol import (
    HttpRequest,
    HttpResponse,
    json_response,
    read_request,
    write_response,
)
from repro.serve.retry import RetryPolicy, run_with_retry
from repro.serve.tenancy import TenantClass, TenantPolicy
from repro.stream.engine import StreamingIndex

__all__ = ["IndexState", "ServeApp", "start_server"]

QUERY_KINDS = ("knn", "rknn", "dominating")

#: Ceiling on one injected handler delay, seconds — keeps a poisoned
#: hook from parking an executor thread indefinitely.
_MAX_HANDLER_DELAY_S = 0.5

#: How long one connection may take to deliver a full request.
_READ_TIMEOUT_S = 10.0


def _handler_hook() -> float:
    """Extra handler delay in seconds (normally zero).

    The ``"handler"`` fault seam (:mod:`repro.robust.faults`) patches
    this attribute to simulate slow or exploding request handlers; a
    raising hook is absorbed into a conservative 206, never a 5xx.
    """
    return 0.0


@dataclass
class IndexState:
    """One served index: the structure, its flat view, its breaker."""

    name: str
    index: "Any | None"
    #: Flat (key, sphere) view for the scan-shaped queries (RkNN,
    #: top-k-dominating); built once at registration.
    flat: "LinearIndex | None"
    breaker: CircuitBreaker
    healthy: bool = True
    error: "str | None" = None
    source: "str | None" = None
    #: The durable mutation pipeline behind this index, when serving a
    #: streaming directory instead of a frozen snapshot.  Queries then
    #: merge the live overlay and ``POST /mutate`` is accepted.
    stream: "StreamingIndex | None" = None

    @property
    def quarantined(self) -> bool:
        return not self.healthy

    @property
    def mutable(self) -> bool:
        return self.stream is not None

    def snapshot(self) -> "dict[str, Any]":
        """The health block ``/readyz`` publishes for this index."""
        info: "dict[str, Any]" = {
            "healthy": self.healthy,
            "breaker": self.breaker.snapshot(),
        }
        if self.stream is not None:
            info["mutable"] = True
            info["last_seq"] = self.stream.last_seq
            info["overlay_entries"] = len(self.stream.overlay)
            info["entries"] = len(self.stream.base)  # type: ignore[arg-type]
            info["dimension"] = self.stream.dimension
        elif self.index is not None:
            info["entries"] = len(self.index)
            info["dimension"] = self.index.dimension
        if self.error is not None:
            info["error"] = self.error
        if self.source is not None:
            info["source"] = self.source
        return info


class ServeApp:
    """Routing, admission, execution and response shaping for one server."""

    def __init__(
        self,
        *,
        policy: "TenantPolicy | None" = None,
        admission: "AdmissionController | None" = None,
        retry_policy: "RetryPolicy | None" = None,
        event_log: "obs_export.QueryEventLog | None" = None,
        breaker_failure_threshold: int = 5,
        breaker_recovery_s: float = 2.0,
        seed: int = 0,
    ) -> None:
        self.policy = policy if policy is not None else TenantPolicy()
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.event_log = event_log
        self._breaker_failure_threshold = breaker_failure_threshold
        self._breaker_recovery_s = breaker_recovery_s
        self._rng = random.Random(seed)
        self._indexes: "dict[str, IndexState]" = {}
        self._draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=self.admission.max_concurrency,
            thread_name_prefix="repro-serve",
        )

    # ------------------------------------------------------------------
    # Index registration and warm start
    # ------------------------------------------------------------------
    def _new_breaker(self, name: str) -> CircuitBreaker:
        return CircuitBreaker(
            name,
            failure_threshold=self._breaker_failure_threshold,
            recovery_s=self._breaker_recovery_s,
        )

    def register_index(
        self, name: str, index: Any, *, source: "str | None" = None
    ) -> IndexState:
        """Serve *index* (already built) under *name*."""
        if not name:
            raise ServeError("index name must be non-empty")
        flat = (
            index
            if isinstance(index, LinearIndex)
            else LinearIndex(list(index))
        )
        state = IndexState(
            name=name,
            index=index,
            flat=flat,
            breaker=self._new_breaker(name),
            source=source,
        )
        self._indexes[name] = state
        return state

    def load_snapshot(self, name: str, path: str) -> IndexState:
        """Warm-start *name* from *path*, quarantining corruption.

        A corrupt or unreadable snapshot registers the index as
        *quarantined*: the process stays up, ``/readyz`` reports the
        index unhealthy, and queries against it answer 503 — the
        runbook case, not a crash loop.
        """
        try:
            index = snapshot_io.load(path)
        except (SnapshotCorruptionError, SnapshotError, OSError) as error:
            if obs.ENABLED:
                obs.incr(names.SERVE_QUARANTINED_INDEXES)
            state = IndexState(
                name=name,
                index=None,
                flat=None,
                breaker=self._new_breaker(name),
                healthy=False,
                error=f"{type(error).__name__}: {error}",
                source=str(path),
            )
            self._indexes[name] = state
            return state
        return self.register_index(name, index, source=str(path))

    def load_stream(
        self, name: str, directory: str, *, exclusive: bool = False
    ) -> IndexState:
        """Warm-start a *mutable* index from a streaming directory.

        The snapshot passes the full integrity check, then the WAL is
        replayed over it (the recovery contract of
        :mod:`repro.stream.wal`).  Corruption quarantines the index
        exactly like :meth:`load_snapshot` — the process never crash
        loops on a bad disk.  ``exclusive=True`` takes the WAL owner
        lock (the supervised mutation worker's mode; see
        :mod:`repro.serve.worker`).
        """
        try:
            stream = StreamingIndex.open(directory, verify=True, exclusive=exclusive)
        except (
            StreamError,
            WalError,
            SnapshotCorruptionError,
            SnapshotError,
            OSError,
        ) as error:
            if obs.ENABLED:
                obs.incr(names.SERVE_QUARANTINED_INDEXES)
            state = IndexState(
                name=name,
                index=None,
                flat=None,
                breaker=self._new_breaker(name),
                healthy=False,
                error=f"{type(error).__name__}: {error}",
                source=str(directory),
            )
            self._indexes[name] = state
            return state
        return self.register_stream(name, stream, source=str(directory))

    def register_stream(
        self, name: str, stream: StreamingIndex, *, source: "str | None" = None
    ) -> IndexState:
        """Serve the (already opened) streaming index under *name*."""
        if not name:
            raise ServeError("index name must be non-empty")
        state = IndexState(
            name=name,
            index=stream.base,
            flat=None,
            breaker=self._new_breaker(name),
            source=source,
            stream=stream,
        )
        self._indexes[name] = state
        return state

    @classmethod
    def from_snapshots(
        cls, specs: "Mapping[str, str]", **kwargs: Any
    ) -> "ServeApp":
        """An app serving one index per ``{name: snapshot path}`` entry."""
        app = cls(**kwargs)
        for name, path in specs.items():
            app.load_snapshot(name, path)
        return app

    @property
    def indexes(self) -> "dict[str, IndexState]":
        return dict(self._indexes)

    @property
    def draining(self) -> bool:
        """Whether the app has stopped accepting work (see :meth:`close`)."""
        return self._draining

    #: How often :meth:`close` re-checks the in-flight count while
    #: draining; small enough that an idle shutdown is instant.
    _DRAIN_POLL_S = 0.005

    def close(self, drain_s: float = 2.0) -> None:
        """Graceful shutdown: stop accepting, drain, only then cancel.

        New ``/query`` and ``/mutate`` requests answer 503
        ``draining`` the moment this is called; requests already
        admitted get up to *drain_s* seconds of wall clock to finish on
        their executor threads before the pool is cancelled.  An idle
        server (the common case) observes no delay at all.  Called from
        synchronous shutdown code — the event loop is already stopping
        or stopped — so the polling sleep blocks nobody.
        """
        self._draining = True
        deadline = time.monotonic() + max(float(drain_s), 0.0)
        while self.admission.in_flight > 0 and time.monotonic() < deadline:
            time.sleep(self._DRAIN_POLL_S)
        if obs.ENABLED and self.admission.in_flight > 0:
            obs.incr(names.SERVE_WORKERS_DRAIN_TIMEOUTS)
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Route one parsed request to its handler."""
        if obs.ENABLED:
            obs.incr(names.SERVE_REQUESTS)
        if request.path == "/healthz":
            return json_response(200, {"status": "ok"})
        if request.path == "/readyz":
            return self._readyz()
        if request.path == "/metrics":
            return self._metrics()
        if request.path in ("/query", "/v1/query"):
            if request.method != "POST":
                return json_response(
                    405, {"error": "method_not_allowed", "allow": "POST"}
                )
            if self._draining:
                return self._unavailable_draining()
            return await self._handle_query(request)
        if request.path in ("/mutate", "/v1/mutate"):
            if request.method != "POST":
                return json_response(
                    405, {"error": "method_not_allowed", "allow": "POST"}
                )
            if self._draining:
                return self._unavailable_draining()
            return await self._handle_mutate(request)
        return json_response(404, {"error": "not_found", "path": request.path})

    def _readyz(self) -> HttpResponse:
        indexes = {
            name: state.snapshot() for name, state in self._indexes.items()
        }
        ready = (
            any(state.healthy for state in self._indexes.values())
            and not self._draining
        )
        return json_response(
            200 if ready else 503,
            {"ready": ready, "draining": self._draining, "indexes": indexes},
        )

    def _unavailable_draining(self) -> HttpResponse:
        """The 503 a draining server answers instead of taking work."""
        if obs.ENABLED:
            obs.incr(names.SERVE_RESPONSES_UNAVAILABLE)
        return json_response(
            503,
            {"error": "draining", "retry_after_s": 1.0},
            headers={"Retry-After": "1.000"},
        )

    def _metrics(self) -> HttpResponse:
        text = obs_export.to_prometheus(obs.collect())
        return HttpResponse(
            status=200,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4",
        )

    # ------------------------------------------------------------------
    # The query path
    # ------------------------------------------------------------------
    async def _handle_query(self, request: HttpRequest) -> HttpResponse:
        started = time.perf_counter()
        tenant = self.policy.resolve(request.header("x-tenant-class") or None)
        if obs.ENABLED:
            obs.incr(names.tenant_outcome(tenant.name, "requests"))
        try:
            params = _parse_query_payload(request.json())
        except (ProtocolError, ValidationError) as error:
            if obs.ENABLED:
                obs.incr(names.SERVE_RESPONSES_REJECTED)
            return json_response(
                400, {"error": "validation", "message": str(error)}
            )

        state = self._indexes.get(params["index"])
        if state is None:
            if obs.ENABLED:
                obs.incr(names.SERVE_RESPONSES_REJECTED)
            return json_response(
                404,
                {
                    "error": "unknown_index",
                    "index": params["index"],
                    "known": sorted(self._indexes),
                },
            )
        if state.quarantined:
            if obs.ENABLED:
                obs.incr(names.SERVE_RESPONSES_UNAVAILABLE)
            return json_response(
                503,
                {
                    "error": "index_quarantined",
                    "index": state.name,
                    "detail": state.error,
                },
            )
        if not state.breaker.allow():
            return self._shed(
                tenant, "breaker_open", state.breaker.retry_after_s()
            )

        decision = self.admission.try_admit(tenant)
        if not decision.admitted:
            # The breaker probe (if any) was never spent on the index;
            # settle it as a success so a shed cannot re-open a breaker.
            if state.breaker.state is not BreakerState.CLOSED:
                state.breaker.record_success()
            return self._shed(
                tenant, decision.reason or "queue_full", decision.retry_after_s
            )

        try:
            async with self.admission.slot():
                settled = await run_with_retry(
                    self._attempt_factory(state, tenant, params),
                    self.retry_policy,
                    self._rng,
                    allow_retry=tenant.retry,
                    hedge=tenant.hedge,
                )
        except ValidationError as error:
            # The query layer rejected the request (dimension mismatch,
            # bad criterion): the client's fault, not the index's.
            if state.breaker.state is not BreakerState.CLOSED:
                state.breaker.record_success()
            if obs.ENABLED:
                obs.incr(names.SERVE_RESPONSES_REJECTED)
            return json_response(
                400, {"error": "validation", "message": str(error)}
            )
        outcome = settled.outcome
        self._settle_breaker(state, outcome)
        duration_s = time.perf_counter() - started
        if obs.ENABLED:
            obs.observe(names.SERVE_LATENCY_S, duration_s)
        if self.event_log is not None:
            degraded = (
                isinstance(outcome, PartialResult) and outcome.report.degraded
            )
            self.event_log.emit_outcome(
                f"serve.{params['kind']}",
                outcome,
                duration_s,
                tenant=tenant.name,
                status=206 if degraded else 200,
            )
        return self._render_outcome(tenant, params, outcome, settled.attempts)

    # ------------------------------------------------------------------
    # The mutation path (streaming indexes only)
    # ------------------------------------------------------------------
    async def _handle_mutate(self, request: HttpRequest) -> HttpResponse:
        """One durable mutation: validate → admit → WAL append → ack.

        The 200 is sent only after the record is fsynced (the append
        returns post-sync); a failed append answers 503 with
        ``acked: false`` — the service never fabricates durability.
        Invalid payloads are 400 with a typed ``ValidationError`` body,
        and overload sheds with 429 exactly like the query path.
        """
        started = time.perf_counter()
        tenant = self.policy.resolve(request.header("x-tenant-class") or None)
        if obs.ENABLED:
            obs.incr(names.SERVE_MUTATIONS)
            obs.incr(names.tenant_outcome(tenant.name, "requests"))
        try:
            payload = request.json()
        except ProtocolError as error:
            return self._reject_mutation(tenant, str(error))
        index_name = payload.get("index", "default")
        if not isinstance(index_name, str) or not index_name:
            return self._reject_mutation(
                tenant, f"index must be a non-empty string, got {index_name!r}"
            )
        state = self._indexes.get(index_name)
        if state is None:
            if obs.ENABLED:
                obs.incr(names.SERVE_MUTATIONS_REJECTED)
            return json_response(
                404,
                {
                    "error": "unknown_index",
                    "index": index_name,
                    "known": sorted(self._indexes),
                },
            )
        if state.quarantined:
            if obs.ENABLED:
                obs.incr(names.SERVE_RESPONSES_UNAVAILABLE)
            return json_response(
                503,
                {
                    "error": "index_quarantined",
                    "index": state.name,
                    "detail": state.error,
                },
            )
        stream = state.stream
        if stream is None:
            if obs.ENABLED:
                obs.incr(names.SERVE_MUTATIONS_REJECTED)
            return json_response(
                409,
                {
                    "error": "immutable_index",
                    "index": state.name,
                    "message": "index was loaded from a frozen snapshot; "
                    "serve it with --stream to accept mutations",
                },
            )
        try:
            op, key, sphere = validate_mutation(
                {k: v for k, v in payload.items() if k != "index"},
                stream.dimension,
            )
        except ValidationError as error:
            return self._reject_mutation(tenant, str(error))

        decision = self.admission.try_admit(tenant)
        if not decision.admitted:
            return self._shed(
                tenant, decision.reason or "queue_full", decision.retry_after_s
            )

        def mutate_sync() -> int:
            if op == "insert":
                assert sphere is not None
                return stream.insert(key, sphere)
            return stream.delete(key)

        try:
            async with self.admission.slot():
                loop = asyncio.get_running_loop()
                # Fault scopes and deadline travel in contextvars; the
                # mutation must run under a copy or an injected WAL seam
                # active for this request would not fire in the worker.
                context = contextvars.copy_context()
                seq = await loop.run_in_executor(
                    self._executor, context.run, mutate_sync
                )
        except (StreamError, OSError, ArithmeticError) as error:
            # The append (or its fsync) failed — including an injected
            # WAL-seam explosion: nothing was acked, and saying so
            # honestly beats a fabricated 200.
            if obs.ENABLED:
                obs.incr(names.SERVE_MUTATIONS_REJECTED)
            return json_response(
                503,
                {
                    "error": "mutation_failed",
                    "acked": False,
                    "message": f"{type(error).__name__}: {error}",
                },
            )
        duration_s = time.perf_counter() - started
        if obs.ENABLED:
            obs.incr(names.SERVE_MUTATIONS_ACKED)
            obs.incr(names.tenant_outcome(tenant.name, "ok"))
        if self.event_log is not None:
            self.event_log.emit_outcome(
                "serve.mutate", [], duration_s, tenant=tenant.name, status=200
            )
        return json_response(
            200,
            {
                "acked": True,
                "seq": seq,
                "op": op,
                "key": key,
                "index": state.name,
                "tenant_class": tenant.name,
            },
        )

    def _reject_mutation(
        self, tenant: TenantClass, message: str
    ) -> HttpResponse:
        if obs.ENABLED:
            obs.incr(names.SERVE_MUTATIONS_REJECTED)
        if self.event_log is not None:
            self.event_log.emit_outcome(
                "serve.mutate", [], 0.0, tenant=tenant.name, status=400
            )
        return json_response(
            400,
            {
                "error": "validation",
                "type": "ValidationError",
                "message": message,
            },
        )

    def _attempt_factory(
        self,
        state: IndexState,
        tenant: TenantClass,
        params: "dict[str, Any]",
    ) -> "Callable[[], Awaitable[Any]]":
        """One factory per request; each call is one budgeted attempt."""

        def attempt_sync() -> Any:
            budget = tenant.mint_budget()
            with budget_scope(budget):
                try:
                    delay = float(_handler_hook())
                except ArithmeticError as error:
                    return _absorbed_handler_fault(error)
                if delay > 0.0:
                    time.sleep(min(delay, _MAX_HANDLER_DELAY_S))
                try:
                    return _execute_query(state, params)
                except ArithmeticError as error:
                    # An explosion that escaped the query layer's own
                    # absorption: still a conservative 206, never a 5xx.
                    return _absorbed_handler_fault(error)

        async def attempt() -> Any:
            loop = asyncio.get_running_loop()
            context = contextvars.copy_context()
            return await loop.run_in_executor(
                self._executor, context.run, attempt_sync
            )

        return attempt

    def _settle_breaker(self, state: IndexState, outcome: Any) -> None:
        """Feed the request's index-health signal to the breaker.

        Absorbed faults are the breaker's failure signal; deadline or
        quota exhaustion is load, not index damage, and counts as a
        success so overload alone can never open a breaker.
        """
        report = getattr(outcome, "report", None)
        if report is not None and report.absorbed_faults > 0:
            state.breaker.record_failure()
        else:
            state.breaker.record_success()

    def _shed(
        self, tenant: TenantClass, reason: str, retry_after_s: float
    ) -> HttpResponse:
        if obs.ENABLED:
            obs.incr(names.SERVE_RESPONSES_SHED)
            obs.incr(names.tenant_outcome(tenant.name, "shed"))
        if self.event_log is not None:
            self.event_log.emit_outcome(
                "serve.shed", [], 0.0, tenant=tenant.name, status=429
            )
        retry_after = max(retry_after_s, 0.05)
        return json_response(
            429,
            {
                "error": "shed",
                "reason": reason,
                "retry_after_s": retry_after,
                "tenant_class": tenant.name,
            },
            headers={"Retry-After": f"{retry_after:.3f}"},
        )

    def _render_outcome(
        self,
        tenant: TenantClass,
        params: "dict[str, Any]",
        outcome: Any,
        attempts: int,
    ) -> HttpResponse:
        degraded = isinstance(outcome, PartialResult) and outcome.report.degraded
        payload: "dict[str, Any]" = {
            "kind": params["kind"],
            "index": params["index"],
            "tenant_class": tenant.name,
            "attempts": attempts,
            "degraded": degraded,
        }
        if isinstance(outcome, PartialResult):
            serialised = outcome.to_dict()
            payload["result"] = serialised["value"]
            payload["report"] = serialised["report"]
        else:
            payload["result"] = to_jsonable(outcome)
            payload["report"] = None
        if degraded:
            if obs.ENABLED:
                obs.incr(names.SERVE_RESPONSES_DEGRADED)
                obs.incr(names.tenant_outcome(tenant.name, "degraded"))
            return json_response(206, payload)
        if obs.ENABLED:
            obs.incr(names.SERVE_RESPONSES_OK)
            obs.incr(names.tenant_outcome(tenant.name, "ok"))
        return json_response(200, payload)

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: one request, one response, close."""
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader), timeout=_READ_TIMEOUT_S
                )
            except asyncio.TimeoutError:
                if obs.ENABLED:
                    obs.incr(names.SERVE_PROTOCOL_ERRORS)
                await write_response(
                    writer, json_response(408, {"error": "request_timeout"})
                )
                return
            except ProtocolError as error:
                if obs.ENABLED:
                    obs.incr(names.SERVE_PROTOCOL_ERRORS)
                status = int(getattr(error, "status", 400))
                await write_response(
                    writer,
                    json_response(
                        status, {"error": "protocol", "message": str(error)}
                    ),
                )
                return
            try:
                response = await self.handle(request)
            except ReproError as error:
                # A typed library failure on a non-degraded path: the
                # honest admission that this one request failed.
                response = json_response(
                    500, {"error": type(error).__name__, "message": str(error)}
                )
            await write_response(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass  # the client hung up; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


def _absorbed_handler_fault(error: ArithmeticError) -> PartialResult:
    """A handler-level explosion, absorbed into an honest empty 206.

    The report carries ``exhausted="fault"`` (a *transient* reason, so
    the retry policy may spend a second attempt) and one absorbed
    fault; the empty answer plus ``complete=False`` is conservative —
    no certified verdict is fabricated.
    """
    if obs.ENABLED:
        obs.incr(names.SERVE_HANDLER_FAULTS)
    report = ResilienceReport()
    report.mark_incomplete("fault")
    report.absorbed_faults = 1
    report.mark_conservative(f"handler fault absorbed: {error}")
    return PartialResult([], report)


def _parse_query_payload(payload: "dict[str, Any]") -> "dict[str, Any]":
    """Validate one /query body into executable parameters (or 400)."""
    kind = payload.get("kind", "knn")
    if kind not in QUERY_KINDS:
        raise ValidationError(
            f"kind must be one of {', '.join(QUERY_KINDS)}; got {kind!r}"
        )
    index_name = payload.get("index", "default")
    if not isinstance(index_name, str) or not index_name:
        raise ValidationError(f"index must be a non-empty string, got {index_name!r}")
    center = payload.get("center")
    if not isinstance(center, list) or not center or not all(
        isinstance(c, (int, float)) and not isinstance(c, bool) for c in center
    ):
        raise ValidationError("center must be a non-empty list of numbers")
    radius = payload.get("radius", 0.0)
    if isinstance(radius, bool) or not isinstance(radius, (int, float)):
        raise ValidationError(f"radius must be a number, got {radius!r}")
    try:
        query = Hypersphere([float(c) for c in center], float(radius))
    except ReproError as error:
        raise ValidationError(f"invalid query sphere: {error}") from None
    k = payload.get("k", 1)
    if isinstance(k, bool) or not isinstance(k, int) or k < 1:
        raise ValidationError(f"k must be a positive integer, got {k!r}")
    criterion = payload.get("criterion", "hyperbola")
    if not isinstance(criterion, str):
        raise ValidationError(f"criterion must be a string, got {criterion!r}")
    strategy = payload.get("strategy", "hs")
    if strategy not in ("hs", "df"):
        raise ValidationError(f"strategy must be 'hs' or 'df', got {strategy!r}")
    algorithm = payload.get("algorithm", "incremental")
    if algorithm not in ("incremental", "two-phase"):
        raise ValidationError(
            f"algorithm must be 'incremental' or 'two-phase', got {algorithm!r}"
        )
    return {
        "kind": kind,
        "index": index_name,
        "query": query,
        "k": k,
        "criterion": criterion,
        "strategy": strategy,
        "algorithm": algorithm,
    }


def _execute_query(state: IndexState, params: "dict[str, Any]") -> Any:
    """Run the validated query against the (healthy) index state.

    Runs on an executor thread, inside the request's budget scope and
    copied context.  :class:`ValidationError` from the query layer
    (bad ``k``, dimension mismatch) propagates to the caller, which
    maps it onto a 400 — see :meth:`ServeApp._handle_query`.
    """
    kind = params["kind"]
    stream = state.stream
    if stream is not None:
        # Streaming index: the engine captures a consistent (base,
        # overlay) pair under its lock and merges at query time.
        if kind == "knn":
            return stream.query_knn(
                params["query"],
                params["k"],
                criterion=params["criterion"],
                strategy=params["strategy"],
                algorithm=params["algorithm"],
            )
        if kind == "rknn":
            return stream.query_rknn(
                params["query"], criterion=params["criterion"]
            )
        return stream.query_dominating(
            params["query"], params["k"], criterion=params["criterion"]
        )
    assert state.index is not None and state.flat is not None
    if kind == "knn":
        return knn_query(
            state.index,
            params["query"],
            params["k"],
            criterion=params["criterion"],
            strategy=params["strategy"],
            algorithm=params["algorithm"],
        )
    if kind == "rknn":
        return rnn_candidates(
            state.flat, params["query"], criterion=params["criterion"]
        )
    return top_k_dominating(
        state.flat, params["query"], params["k"], criterion=params["criterion"]
    )


async def start_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 0
) -> "asyncio.AbstractServer":
    """Bind the app; ``server.sockets[0].getsockname()`` has the port."""
    return await asyncio.start_server(app.handle_connection, host=host, port=port)
