"""Hand-rolled HTTP/1.1 over :mod:`asyncio` streams (no runtime deps).

The serving front end speaks just enough HTTP for an operations stack:
request-line + headers + optional ``Content-Length`` body in, status
line + headers + body out, one request per connection
(``Connection: close``).  No chunked encoding, no pipelining, no TLS —
those belong to the load balancer in front of this process.

Every parse failure or limit violation raises a typed
:class:`~repro.exceptions.ProtocolError` carrying the HTTP status the
handler should answer with; a garbage or hostile client therefore
costs one 4xx response, never a stack trace or a stuck worker.  The
limits are deliberately small for a JSON query API: 8 KiB request
line, 100 headers of 8 KiB each, 1 MiB body.

The module also carries the *worker pipe* framing used by the
multi-process supervisor (``repro.serve.supervisor`` on one end,
``repro.serve.worker`` on the other): length-prefixed JSON objects —
a big-endian ``u32`` byte count followed by a compact UTF-8 JSON
body.  The supervisor reads frames asynchronously off the worker's
stdout (:func:`read_frame_async`); the worker reads them with plain
blocking I/O off its stdin (:func:`read_frame`), which keeps the
child side a simple synchronous loop.  A short read at a frame
boundary is a clean EOF (``None``); a short read *inside* a frame or
an oversized/garbage frame raises :class:`ProtocolError` — a corrupt
pipe is a dead worker, never a misparsed request.
"""

from __future__ import annotations

import json
import struct
from asyncio import IncompleteReadError, StreamReader, StreamWriter
from dataclasses import dataclass, field
from typing import Any, BinaryIO, Mapping
from urllib.parse import parse_qsl, urlsplit

from repro.exceptions import ProtocolError

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "MAX_FRAME_BYTES",
    "STATUS_REASONS",
    "encode_frame",
    "json_response",
    "read_frame",
    "read_frame_async",
    "read_request",
    "write_response",
]

MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_COUNT = 100
MAX_HEADER_LINE = 8 * 1024
MAX_BODY_BYTES = 1024 * 1024

STATUS_REASONS: "dict[int, str]" = {
    200: "OK",
    206: "Partial Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_SUPPORTED_METHODS = ("GET", "POST", "HEAD")


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: "dict[str, str]"
    headers: "dict[str, str]"  # keys lower-cased
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def json(self) -> "dict[str, Any]":
        """The body decoded as a JSON object (400 on anything else)."""
        if not self.body:
            raise ProtocolError("empty body where a JSON object was expected")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ProtocolError(f"body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"body must be a JSON object, got {type(payload).__name__}"
            )
        return payload


@dataclass
class HttpResponse:
    """One response: status, extra headers, body bytes."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: "dict[str, str]" = field(default_factory=dict)

    @property
    def reason(self) -> str:
        return STATUS_REASONS.get(self.status, "Unknown")

    def encode(self) -> bytes:
        """The full wire form (status line, headers, body)."""
        lines = [
            f"HTTP/1.1 {self.status} {self.reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        lines.extend(f"{name}: {value}" for name, value in self.headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head + self.body


def json_response(
    status: int,
    payload: "Mapping[str, Any]",
    *,
    headers: "dict[str, str] | None" = None,
) -> HttpResponse:
    """An :class:`HttpResponse` with a JSON body."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return HttpResponse(status=status, body=body, headers=dict(headers or {}))


async def _read_line(reader: StreamReader, limit: int, what: str) -> bytes:
    """One CRLF-terminated line, bounded by *limit* bytes."""
    try:
        line = await reader.readuntil(b"\n")
    except Exception as error:  # IncompleteReadError, LimitOverrunError
        raise ProtocolError(f"connection ended mid-{what}: {error}") from None
    if len(line) > limit:
        raise ProtocolError(f"{what} exceeds {limit} bytes")
    return line.rstrip(b"\r\n")


async def read_request(reader: StreamReader) -> HttpRequest:
    """Parse one request off *reader*; raises :class:`ProtocolError`.

    The attached ``status`` attribute on the raised error names the
    4xx the handler should answer with (400 by default).
    """
    raw_line = await _read_line(reader, MAX_REQUEST_LINE, "request line")
    try:
        line = raw_line.decode("ascii")
    except UnicodeDecodeError:
        raise _protocol_error("request line is not ASCII", 400) from None
    parts = line.split(" ")
    if len(parts) != 3:
        raise _protocol_error(f"malformed request line {line!r}", 400)
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise _protocol_error(f"unsupported HTTP version {version!r}", 400)
    if method not in _SUPPORTED_METHODS:
        raise _protocol_error(f"unsupported method {method!r}", 405)

    headers: "dict[str, str]" = {}
    while True:
        raw_header = await _read_line(reader, MAX_HEADER_LINE, "header")
        if not raw_header:
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise _protocol_error("too many headers", 431)
        name, sep, value = raw_header.decode("latin-1").partition(":")
        if not sep or not name.strip():
            raise _protocol_error(f"malformed header {raw_header!r}", 400)
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise _protocol_error(
                f"malformed Content-Length {length_header!r}", 400
            ) from None
        if length < 0:
            raise _protocol_error("negative Content-Length", 400)
        if length > MAX_BODY_BYTES:
            raise _protocol_error(
                f"body of {length} bytes exceeds the {MAX_BODY_BYTES} limit", 413
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception as error:
                raise _protocol_error(
                    f"connection ended mid-body: {error}", 400
                ) from None

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return HttpRequest(
        method=method,
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def _protocol_error(message: str, status: int) -> ProtocolError:
    error = ProtocolError(message)
    error.status = status  # type: ignore[attr-defined]
    return error


async def write_response(writer: StreamWriter, response: HttpResponse) -> None:
    """Send *response* and drain; closing is the caller's business."""
    writer.write(response.encode())
    await writer.drain()


# --------------------------------------------------------------------------
# Worker pipe framing (supervisor <-> worker).

_FRAME_HEADER = struct.Struct(">I")

MAX_FRAME_BYTES = 8 * 1024 * 1024


def encode_frame(payload: "Mapping[str, Any]") -> bytes:
    """*payload* as one length-prefixed JSON frame (wire bytes)."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} limit"
        )
    return _FRAME_HEADER.pack(len(body)) + body


def _decode_frame_body(body: bytes) -> "dict[str, Any]":
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _frame_length(header: bytes) -> int:
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} limit"
        )
    return int(length)


def read_frame(stream: "BinaryIO") -> "dict[str, Any] | None":
    """One frame off a blocking byte *stream* (worker side).

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`ProtocolError` on a torn or oversized frame.
    """
    header = stream.read(_FRAME_HEADER.size)
    if not header:
        return None
    if len(header) < _FRAME_HEADER.size:
        raise ProtocolError("pipe ended mid-frame-header")
    length = _frame_length(header)
    body = stream.read(length)
    if body is None or len(body) < length:
        raise ProtocolError("pipe ended mid-frame")
    return _decode_frame_body(body)


async def read_frame_async(reader: StreamReader) -> "dict[str, Any] | None":
    """One frame off an asyncio *reader* (supervisor side).

    Same contract as :func:`read_frame`: ``None`` on clean EOF,
    :class:`ProtocolError` on a torn frame.
    """
    try:
        header = await reader.readexactly(_FRAME_HEADER.size)
    except IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("pipe ended mid-frame-header") from None
    length = _frame_length(header)
    try:
        body = await reader.readexactly(length)
    except IncompleteReadError:
        raise ProtocolError("pipe ended mid-frame") from None
    return _decode_frame_body(body)
