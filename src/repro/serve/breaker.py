"""A circuit breaker per index/snapshot seam.

A single corrupted snapshot page or a flaky kernel under one index must
not let every request into that index burn its full deadline before
degrading.  Each served index sits behind one :class:`CircuitBreaker`:

- **CLOSED** — requests flow; consecutive *absorbed-fault or
  corruption* failures are counted (a success resets the streak).
- **OPEN** — after ``failure_threshold`` consecutive failures the
  breaker opens for ``recovery_s`` seconds; requests short-circuit to
  a 429 shed (reason ``"breaker_open"``) without touching the index.
- **HALF_OPEN** — once the recovery window elapses, up to
  ``half_open_probes`` requests are let through as probes; one success
  closes the breaker, one failure re-opens it for another window.

What counts as a *failure* is the caller's decision
(:meth:`record_failure` vs :meth:`record_success`); the serving layer
feeds it requests whose results carried absorbed faults or whose index
raised — the same events the resilience layer tallies — so the breaker
trips on genuine index-health signals, not on load shedding or
deadline exhaustion (an overloaded index is not a broken one).

Clock reads go through the guarded resilience clock
(:func:`repro.serve.admission._read_clock`), so a skewed clock can
delay recovery but never flaps the breaker into admitting against a
failing index.  Transitions are counted per index and state on the
``serve.breaker.<index>.<state>`` obs family; the current state rides
on ``/readyz``.

State transitions are serialized on an internal lock: the serving
layer settles probes from executor threads (the mutation path) as well
as from the event loop, and the half-open probe quota in particular is
a read-check-increment sequence that would over-admit under a race —
``half_open_probes`` is a *hard* cap, proven by a threaded regression
test, not a hint.
"""

from __future__ import annotations

import enum
import threading

from repro import obs
from repro.exceptions import ServeError
from repro.obs import names
from repro.serve.admission import _read_clock

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """The classic three-state breaker vocabulary."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probes."""

    __slots__ = (
        "name",
        "failure_threshold",
        "recovery_s",
        "half_open_probes",
        "_state",
        "_streak",
        "_opened_at",
        "_probes_in_flight",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 5,
        recovery_s: float = 5.0,
        half_open_probes: int = 1,
    ) -> None:
        if failure_threshold < 1:
            raise ServeError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if recovery_s <= 0.0:
            raise ServeError(f"recovery_s must be positive, got {recovery_s!r}")
        if half_open_probes < 1:
            raise ServeError(
                f"half_open_probes must be >= 1, got {half_open_probes!r}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self.half_open_probes = half_open_probes
        self._state = BreakerState.CLOSED
        self._streak = 0
        self._opened_at: "float | None" = None
        self._probes_in_flight = 0
        self._lock = threading.Lock()

    @property
    def state(self) -> BreakerState:
        return self._state

    @property
    def failure_streak(self) -> int:
        """Consecutive failures since the last success (diagnostics)."""
        return self._streak

    def _transition(self, state: BreakerState) -> None:
        if state is self._state:
            return
        self._state = state
        if obs.ENABLED:
            obs.incr(names.breaker_transition(self.name, state.value))

    def allow(self) -> bool:
        """Whether one request may proceed against this index now.

        In OPEN state, a ``True`` return means the recovery window
        elapsed and this request was admitted as a half-open probe —
        the caller *must* follow up with :meth:`record_success` or
        :meth:`record_failure` to settle the probe.
        """
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                now = _read_clock()
                if now is not None and self._opened_at is None:
                    # The clock was broken when the breaker opened;
                    # anchor the recovery window at its first healthy
                    # reading.
                    self._opened_at = now
                if (
                    now is None
                    or self._opened_at is None
                    or now - self._opened_at < self.recovery_s
                ):
                    # Unreadable clock: stay open — never flap into
                    # admitting against a failing index on a broken
                    # clock.
                    if obs.ENABLED:
                        obs.incr(names.SERVE_BREAKER_SHORT_CIRCUITS)
                    return False
                self._transition(BreakerState.HALF_OPEN)
                self._probes_in_flight = 0
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            if obs.ENABLED:
                obs.incr(names.SERVE_BREAKER_SHORT_CIRCUITS)
            return False

    def record_success(self) -> None:
        """One healthy interaction: resets the streak, closes a probe."""
        with self._lock:
            self._streak = 0
            if self._state is not BreakerState.CLOSED:
                self._transition(BreakerState.CLOSED)
                self._opened_at = None
                self._probes_in_flight = 0

    def record_failure(self) -> None:
        """One absorbed-fault/corruption interaction against the index."""
        with self._lock:
            self._streak += 1
            if self._state is BreakerState.HALF_OPEN:
                self._open()
            elif (
                self._state is BreakerState.CLOSED
                and self._streak >= self.failure_threshold
            ):
                self._open()

    def _open(self) -> None:
        self._transition(BreakerState.OPEN)
        self._opened_at = _read_clock()
        self._probes_in_flight = 0

    def retry_after_s(self) -> float:
        """Suggested client back-off while the breaker is not closed."""
        if self._state is BreakerState.CLOSED:
            return 0.0
        now = _read_clock()
        if now is None or self._opened_at is None:
            return self.recovery_s
        return max(self.recovery_s - (now - self._opened_at), 0.05)

    def snapshot(self) -> "dict[str, object]":
        """The state block ``/readyz`` publishes for this index."""
        return {
            "state": self._state.value,
            "failure_streak": self._streak,
            "failure_threshold": self.failure_threshold,
            "recovery_s": self.recovery_s,
        }
