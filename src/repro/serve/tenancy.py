"""Tenant classes: per-class deadline policy, quotas and rate limits.

A multi-tenant deployment does not give every caller the same slice of
the machine.  A :class:`TenantClass` bundles what one class of tenants
is entitled to:

- a **deadline policy** — the wall-clock budget (and optional
  candidate/escalation quotas) minted into a fresh
  :class:`~repro.resilience.Budget` for every admitted request, so an
  interactive tenant degrades to a conservative partial answer in
  150 ms while a batch tenant is allowed to grind;
- a **token-bucket rate** (requests/second with a burst allowance)
  enforced by :mod:`repro.serve.admission`;
- a **retry entitlement** — whether the server spends extra work
  retrying (or hedging) a request that degraded on a transient
  absorbed fault (:mod:`repro.serve.retry`).

The :class:`TenantPolicy` maps the ``x-tenant-class`` request header
onto a class; unknown or absent values fall back to the default class
rather than erroring, because misconfigured clients should get *worse
service*, not *no service*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.exceptions import ServeError
from repro.queries.validation import validate_deadline_ms
from repro.resilience.budget import Budget

__all__ = ["TenantClass", "TenantPolicy", "default_classes"]


@dataclass(frozen=True)
class TenantClass:
    """What one class of tenants is entitled to per request."""

    name: str
    #: Wall-clock budget per request, in milliseconds.
    deadline_ms: float
    #: Candidate quota per request (``None`` — deadline-bounded only).
    max_candidates: "int | None" = None
    #: Precision-ladder escalation quota per request.
    max_escalations: "int | None" = None
    #: Sustained admission rate, requests per second.
    rate_per_s: float = 100.0
    #: Burst allowance on top of the sustained rate.
    burst: int = 50
    #: Whether a transiently degraded request may be retried server-side.
    retry: bool = True
    #: Whether the retry may run as a concurrent hedge instead of
    #: sequentially after a backoff.
    hedge: bool = False

    def __post_init__(self) -> None:
        validate_deadline_ms(self.deadline_ms)
        if not self.name:
            raise ServeError("tenant class name must be non-empty")
        if self.rate_per_s <= 0.0:
            raise ServeError(
                f"tenant class {self.name!r}: rate_per_s must be positive, "
                f"got {self.rate_per_s!r}"
            )
        if self.burst < 1:
            raise ServeError(
                f"tenant class {self.name!r}: burst must be >= 1, "
                f"got {self.burst!r}"
            )

    def mint_budget(self) -> Budget:
        """A fresh per-request :class:`Budget` (never shared)."""
        return Budget(
            deadline_s=self.deadline_ms / 1000.0,
            max_candidates=self.max_candidates,
            max_escalations=self.max_escalations,
        )


def default_classes(
    *, deadline_scale: float = 1.0
) -> "dict[str, TenantClass]":
    """The stock three-class policy (interactive / standard / batch).

    ``deadline_scale`` multiplies every deadline — the CLI's
    ``--deadline-ms`` override maps onto it so operators can tighten or
    relax the whole ladder with one flag.
    """
    if not deadline_scale > 0.0:
        raise ServeError(
            f"deadline_scale must be positive, got {deadline_scale!r}"
        )
    classes = (
        TenantClass(
            name="interactive",
            deadline_ms=150.0 * deadline_scale,
            max_escalations=64,
            rate_per_s=100.0,
            burst=50,
            retry=True,
            hedge=True,
        ),
        TenantClass(
            name="standard",
            deadline_ms=1000.0 * deadline_scale,
            rate_per_s=50.0,
            burst=25,
            retry=True,
        ),
        TenantClass(
            name="batch",
            deadline_ms=10_000.0 * deadline_scale,
            rate_per_s=5.0,
            burst=5,
            retry=False,
        ),
    )
    return {cls.name: cls for cls in classes}


class TenantPolicy:
    """The tenant-class registry one server instance enforces."""

    __slots__ = ("_classes", "_default")

    def __init__(
        self,
        classes: "Mapping[str, TenantClass] | Iterable[TenantClass] | None" = None,
        *,
        default: str = "standard",
    ) -> None:
        if classes is None:
            table = default_classes()
        elif isinstance(classes, Mapping):
            table = dict(classes)
        else:
            table = {cls.name: cls for cls in classes}
        if not table:
            raise ServeError("a TenantPolicy needs at least one tenant class")
        if default not in table:
            raise ServeError(
                f"default tenant class {default!r} is not registered "
                f"(have: {', '.join(sorted(table))})"
            )
        self._classes = table
        self._default = default

    @property
    def classes(self) -> "dict[str, TenantClass]":
        return dict(self._classes)

    @property
    def default_class(self) -> TenantClass:
        return self._classes[self._default]

    def resolve(self, name: "str | None") -> TenantClass:
        """The class for one request's tenant header (default on miss)."""
        if name is None:
            return self.default_class
        return self._classes.get(name.strip().lower(), self.default_class)
