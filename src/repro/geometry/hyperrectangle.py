"""The :class:`Hyperrectangle` value type and per-dimension distances.

Hyperrectangles appear in this reproduction because the paper adapts the
MBR decision criterion of Emrich et al. (SIGMOD 2010) to hyperspheres:
each hypersphere is replaced by its minimum bounding hyperrectangle and
the (optimal-for-rectangles) dominance decision is evaluated on those
boxes.

The crucial property the MBR criterion exploits is that both the maximum
and minimum *squared* distance between a point ``q`` and a box ``R``
decompose over dimensions::

    MaxDist(R, q)^2 = sum_i maxdist_i(R, q[i])^2
    MinDist(R, q)^2 = sum_i mindist_i(R, q[i])^2

where ``maxdist_i`` / ``mindist_i`` are one-dimensional interval
distances.  Those one-dimensional pieces are exposed here so the decision
criterion in :mod:`repro.core.mbr` stays close to the maths.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DimensionalityMismatchError, GeometryError
from repro.geometry.hypersphere import Hypersphere

__all__ = ["Hyperrectangle"]


class Hyperrectangle:
    """An axis-aligned box ``{x : lo[i] <= x[i] <= hi[i]}`` in R^d."""

    __slots__ = ("_lo", "_hi")

    def __init__(
        self,
        lo: Sequence[float] | np.ndarray,
        hi: Sequence[float] | np.ndarray,
    ) -> None:
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        if lo.ndim != 1 or hi.ndim != 1:
            raise GeometryError("lo and hi must be 1-D arrays")
        if lo.shape != hi.shape:
            raise DimensionalityMismatchError(lo.shape[0], hi.shape[0])
        if lo.size == 0:
            raise GeometryError("a hyperrectangle needs at least one dimension")
        if not (np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))):
            raise GeometryError("bounds must be finite")
        if np.any(lo > hi):
            raise GeometryError("every lo[i] must be <= hi[i]")
        self._lo = lo.copy()
        self._hi = hi.copy()
        self._lo.flags.writeable = False
        self._hi.flags.writeable = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def bounding(cls, sphere: Hypersphere) -> "Hyperrectangle":
        """The minimum bounding rectangle of a hypersphere."""
        c, r = sphere.center, sphere.radius
        return cls(c - r, c + r)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "Hyperrectangle":
        """The minimum bounding rectangle of a ``(n, d)`` point array."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise GeometryError("points must be a non-empty (n, d) array")
        return cls(points.min(axis=0), points.max(axis=0))

    # ------------------------------------------------------------------
    # Basic attributes
    # ------------------------------------------------------------------
    @property
    def lo(self) -> np.ndarray:
        """Per-dimension lower bounds (read-only)."""
        return self._lo

    @property
    def hi(self) -> np.ndarray:
        """Per-dimension upper bounds (read-only)."""
        return self._hi

    @property
    def dimension(self) -> int:
        """The dimensionality d of the ambient space."""
        return self._lo.shape[0]

    @property
    def center(self) -> np.ndarray:
        """The box midpoint."""
        return (self._lo + self._hi) / 2.0

    @property
    def extents(self) -> np.ndarray:
        """Per-dimension side lengths."""
        return self._hi - self._lo

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, point: Sequence[float] | np.ndarray) -> bool:
        """Whether *point* lies inside the closed box."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != self._lo.shape:
            raise DimensionalityMismatchError(self.dimension, point.shape[-1])
        return bool(np.all(point >= self._lo) and np.all(point <= self._hi))

    def intersects(self, other: "Hyperrectangle") -> bool:
        """Whether the two closed boxes share at least one point."""
        if other.dimension != self.dimension:
            raise DimensionalityMismatchError(self.dimension, other.dimension)
        return bool(
            np.all(self._lo <= other._hi) and np.all(other._lo <= self._hi)
        )

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def min_dist_point(self, q: Sequence[float] | np.ndarray) -> float:
        """Minimum Euclidean distance from point *q* to the box."""
        q = np.asarray(q, dtype=np.float64)
        gaps = np.maximum(np.maximum(self._lo - q, q - self._hi), 0.0)
        return float(np.linalg.norm(gaps))

    def max_dist_point(self, q: Sequence[float] | np.ndarray) -> float:
        """Maximum Euclidean distance from point *q* to the box."""
        q = np.asarray(q, dtype=np.float64)
        gaps = np.maximum(np.abs(q - self._lo), np.abs(self._hi - q))
        return float(np.linalg.norm(gaps))

    def min_sq_dist_1d(self, i: int, coordinate: float) -> float:
        """Squared 1-D distance from *coordinate* to interval i.

        Zero when the coordinate falls inside ``[lo[i], hi[i]]``.
        """
        gap = max(self._lo[i] - coordinate, coordinate - self._hi[i], 0.0)
        return gap * gap

    def max_sq_dist_1d(self, i: int, coordinate: float) -> float:
        """Squared 1-D distance from *coordinate* to the far interval end."""
        gap = max(abs(coordinate - self._lo[i]), abs(self._hi[i] - coordinate))
        return gap * gap

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hyperrectangle):
            return NotImplemented
        return (
            self._lo.shape == other._lo.shape
            and bool(np.all(self._lo == other._lo))
            and bool(np.all(self._hi == other._hi))
        )

    def __hash__(self) -> int:
        return hash((self._lo.tobytes(), self._hi.tobytes()))

    def __repr__(self) -> str:
        lo = np.array2string(self._lo, precision=4, separator=", ")
        hi = np.array2string(self._hi, precision=4, separator=", ")
        return f"Hyperrectangle(lo={lo}, hi={hi})"
