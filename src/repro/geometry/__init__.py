"""Geometric substrate: hyperspheres, hyperrectangles, distances.

This subpackage contains the building blocks every other layer of the
library is written against:

- :class:`~repro.geometry.hypersphere.Hypersphere` — the primary object
  representation used throughout the paper.
- :class:`~repro.geometry.hyperrectangle.Hyperrectangle` — minimum
  bounding rectangles, needed by the adapted MBR decision criterion.
- :mod:`~repro.geometry.distance` — Euclidean point/sphere distance
  helpers (Equations 1, 3 and 4 of the paper).
- :mod:`~repro.geometry.transform` — the O(d) isometric change of frame
  used by the Hyperbola algorithm (Section 4.3.1).
- :mod:`~repro.geometry.quartic` — real-root quartic solvers used to
  solve the Lagrange system (Equation 14).
"""

from repro.geometry.distance import (
    dist,
    max_dist,
    max_dist_point,
    min_dist,
    min_dist_point,
)
from repro.geometry.hyperrectangle import Hyperrectangle
from repro.geometry.hypersphere import Hypersphere
from repro.geometry.transform import FocalFrame
from repro.geometry.quartic import solve_quartic_real, solve_quartic_real_batch

__all__ = [
    "Hypersphere",
    "Hyperrectangle",
    "FocalFrame",
    "dist",
    "min_dist",
    "max_dist",
    "min_dist_point",
    "max_dist_point",
    "solve_quartic_real",
    "solve_quartic_real_batch",
]
