"""The :class:`Hypersphere` value type.

A *hypersphere* (the paper's Section 2.1) is a closed Euclidean ball in
d-dimensional space: a center point ``c`` and a non-negative radius
``r``.  A point is the degenerate hypersphere with ``r == 0``.

Instances are immutable: the center array is copied on construction and
marked read-only, so a hypersphere can safely be shared between index
nodes, query results and experiment workloads.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DimensionalityMismatchError, GeometryError

__all__ = ["Hypersphere"]


def _as_center(center: Sequence[float] | np.ndarray) -> np.ndarray:
    """Validate and normalise a center to a read-only 1-D float64 array."""
    array = np.asarray(center, dtype=np.float64)
    if array.ndim != 1:
        raise GeometryError(
            f"center must be a 1-D point, got array of shape {array.shape}"
        )
    if array.size == 0:
        raise GeometryError("center must have at least one coordinate")
    if not np.all(np.isfinite(array)):
        raise GeometryError("center coordinates must be finite")
    array = array.copy()
    array.flags.writeable = False
    return array


class Hypersphere:
    """A closed ball ``{x : ||x - center|| <= radius}`` in R^d.

    Parameters
    ----------
    center:
        The d-dimensional center point.
    radius:
        Non-negative radius.  ``radius == 0`` represents an exact point,
        which the paper treats as a degenerate hypersphere.

    Examples
    --------
    >>> s = Hypersphere([0.0, 0.0], 1.0)
    >>> s.dimension
    2
    >>> s.contains([0.5, 0.5])
    True
    """

    __slots__ = ("_center", "_radius")

    def __init__(self, center: Sequence[float] | np.ndarray, radius: float) -> None:
        self._center = _as_center(center)
        radius = float(radius)
        if not np.isfinite(radius):
            raise GeometryError("radius must be finite")
        if radius < 0.0:
            raise GeometryError(f"radius must be non-negative, got {radius}")
        self._radius = radius

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, point: Sequence[float] | np.ndarray) -> "Hypersphere":
        """Build the degenerate (radius zero) hypersphere around *point*."""
        return cls(point, 0.0)

    # ------------------------------------------------------------------
    # Basic attributes
    # ------------------------------------------------------------------
    @property
    def center(self) -> np.ndarray:
        """The (read-only) center point."""
        return self._center

    @property
    def radius(self) -> float:
        """The non-negative radius."""
        return self._radius

    @property
    def dimension(self) -> int:
        """The dimensionality d of the ambient space."""
        return self._center.shape[0]

    @property
    def is_point(self) -> bool:
        """True when the hypersphere degenerates to a single point."""
        return self._radius == 0.0

    # ------------------------------------------------------------------
    # Geometric predicates
    # ------------------------------------------------------------------
    def require_same_dimension(self, other: "Hypersphere") -> None:
        """Raise :class:`DimensionalityMismatchError` on a d mismatch."""
        if other.dimension != self.dimension:
            raise DimensionalityMismatchError(self.dimension, other.dimension)

    def contains(
        self, point: Sequence[float] | np.ndarray, *, strict: bool = False
    ) -> bool:
        """Whether *point* lies in the (closed, or open if *strict*) ball."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != self._center.shape:
            raise DimensionalityMismatchError(self.dimension, point.shape[-1])
        gap = float(np.linalg.norm(point - self._center))
        if strict:
            return gap < self._radius
        return gap <= self._radius

    def contains_sphere(self, other: "Hypersphere") -> bool:
        """Whether *other* is entirely inside this closed ball."""
        self.require_same_dimension(other)
        gap = float(np.linalg.norm(other.center - self._center))
        return gap + other.radius <= self._radius

    def overlaps(self, other: "Hypersphere") -> bool:
        """The paper's overlap test: ``Dist(ca, cb) <= ra + rb``.

        Overlapping spheres can never dominate each other (Lemma 1).
        Touching spheres (equality) count as overlapping because the
        dominance definition uses a strict inequality.
        """
        self.require_same_dimension(other)
        gap = float(np.linalg.norm(other.center - self._center))
        return gap <= self._radius + other.radius

    # ------------------------------------------------------------------
    # Sampling (used by tests and the numerical oracle)
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw *size* points uniformly from the closed ball.

        Uses the standard Gaussian-direction / radius^(1/d) construction,
        which is exact for any dimension.
        """
        if size < 0:
            raise GeometryError(f"sample size must be non-negative, got {size}")
        d = self.dimension
        directions = rng.standard_normal((size, d))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        radii = self._radius * rng.random((size, 1)) ** (1.0 / d)
        return self._center + directions / norms * radii

    def sample_surface(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw *size* points uniformly from the bounding sphere surface."""
        if size < 0:
            raise GeometryError(f"sample size must be non-negative, got {size}")
        d = self.dimension
        directions = rng.standard_normal((size, d))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return self._center + directions / norms * self._radius

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def translated(self, offset: Sequence[float] | np.ndarray) -> "Hypersphere":
        """A copy of this hypersphere moved by *offset*."""
        offset = np.asarray(offset, dtype=np.float64)
        if offset.shape != self._center.shape:
            raise DimensionalityMismatchError(self.dimension, offset.shape[-1])
        return Hypersphere(self._center + offset, self._radius)

    def scaled(self, factor: float) -> "Hypersphere":
        """A copy with both center and radius scaled about the origin."""
        factor = float(factor)
        if factor < 0.0:
            raise GeometryError("scale factor must be non-negative")
        return Hypersphere(self._center * factor, self._radius * factor)

    def with_radius(self, radius: float) -> "Hypersphere":
        """A copy sharing the center but with a different radius."""
        return Hypersphere(self._center, radius)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterable[float]:
        yield from self._center
        yield self._radius

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypersphere):
            return NotImplemented
        return (
            self._radius == other._radius
            and self._center.shape == other._center.shape
            and bool(np.all(self._center == other._center))
        )

    def __hash__(self) -> int:
        return hash((self._center.tobytes(), self._radius))

    def __repr__(self) -> str:
        center = np.array2string(self._center, precision=4, separator=", ")
        return f"Hypersphere(center={center}, radius={self._radius:g})"
