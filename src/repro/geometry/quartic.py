"""Real-root solvers for polynomials up to degree four.

The Hyperbola algorithm reduces the constrained minimisation of
``Dist(cq, x)`` over the hyperbola to the quartic Equation (14) of the
paper.  A quartic has a closed-form solution (Ferrari, 1540), which is
what makes the whole decision O(d): the dimension only enters through a
handful of inner products, never through an iterative solve.

Two interchangeable solvers are provided:

- :func:`solve_quartic_real` — the default; normalises the
  coefficients, strips (near-)zero leading terms, and extracts the real
  roots of the companion matrix.  This is the most robust option for the
  wide dynamic range of coefficients the dominance kernel produces.
- :func:`solve_quartic_real_closed` — the classical Ferrari resolvent
  cascade.  Kept as a faithful rendering of the paper's "solutions for a
  quartic equation can be found in O(1) time" claim and exercised by the
  quartic ablation benchmark.

plus :func:`solve_quartic_real_batch` for vectorised workloads.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.obs import names

__all__ = [
    "solve_quartic_real",
    "solve_quartic_real_closed",
    "solve_quartic_real_batch",
]

# Relative threshold below which a leading coefficient is treated as zero.
_LEADING_EPS = 1e-13
# Tolerance for accepting a companion-matrix eigenvalue as real.  A double
# real root perturbs into a conjugate pair with imaginary parts around
# sqrt(machine epsilon), so the filter must sit well above that; the
# dominance kernel prefers a spurious near-real candidate (harmless: every
# candidate is re-projected onto the quadric) over a missed tangency root.
_IMAG_EPS = 1e-5


def _normalised(coefficients: np.ndarray) -> np.ndarray:
    """Scale coefficients so the largest magnitude is 1 (no-op on zeros)."""
    scale = float(np.max(np.abs(coefficients)))
    if scale == 0.0:
        return coefficients
    return coefficients / scale


def _trim_leading(coefficients: np.ndarray) -> np.ndarray:
    """Drop leading coefficients that are negligible after normalisation."""
    trimmed = coefficients
    while trimmed.size > 1 and abs(trimmed[0]) <= _LEADING_EPS:
        trimmed = trimmed[1:]
    return trimmed


def solve_quartic_real(
    coefficients: "np.ndarray | list[float] | tuple[float, ...]",
) -> np.ndarray:
    """Real roots of ``A x^4 + B x^3 + C x^2 + D x + E = 0``.

    Parameters
    ----------
    coefficients:
        The five coefficients ``(A, B, C, D, E)`` from highest to lowest
        degree.  Degenerate (lower-degree) inputs are handled by trimming
        near-zero leading coefficients, so cubics, quadratics and linear
        equations fall out naturally.

    Returns
    -------
    numpy.ndarray
        The real roots in ascending order (possibly empty).  An
        identically-zero polynomial yields an empty array: the caller
        (the dominance kernel) always supplements the root candidates
        with closed-form special-case candidates, so "everything is a
        root" degeneracies never need enumerating.
    """
    coeffs = np.asarray(coefficients, dtype=np.float64)
    if coeffs.shape != (5,):
        raise ValueError(f"expected 5 coefficients, got shape {coeffs.shape}")
    if not np.all(np.isfinite(coeffs)):
        raise ValueError("coefficients must be finite")
    if obs.ENABLED:
        obs.incr(names.QUARTIC_COMPANION_SOLVES)
    coeffs = _trim_leading(_normalised(coeffs))
    if coeffs.size == 1:  # constant polynomial: no roots to report
        return np.empty(0)
    roots = np.roots(coeffs)
    real_mask = np.abs(roots.imag) <= _IMAG_EPS * (1.0 + np.abs(roots.real))
    return np.sort(roots[real_mask].real)


def _real_cubic_root(b: float, c: float, d: float) -> float:
    """One real root of the depressed-able cubic ``y^3 + b y^2 + c y + d``.

    Every cubic with real coefficients has at least one real root; the
    Ferrari cascade only needs one of them (any resolvent root works).
    Uses the trigonometric/Cardano branches for numerical stability.
    """
    # Depress: y = z - b/3  ->  z^3 + p z + q = 0
    p = c - b * b / 3.0
    q = 2.0 * b**3 / 27.0 - b * c / 3.0 + d
    shift = -b / 3.0
    if p == 0.0 and q == 0.0:
        return shift
    discriminant = (q / 2.0) ** 2 + (p / 3.0) ** 3
    if discriminant > 0.0:
        sqrt_disc = math.sqrt(discriminant)
        u = math.copysign(abs(-q / 2.0 + sqrt_disc) ** (1.0 / 3.0), -q / 2.0 + sqrt_disc)
        v = math.copysign(abs(-q / 2.0 - sqrt_disc) ** (1.0 / 3.0), -q / 2.0 - sqrt_disc)
        return u + v + shift
    if p >= 0.0:  # pragma: no cover - implies discriminant > 0 unless q == p == 0
        return shift
    # Three real roots: trigonometric form.
    magnitude = 2.0 * math.sqrt(-p / 3.0)
    ratio = 3.0 * q / (p * magnitude)
    ratio = min(1.0, max(-1.0, ratio))
    angle = math.acos(ratio) / 3.0
    return magnitude * math.cos(angle) + shift


def solve_quartic_real_closed(
    coefficients: "np.ndarray | list[float] | tuple[float, ...]",
) -> np.ndarray:
    """Closed-form (Ferrari) real roots of a quartic.

    Functionally equivalent to :func:`solve_quartic_real`; used by the
    quartic ablation benchmark and cross-checked against the companion
    solver in the test suite.
    """
    coeffs = np.asarray(coefficients, dtype=np.float64)
    if coeffs.shape != (5,):
        raise ValueError(f"expected 5 coefficients, got shape {coeffs.shape}")
    if not np.all(np.isfinite(coeffs)):
        raise ValueError("coefficients must be finite")
    if obs.ENABLED:
        obs.incr(names.QUARTIC_CLOSED_FORM_SOLVES)
    coeffs = _trim_leading(_normalised(coeffs))
    degree = coeffs.size - 1
    if degree <= 0:
        return np.empty(0)
    if degree == 1:
        return np.array([-coeffs[1] / coeffs[0]])
    if degree == 2:
        a, b, c = coeffs
        disc = b * b - 4.0 * a * c
        if disc < 0.0:
            return np.empty(0)
        sqrt_disc = math.sqrt(disc)
        return np.sort(np.array([(-b - sqrt_disc) / (2 * a), (-b + sqrt_disc) / (2 * a)]))
    if degree == 3:
        a, b, c, d = coeffs
        root = _real_cubic_root(b / a, c / a, d / a)
        # Deflate and solve the remaining quadratic.
        quad_b = b / a + root
        quad_c = c / a + root * quad_b
        disc = quad_b * quad_b - 4.0 * quad_c
        roots = [root]
        if disc >= 0.0:
            sqrt_disc = math.sqrt(disc)
            roots.append((-quad_b - sqrt_disc) / 2.0)
            roots.append((-quad_b + sqrt_disc) / 2.0)
        return np.sort(np.array(roots))

    a, b, c, d, e = coeffs
    # Normalise to monic and depress: x = y - b/(4a).
    p = c / a - 3.0 * (b / a) ** 2 / 8.0
    q = (b / a) ** 3 / 8.0 - (b / a) * (c / a) / 2.0 + d / a
    r = (
        -3.0 * (b / a) ** 4 / 256.0
        + (b / a) ** 2 * (c / a) / 16.0
        - (b / a) * (d / a) / 4.0
        + e / a
    )
    shift = -b / (4.0 * a)
    roots: list[float] = []

    def clamped_sqrt(disc: float, scale: float) -> float | None:
        """sqrt of a discriminant, forgiving tiny negative round-off.

        A double root makes the discriminant exactly zero in exact
        arithmetic; in floats it can land at -1e-16 and silently drop
        both roots, so near-zero negatives are clamped.
        """
        tolerance = 1e-9 * (1.0 + scale)
        if disc < -tolerance:
            return None
        return math.sqrt(disc) if disc > 0.0 else 0.0

    if abs(q) <= 1e-14 * (1.0 + abs(p) + abs(r)):
        # Biquadratic: y^4 + p y^2 + r = 0.
        sqrt_disc = clamped_sqrt(p * p - 4.0 * r, p * p + abs(r))
        if sqrt_disc is not None:
            for z in ((-p - sqrt_disc) / 2.0, (-p + sqrt_disc) / 2.0):
                if z >= -1e-12 * (1.0 + abs(p)):
                    sz = math.sqrt(max(z, 0.0))
                    roots.extend((-sz + shift, sz + shift))
    else:
        # Ferrari: complete (y^2 + p/2 + m)^2 = 2m (y - q/(4m))^2, where m
        # solves the resolvent cubic m^3 + p m^2 + (p^2/4 - r) m - q^2/8 = 0.
        # Since q != 0 the resolvent is negative at m = 0 and has a positive
        # real root; _real_cubic_root returns the largest real root.
        m = _real_cubic_root(p, p * p / 4.0 - r, -q * q / 8.0)
        if m <= 0.0:
            # Numerical edge: fall back to the robust solver.
            if obs.ENABLED:
                obs.incr(names.QUARTIC_CLOSED_FORM_FALLBACKS)
            return solve_quartic_real(coefficients)
        s = math.sqrt(2.0 * m)
        for sign in (-1.0, 1.0):
            # y^2 - sign*s*y + (p/2 + m + sign*q/(2s)) = 0
            const = p / 2.0 + m + sign * q / (2.0 * s)
            sqrt_disc = clamped_sqrt(s * s - 4.0 * const, s * s + abs(const))
            if sqrt_disc is not None:
                roots.append((sign * s - sqrt_disc) / 2.0 + shift)
                roots.append((sign * s + sqrt_disc) / 2.0 + shift)
    return np.sort(np.asarray(roots, dtype=np.float64))


def solve_quartic_real_batch(coefficients: np.ndarray) -> np.ndarray:
    """Real roots for a batch of quartics.

    Parameters
    ----------
    coefficients:
        Array of shape ``(n, 5)``; row ``i`` holds ``(A, B, C, D, E)``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n, 4)`` whose rows hold the real roots of each
        quartic, padded with ``nan`` where fewer than four real roots
        exist.  Rows whose quartic degenerates to a lower degree are
        solved individually.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    if coefficients.ndim != 2 or coefficients.shape[1] != 5:
        raise ValueError("expected an (n, 5) coefficient array")
    n = coefficients.shape[0]
    out = np.full((n, 4), np.nan)
    if obs.ENABLED:
        obs.incr(names.QUARTIC_BATCH_SOLVES)
        obs.observe(names.QUARTIC_BATCH_ROWS, n)
    if n == 0:
        return out

    scale = np.max(np.abs(coefficients), axis=1, keepdims=True)
    safe_scale = np.where(scale == 0.0, 1.0, scale)
    normalised = coefficients / safe_scale
    genuine = np.abs(normalised[:, 0]) > _LEADING_EPS

    if np.any(genuine):
        monic = normalised[genuine] / normalised[genuine, :1]
        companions = np.zeros((monic.shape[0], 4, 4))
        companions[:, 1, 0] = 1.0
        companions[:, 2, 1] = 1.0
        companions[:, 3, 2] = 1.0
        companions[:, 0, :] = -monic[:, 1:]
        eigenvalues = np.linalg.eigvals(companions)
        real_mask = np.abs(eigenvalues.imag) <= _IMAG_EPS * (
            1.0 + np.abs(eigenvalues.real)
        )
        block = np.where(real_mask, eigenvalues.real, np.nan)
        # Sort real roots first (nan sorts last), matching the scalar API.
        out[genuine] = np.sort(block, axis=1)

    for i in np.flatnonzero(~genuine):
        roots = solve_quartic_real(coefficients[i])
        out[i, : min(4, roots.size)] = roots[:4]
    return out
