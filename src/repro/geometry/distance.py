"""Euclidean distance helpers (Equations 1, 3 and 4 of the paper).

The paper manipulates three flavours of distance:

- ``Dist(p, p')`` — plain Euclidean distance between points (Eq. 1);
- ``MaxDist(Sa, Sb) = Dist(ca, cb) + ra + rb`` (Eq. 3);
- ``MinDist(Sa, Sb) = max(Dist(ca, cb) - ra - rb, 0)`` (Eq. 4).

Every function accepts either :class:`~repro.geometry.hypersphere.Hypersphere`
objects or raw point arrays where noted, and runs in O(d).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DimensionalityMismatchError
from repro.geometry.hypersphere import Hypersphere

__all__ = [
    "dist",
    "min_dist",
    "max_dist",
    "min_dist_point",
    "max_dist_point",
]


def dist(p: Sequence[float] | np.ndarray, q: Sequence[float] | np.ndarray) -> float:
    """Euclidean distance between two points (Equation 1)."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise DimensionalityMismatchError(p.shape[-1], q.shape[-1])
    return float(np.linalg.norm(p - q))


def max_dist(a: Hypersphere, b: Hypersphere) -> float:
    """Maximum distance between a point of *a* and a point of *b* (Eq. 3)."""
    a.require_same_dimension(b)
    return dist(a.center, b.center) + a.radius + b.radius


def min_dist(a: Hypersphere, b: Hypersphere) -> float:
    """Minimum distance between a point of *a* and a point of *b* (Eq. 4).

    Zero when the spheres overlap or touch.
    """
    a.require_same_dimension(b)
    gap = dist(a.center, b.center) - a.radius - b.radius
    return gap if gap > 0.0 else 0.0


def max_dist_point(a: Hypersphere, q: Sequence[float] | np.ndarray) -> float:
    """Maximum distance between a point of *a* and the point *q*."""
    return dist(a.center, q) + a.radius


def min_dist_point(a: Hypersphere, q: Sequence[float] | np.ndarray) -> float:
    """Minimum distance between a point of *a* and the point *q*.

    Zero when *q* lies inside the closed ball.
    """
    gap = dist(a.center, q) - a.radius
    return gap if gap > 0.0 else 0.0
