"""The O(d) focal frame change used by the Hyperbola algorithm.

Section 4.3.1 of the paper rewrites the hyperbola
``Dist(cb, x) - Dist(ca, x) = ra + rb`` in a coordinate system where the
two foci sit at ``(-alpha, 0, ..., 0)`` and ``(+alpha, 0, ..., 0)`` with
``alpha = Dist(ca, cb) / 2``.

Two observations keep this O(d):

1. The frame change is an isometry (translation to the focal midpoint
   followed by a Householder reflection mapping the focal axis onto the
   first coordinate axis), so it preserves every distance the algorithm
   cares about.
2. The algorithm never needs the individual transformed coordinates
   ``x[2..d]`` — only their squared sum.  :meth:`FocalFrame.reduce`
   therefore maps a d-dimensional point to the pair ``(t, rho)`` where
   ``t`` is the signed coordinate along the focal axis and ``rho >= 0``
   is the distance to that axis.  The whole minimisation then happens in
   this 2-D half-plane.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DimensionalityMismatchError, GeometryError

__all__ = ["FocalFrame"]


class FocalFrame:
    """An isometric frame with foci ``ca -> (-alpha, 0...)``, ``cb -> (+alpha, 0...)``.

    Parameters
    ----------
    ca, cb:
        The two (distinct) focal points as d-dimensional arrays.
    """

    __slots__ = ("_midpoint", "_axis", "_alpha", "_dimension")

    def __init__(
        self,
        ca: Sequence[float] | np.ndarray,
        cb: Sequence[float] | np.ndarray,
    ) -> None:
        ca = np.asarray(ca, dtype=np.float64)
        cb = np.asarray(cb, dtype=np.float64)
        if ca.shape != cb.shape:
            raise DimensionalityMismatchError(ca.shape[-1], cb.shape[-1])
        if ca.ndim != 1:
            raise GeometryError("focal points must be 1-D arrays")
        separation = float(np.linalg.norm(cb - ca))
        if separation == 0.0:
            raise GeometryError("focal points must be distinct")
        self._midpoint = (ca + cb) / 2.0
        self._axis = (cb - ca) / separation
        self._alpha = separation / 2.0
        self._dimension = ca.shape[0]

    @property
    def alpha(self) -> float:
        """Half the focal separation (the paper's alpha)."""
        return self._alpha

    @property
    def dimension(self) -> int:
        """The dimensionality d of the ambient space."""
        return self._dimension

    @property
    def midpoint(self) -> np.ndarray:
        """The focal midpoint (origin of the new frame)."""
        return self._midpoint

    @property
    def axis(self) -> np.ndarray:
        """The unit vector from ``ca`` to ``cb`` (the new first axis)."""
        return self._axis

    # ------------------------------------------------------------------
    # Reduction to the 2-D half-plane
    # ------------------------------------------------------------------
    def reduce(self, point: Sequence[float] | np.ndarray) -> tuple[float, float]:
        """Map *point* to its ``(t, rho)`` coordinates.

        ``t`` is the signed component along the focal axis (so ``ca``
        reduces to ``(-alpha, 0)`` and ``cb`` to ``(+alpha, 0)``);
        ``rho`` is the non-negative distance to the focal axis.
        """
        point = np.asarray(point, dtype=np.float64)
        if point.shape != self._midpoint.shape:
            raise DimensionalityMismatchError(self._dimension, point.shape[-1])
        offset = point - self._midpoint
        t = float(offset @ self._axis)
        # Guard the subtraction against tiny negative round-off.
        rho_sq = float(offset @ offset) - t * t
        rho = float(np.sqrt(rho_sq)) if rho_sq > 0.0 else 0.0
        return t, rho

    def reduce_many(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`reduce` for a ``(n, d)`` array of points."""
        points = np.asarray(points, dtype=np.float64)
        offsets = points - self._midpoint
        t = offsets @ self._axis
        rho_sq = np.einsum("ij,ij->i", offsets, offsets) - t * t
        rho = np.sqrt(np.maximum(rho_sq, 0.0))
        return t, rho

    # ------------------------------------------------------------------
    # Lifting back to the ambient space (diagnostics / tests only)
    # ------------------------------------------------------------------
    def lift(
        self,
        t: float,
        rho: float,
        toward: Sequence[float] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Reconstruct a d-dimensional point from ``(t, rho)`` coordinates.

        ``rho`` fixes the distance from the focal axis but not the
        direction; *toward* (a d-dimensional point) selects the
        half-plane containing that point.  When *toward* is omitted or
        lies on the axis, an arbitrary perpendicular direction is used.
        """
        if rho < 0.0:
            raise GeometryError("rho must be non-negative")
        base = self._midpoint + t * self._axis
        if rho == 0.0:
            return base
        direction = self._perpendicular_direction(toward)
        return base + rho * direction

    def _perpendicular_direction(
        self, toward: Sequence[float] | np.ndarray | None
    ) -> np.ndarray:
        """A unit vector orthogonal to the focal axis, toward *toward*."""
        if toward is not None:
            toward = np.asarray(toward, dtype=np.float64)
            offset = toward - self._midpoint
            perpendicular = offset - (offset @ self._axis) * self._axis
            norm = float(np.linalg.norm(perpendicular))
            if norm > 0.0:
                return perpendicular / norm
        # Fall back to reflecting a canonical basis vector off the axis.
        for i in range(self._dimension):
            candidate = np.zeros(self._dimension)
            candidate[i] = 1.0
            perpendicular = candidate - (candidate @ self._axis) * self._axis
            norm = float(np.linalg.norm(perpendicular))
            if norm > 1e-12:
                return perpendicular / norm
        raise GeometryError("cannot build a perpendicular direction in 1-D")

    # ------------------------------------------------------------------
    # Full orthonormal transform (used by tests to validate the reduction)
    # ------------------------------------------------------------------
    def to_frame(self, points: np.ndarray) -> np.ndarray:
        """Apply the full isometry to a point or ``(n, d)`` array.

        Implemented with a Householder reflection so it stays O(d) per
        point.  The first output coordinate matches :meth:`reduce`'s
        ``t`` and the norm of the remaining coordinates matches ``rho``.
        """
        points = np.asarray(points, dtype=np.float64)
        single = points.ndim == 1
        offsets = np.atleast_2d(points) - self._midpoint
        axis = self._axis
        e1 = np.zeros(self._dimension)
        e1[0] = 1.0
        # Choose the numerically stable reflector and record whether it
        # sends the axis to +e1 or -e1.
        if axis[0] >= 0.0:
            v = axis + e1
            sign = -1.0
        else:
            v = axis - e1
            sign = 1.0
        vv = float(v @ v)
        if vv < 1e-300:  # pragma: no cover - axis exactly +/- e1 handled above
            reflected = offsets.copy()
        else:
            reflected = offsets - np.outer((offsets @ v) * (2.0 / vv), v)
        # ``reflected`` maps axis -> sign * e1; normalise so axis -> +e1.
        if sign < 0.0:
            reflected[:, 0] = -reflected[:, 0]
        else:
            reflected = reflected.copy()
        return reflected[0] if single else reflected
