"""Diff two benchmark trajectories; the CI regression gate.

Points are matched by their *parameter dict* (the sweep definitions in
:mod:`repro.bench.topics` keep those stable across commits), and a
point regresses when its latency metric grew by more than the
threshold::

    current > baseline * (1 + threshold)

The default metric is ``p50`` — tail percentiles (p95/p99) from small
sample counts are too noisy to gate on, but they ride along in the
report for eyeballing.  Points present on only one side are reported,
never silently dropped: a vanished point usually means the sweep
definition changed and the baseline needs regenerating.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from repro.bench.runner import BenchDocument, document_path, read_document
from repro.bench.topics import TOPICS

__all__ = ["Regression", "TopicComparison", "compare_documents", "compare_runs"]


def _point_key(params: "dict[str, Any]") -> "tuple[tuple[str, Any], ...]":
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class Regression:
    """One point whose latency grew past the threshold."""

    topic: str
    params: "dict[str, Any]"
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        """current / baseline (``inf`` against a zero baseline)."""
        if self.baseline <= 0.0:
            return float("inf") if self.current > 0.0 else 1.0
        return self.current / self.baseline

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return (
            f"{self.topic}[{params}]: {self.metric} "
            f"{self.baseline:.6g}s -> {self.current:.6g}s "
            f"({100.0 * (self.ratio - 1.0):+.1f}%)"
        )


@dataclass
class TopicComparison:
    """The outcome of diffing one topic's documents."""

    topic: str
    matched: int = 0
    regressions: "list[Regression]" = field(default_factory=list)
    #: Points in the baseline with no current counterpart, and vice versa.
    missing_current: "list[dict[str, Any]]" = field(default_factory=list)
    missing_baseline: "list[dict[str, Any]]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_documents(
    baseline: BenchDocument,
    current: BenchDocument,
    *,
    threshold: float = 0.25,
    metric: str = "p50",
) -> TopicComparison:
    """Diff two documents of the same topic point-by-point."""
    comparison = TopicComparison(topic=current.topic)
    baseline_points = {
        _point_key(point["params"]): point for point in baseline.points
    }
    current_keys = set()
    for point in current.points:
        key = _point_key(point["params"])
        current_keys.add(key)
        base = baseline_points.get(key)
        if base is None:
            comparison.missing_baseline.append(dict(point["params"]))
            continue
        comparison.matched += 1
        base_value = float(base["latency_s"][metric])
        current_value = float(point["latency_s"][metric])
        if current_value > base_value * (1.0 + threshold):
            comparison.regressions.append(
                Regression(
                    topic=current.topic,
                    params=dict(point["params"]),
                    metric=metric,
                    baseline=base_value,
                    current=current_value,
                )
            )
    for key, point in baseline_points.items():
        if key not in current_keys:
            comparison.missing_current.append(dict(point["params"]))
    return comparison


def compare_runs(
    baseline_dir: str,
    current_dir: str,
    *,
    topics: "tuple[str, ...] | list[str] | None" = None,
    threshold: float = 0.25,
    metric: str = "p50",
) -> "list[TopicComparison]":
    """Diff every topic's ``BENCH_<topic>.json`` between two directories.

    A topic whose document is missing on either side is skipped with an
    empty comparison carrying the whole other side as missing — the CLI
    surfaces that; it is not a regression by itself.
    """
    selected = tuple(topics) if topics else TOPICS
    comparisons: "list[TopicComparison]" = []
    for topic in selected:
        baseline_path = document_path(baseline_dir, topic)
        current_path = document_path(current_dir, topic)
        has_baseline = os.path.exists(baseline_path)
        has_current = os.path.exists(current_path)
        if not has_baseline or not has_current:
            comparison = TopicComparison(topic=topic)
            if has_baseline:
                baseline = read_document(baseline_path)
                comparison.missing_current = [
                    dict(point["params"]) for point in baseline.points
                ]
            if has_current:
                current = read_document(current_path)
                comparison.missing_baseline = [
                    dict(point["params"]) for point in current.points
                ]
            comparisons.append(comparison)
            continue
        comparisons.append(
            compare_documents(
                read_document(baseline_path),
                read_document(current_path),
                threshold=threshold,
                metric=metric,
            )
        )
    return comparisons
