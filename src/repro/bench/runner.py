"""Execute one benchmark topic into a ``BENCH_<topic>.json`` document.

Every run produces the same shape so documents from different commits
diff cleanly (:mod:`repro.bench.compare`):

- run provenance: git SHA, UTC timestamp, environment fingerprint
  (Python, platform, NumPy, CPU count) and the sweep mode;
- one record per parameter point with the raw sample count, exact
  latency percentiles (p50/p95/p99 computed from the collected samples,
  not streamed), throughput, and the obs counter delta of one
  instrumented pass (so a perf change can be attributed: did node
  accesses go up, or did the same work get slower?).

Timing passes run with instrumentation *disabled* — the trajectory
tracks the production configuration — and one extra pass per point runs
under a private enabled scope to capture the counters.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable

import numpy as np

from repro import obs
from repro.data.synthetic import synthetic_dataset
from repro.data.workload import knn_queries
from repro.index.linear import LinearIndex
from repro.index.sstree import SSTree
from repro.obs import names
from repro.queries.dominating import top_k_dominating
from repro.queries.knn import knn_query
from repro.queries.rknn import rnn_candidates

__all__ = [
    "BenchDocument",
    "document_path",
    "read_document",
    "run_topic",
    "write_document",
]

#: Bumped when the document shape changes incompatibly.
SCHEMA_VERSION = 1


@dataclass
class BenchDocument:
    """One topic's trajectory entry: provenance plus per-point records."""

    topic: str
    git_sha: str
    timestamp: str
    quick: bool
    repeats: int
    seed: int
    env: "dict[str, Any]"
    points: "list[dict[str, Any]]" = field(default_factory=list)
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> "dict[str, Any]":
        return {
            "schema": self.schema,
            "topic": self.topic,
            "git_sha": self.git_sha,
            "timestamp": self.timestamp,
            "quick": self.quick,
            "repeats": self.repeats,
            "seed": self.seed,
            "env": dict(self.env),
            "points": [dict(point) for point in self.points],
        }

    @classmethod
    def from_dict(cls, payload: "dict[str, Any]") -> "BenchDocument":
        return cls(
            topic=str(payload["topic"]),
            git_sha=str(payload.get("git_sha", "unknown")),
            timestamp=str(payload.get("timestamp", "")),
            quick=bool(payload.get("quick", False)),
            repeats=int(payload.get("repeats", 1)),
            seed=int(payload.get("seed", 0)),
            env=dict(payload.get("env", {})),
            points=[dict(point) for point in payload.get("points", [])],
            schema=int(payload.get("schema", SCHEMA_VERSION)),
        )


def git_sha() -> str:
    """The current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def env_fingerprint() -> "dict[str, Any]":
    """The measurement environment, enough to flag incomparable runs."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "cpus": os.cpu_count() or 1,
    }


def _percentile(samples: "list[float]", q: float) -> float:
    """Exact linear-interpolation percentile of the collected samples."""
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def _latency_summary(samples: "list[float]") -> "dict[str, float]":
    return {
        "median": _percentile(samples, 50.0),
        "p50": _percentile(samples, 50.0),
        "p95": _percentile(samples, 95.0),
        "p99": _percentile(samples, 99.0),
        "mean": float(np.mean(samples)),
        "min": float(min(samples)),
        "max": float(max(samples)),
    }


def _point_dataset(params: "dict[str, Any]", seed: int) -> Any:
    return synthetic_dataset(
        int(params["n"]),
        int(params["d"]),
        radius_distribution=str(params.get("radius", "gaussian")),
        seed=seed,
    )


def _measure_build(
    params: "dict[str, Any]", seed: int, repeats: int
) -> "tuple[list[float], int, Callable[[], None]]":
    dataset = _point_dataset(params, seed)
    items = list(dataset.items())
    samples: "list[float]" = []
    for _ in range(repeats):
        started = time.perf_counter()
        SSTree.bulk_load(items)
        samples.append(time.perf_counter() - started)

    def instrumented() -> None:
        SSTree.bulk_load(items)

    return samples, repeats, instrumented


def _measure_knn(
    params: "dict[str, Any]", seed: int, repeats: int
) -> "tuple[list[float], int, Callable[[], None]]":
    dataset = _point_dataset(params, seed)
    tree = SSTree.bulk_load(dataset.items())
    queries = knn_queries(dataset, count=int(params["queries"]), seed=seed)
    k = int(params["k"])
    strategy = str(params["strategy"])
    criterion = str(params["criterion"])
    samples: "list[float]" = []
    for _ in range(repeats):
        for query in queries:
            started = time.perf_counter()
            knn_query(tree, query, k, criterion=criterion, strategy=strategy)
            samples.append(time.perf_counter() - started)

    def instrumented() -> None:
        for query in queries:
            knn_query(tree, query, k, criterion=criterion, strategy=strategy)

    return samples, repeats * len(queries), instrumented


def _measure_rknn(
    params: "dict[str, Any]", seed: int, repeats: int
) -> "tuple[list[float], int, Callable[[], None]]":
    dataset = _point_dataset(params, seed)
    index = LinearIndex(dataset.items())
    queries = knn_queries(dataset, count=int(params["queries"]), seed=seed)
    criterion = str(params["criterion"])
    samples: "list[float]" = []
    for _ in range(repeats):
        for query in queries:
            started = time.perf_counter()
            rnn_candidates(index, query, criterion=criterion)
            samples.append(time.perf_counter() - started)

    def instrumented() -> None:
        for query in queries:
            rnn_candidates(index, query, criterion=criterion)

    return samples, repeats * len(queries), instrumented


def _measure_dominating(
    params: "dict[str, Any]", seed: int, repeats: int
) -> "tuple[list[float], int, Callable[[], None]]":
    dataset = _point_dataset(params, seed)
    index = LinearIndex(dataset.items())
    queries = knn_queries(dataset, count=int(params["queries"]), seed=seed)
    k = int(params["k"])
    criterion = str(params["criterion"])
    samples: "list[float]" = []
    for _ in range(repeats):
        for query in queries:
            started = time.perf_counter()
            top_k_dominating(index, query, k, criterion=criterion)
            samples.append(time.perf_counter() - started)

    def instrumented() -> None:
        for query in queries:
            top_k_dominating(index, query, k, criterion=criterion)

    return samples, repeats * len(queries), instrumented


def _stream_workload(
    params: "dict[str, Any]", seed: int
) -> "tuple[list[tuple[Any, Any]], list[tuple[str, Any, Any]]]":
    """Base entries plus a deterministic insert/delete mutation mix.

    Every fourth mutation tombstones a base key (round-robin) so the
    measured path exercises both the memtable and the tombstone set;
    the rest insert fresh spheres keyed past the base range.
    """
    dataset = _point_dataset(params, seed)
    entries = list(dataset.items())
    count = int(params["mutations"])
    fresh = _point_dataset({**params, "n": count}, seed + 101)
    mutations: "list[tuple[str, Any, Any]]" = []
    base_keys = [key for key, _ in entries]
    for index, (_, sphere) in enumerate(fresh.items()):
        if index % 4 == 3 and base_keys:
            mutations.append(
                ("delete", base_keys[(index // 4) % len(base_keys)], None)
            )
        else:
            mutations.append(("insert", len(entries) + index, sphere))
    return entries, mutations


def _measure_stream(
    params: "dict[str, Any]", seed: int, repeats: int
) -> "tuple[list[float], int, Callable[[], None]]":
    import shutil
    import tempfile

    from repro.stream.engine import StreamingIndex

    entries, mutations = _stream_workload(params, seed)
    phase = str(params.get("phase", "mutate"))
    samples: "list[float]" = []

    def apply_all(stream: "StreamingIndex", timed: bool) -> None:
        for op, key, sphere in mutations:
            started = time.perf_counter()
            if op == "insert":
                stream.insert(key, sphere)
            else:
                stream.delete(key)
            if timed:
                samples.append(time.perf_counter() - started)

    if phase == "recover":
        # One directory, `mutations` WAL records; each sample is a full
        # warm restart (snapshot load + WAL replay) over that log.  The
        # directory outlives this call (the instrumented pass reopens
        # it), so cleanup rides process exit.
        import atexit

        directory = tempfile.mkdtemp(prefix="repro-bench-stream-")
        atexit.register(shutil.rmtree, directory, ignore_errors=True)
        with StreamingIndex.create(directory, entries) as stream:
            apply_all(stream, timed=False)
        for _ in range(repeats):
            started = time.perf_counter()
            StreamingIndex.open(directory).close()
            samples.append(time.perf_counter() - started)

        def instrumented() -> None:
            StreamingIndex.open(directory).close()

        return samples, repeats, instrumented
    # "mutate": each repeat streams the full mix into a fresh directory;
    # one sample per acked (fsynced) mutation.
    for _ in range(repeats):
        directory = tempfile.mkdtemp(prefix="repro-bench-stream-")
        try:
            with StreamingIndex.create(directory, entries) as stream:
                apply_all(stream, timed=True)
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    def instrumented() -> None:
        directory = tempfile.mkdtemp(prefix="repro-bench-stream-")
        try:
            with StreamingIndex.create(directory, entries) as stream:
                apply_all(stream, timed=False)
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    return samples, repeats * len(mutations), instrumented


def _measure_serve(
    params: "dict[str, Any]", seed: int, repeats: int
) -> "tuple[list[float], int, Callable[[], None]]":
    """End-to-end HTTP query latency over real TCP.

    ``phase="single"`` boots one in-process :class:`ServeApp`;
    ``phase="workers"`` boots a supervised pool of ``workers``
    processes and — when ``kill`` > 0 — SIGKILLs one query worker
    right before that request index of the first burst, so the
    committed trajectory prices failover, not just the happy path.
    One sample per request; statuses are asserted into the
    degradation contract ({200, 206, 429} single, + 503 supervised).
    """
    import asyncio
    import atexit
    import shutil
    import signal as _signal
    import tempfile

    from repro.index import snapshot as snapshot_io
    from repro.serve.smoke import request as http_request

    dataset = _point_dataset(params, seed)
    tree = SSTree.bulk_load(dataset.items())
    requests = int(params.get("requests", 20))
    bodies = [
        {
            "kind": "knn",
            "index": "default",
            "center": [float(c) for c in sphere.center],
            "radius": float(sphere.radius),
            "k": int(params.get("k", 5)),
        }
        for sphere in knn_queries(dataset, count=requests, seed=seed)
    ]
    phase = str(params.get("phase", "single"))
    workers = int(params.get("workers", 0))
    kill_at = int(params.get("kill", 0))
    allowed = {200, 206, 429, 503} if phase == "workers" else {200, 206, 429}

    directory = tempfile.mkdtemp(prefix="repro-bench-serve-")
    atexit.register(shutil.rmtree, directory, ignore_errors=True)
    path = os.path.join(directory, "bench.snap")
    snapshot_io.save(tree, path)

    async def burst(
        host: str,
        port: int,
        samples: "list[float] | None",
        kill_pid: "int | None" = None,
    ) -> None:
        for i, body in enumerate(bodies):
            if kill_pid is not None and i == kill_at:
                os.kill(kill_pid, _signal.SIGKILL)
            started = time.perf_counter()
            status, _, _ = await http_request(
                host, port, "POST", "/query", body=body
            )
            elapsed = time.perf_counter() - started
            if status not in allowed:
                raise RuntimeError(f"serve bench got status {status}")
            if samples is not None:
                samples.append(elapsed)

    def run_single(samples: "list[float] | None", rounds: int) -> None:
        from repro.serve.app import ServeApp, start_server

        app = ServeApp.from_snapshots({"default": path}, seed=seed)

        async def go() -> None:
            server = await start_server(app)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                for _ in range(rounds):
                    await burst(host, port, samples)
            finally:
                server.close()
                await server.wait_closed()

        try:
            asyncio.run(go())
        finally:
            app.close(drain_s=0.0)

    def run_workers(samples: "list[float] | None", rounds: int) -> None:
        from repro.serve.supervisor import Supervisor, SupervisorConfig

        supervisor = Supervisor(
            SupervisorConfig(
                query_workers=workers,
                snapshots={"default": path},
                backoff_base_s=0.05,
                backoff_cap_s=0.5,
                seed=seed,
            )
        )

        async def go() -> None:
            host, port = await supervisor.start()
            try:
                for round_no in range(rounds):
                    kill_pid = None
                    if kill_at > 0 and round_no == 0:
                        pids = supervisor.worker_pids("query")
                        kill_pid = pids[0] if pids else None
                    await burst(host, port, samples, kill_pid)
            finally:
                await supervisor.drain_and_stop()

        asyncio.run(go())

    runner = run_workers if phase == "workers" else run_single
    samples: "list[float]" = []
    runner(samples, repeats)

    def instrumented() -> None:
        runner(None, 1)

    return samples, repeats * len(bodies), instrumented


_MEASURERS: "dict[str, Callable[[dict[str, Any], int, int], tuple[list[float], int, Callable[[], None]]]]" = {
    "build": _measure_build,
    "knn": _measure_knn,
    "rknn": _measure_rknn,
    "dominating": _measure_dominating,
    "stream": _measure_stream,
    "serve": _measure_serve,
}


def _counter_delta(instrumented: "Callable[[], None]") -> "dict[str, int]":
    """One instrumented pass under a private scope; its counter delta."""
    registry = obs.MetricsRegistry()
    with obs.enabled_scope(True), obs.scope(registry):
        instrumented()
    snapshot = registry.collect()
    return {
        key: int(value)
        for key, value in sorted(snapshot.get("counters", {}).items())
    }


def run_topic(
    topic: str,
    points: "list[dict[str, Any]]",
    *,
    quick: bool,
    repeats: int = 3,
    seed: int = 0,
) -> BenchDocument:
    """Measure every *point* of *topic* and assemble the document.

    Points run in order; each contributes its raw sample count, exact
    latency percentiles, derived throughput, and one instrumented
    pass's obs counter delta.
    """
    measure = _MEASURERS[topic]
    document = BenchDocument(
        topic=topic,
        git_sha=git_sha(),
        timestamp=datetime.now(timezone.utc).isoformat(),
        quick=quick,
        repeats=repeats,
        seed=seed,
        env=env_fingerprint(),
    )
    if obs.ENABLED:
        obs.incr(names.BENCH_TOPICS)
    with obs.trace(names.bench_span(topic)):
        for point_index, params in enumerate(points):
            point_seed = seed + point_index
            samples, operations, instrumented = measure(
                params, point_seed, repeats
            )
            total = float(sum(samples))
            document.points.append(
                {
                    "params": dict(params),
                    "seed": point_seed,
                    "samples": len(samples),
                    "latency_s": _latency_summary(samples),
                    "throughput_ops": (
                        operations / total if total > 0.0 else 0.0
                    ),
                    "counters": _counter_delta(instrumented),
                }
            )
            if obs.ENABLED:
                obs.incr(names.BENCH_POINTS)
    return document


def document_path(out_dir: str, topic: str) -> str:
    """The canonical artifact path: ``<out_dir>/BENCH_<topic>.json``."""
    return os.path.join(out_dir, f"BENCH_{topic}.json")


def write_document(document: BenchDocument, out_dir: str) -> str:
    """Serialise *document* to its canonical path; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = document_path(out_dir, document.topic)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_document(path: str) -> BenchDocument:
    """Parse a ``BENCH_<topic>.json`` document back."""
    with open(path, "r", encoding="utf-8") as handle:
        return BenchDocument.from_dict(json.load(handle))
