"""The ``repro bench`` front end.

Two modes::

    repro bench [--quick] [--topics knn,build] [--out-dir .] \
                [--repeats 3] [--seed 0]
    repro bench compare --baseline DIR --current DIR \
                [--threshold 0.25] [--metric p50] [--topics ...]

The first sweeps the pinned parameter points of every selected topic
(:mod:`repro.bench.topics`) and writes one ``BENCH_<topic>.json`` per
topic; the second diffs two such directories and exits non-zero when
any point regressed past the threshold — the CI gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench.compare import compare_runs
from repro.bench.runner import run_topic, write_document
from repro.bench.topics import TOPICS, topic_points

__all__ = ["main"]


def _parse_topics(raw: "str | None") -> "tuple[str, ...]":
    if not raw:
        return TOPICS
    topics = tuple(part.strip() for part in raw.split(",") if part.strip())
    unknown = [topic for topic in topics if topic not in TOPICS]
    if unknown:
        raise SystemExit(
            f"unknown topic(s): {', '.join(unknown)}; "
            f"choose from {', '.join(TOPICS)}"
        )
    return topics


def _run_main(argv: "Sequence[str]") -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Sweep the pinned benchmark topics and write one "
            "BENCH_<topic>.json trajectory document per topic."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="the small CI-smoke sweep instead of the full one",
    )
    parser.add_argument(
        "--topics",
        default=None,
        metavar="T1,T2",
        help=f"comma-separated topic subset (default: all of {', '.join(TOPICS)})",
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        metavar="DIR",
        help="directory for the BENCH_<topic>.json files (default: .)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions per parameter point (default 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base dataset seed (default 0)"
    )
    args = parser.parse_args(list(argv))
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    for topic in _parse_topics(args.topics):
        points = topic_points(topic, quick=args.quick)
        document = run_topic(
            topic,
            points,
            quick=args.quick,
            repeats=args.repeats,
            seed=args.seed,
        )
        path = write_document(document, args.out_dir)
        medians = [point["latency_s"]["p50"] for point in document.points]
        print(
            f"bench {topic}: {len(document.points)} point(s), "
            f"p50 {min(medians):.6g}s..{max(medians):.6g}s -> {path}"
        )
    return 0


def _compare_main(argv: "Sequence[str]") -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench compare",
        description=(
            "Diff two benchmark trajectories; exits 1 when any matched "
            "point regressed past the threshold."
        ),
    )
    parser.add_argument(
        "--baseline",
        default=".",
        metavar="DIR",
        help="directory holding the baseline BENCH_<topic>.json files",
    )
    parser.add_argument(
        "--current",
        default=".",
        metavar="DIR",
        help="directory holding the freshly measured documents",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional latency growth (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--metric",
        default="p50",
        choices=("p50", "median", "p95", "p99", "mean"),
        help="latency summary statistic to gate on (default p50)",
    )
    parser.add_argument(
        "--topics",
        default=None,
        metavar="T1,T2",
        help="comma-separated topic subset (default: all)",
    )
    args = parser.parse_args(list(argv))
    if args.threshold < 0.0:
        parser.error("--threshold must be >= 0")

    comparisons = compare_runs(
        args.baseline,
        args.current,
        topics=_parse_topics(args.topics),
        threshold=args.threshold,
        metric=args.metric,
    )
    failed = False
    for comparison in comparisons:
        status = "OK" if comparison.ok else "REGRESSED"
        print(
            f"bench compare {comparison.topic}: {comparison.matched} "
            f"matched point(s), {len(comparison.regressions)} "
            f"regression(s) [{status}]"
        )
        for regression in comparison.regressions:
            failed = True
            print(f"  ! {regression.describe()}")
        for params in comparison.missing_current:
            print(f"  ? baseline-only point (no current measurement): {params}")
        for params in comparison.missing_baseline:
            print(f"  ? current-only point (no baseline): {params}")
    if failed:
        print(
            f"bench compare: FAILED (threshold +{100.0 * args.threshold:.0f}% "
            f"on {args.metric})",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: "Sequence[str]") -> int:
    """Entry point for ``repro bench ...`` (see module docstring)."""
    arguments = list(argv)
    if arguments and arguments[0] == "compare":
        return _compare_main(arguments[1:])
    return _run_main(arguments)
