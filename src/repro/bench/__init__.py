"""The standing benchmark observatory (``repro bench``).

A perf trajectory is only useful when every run measures the same
thing: :mod:`repro.bench.topics` pins the parameter sweeps (paper-range
dimensionality, cardinality and radius distributions, Section 7.1),
:mod:`repro.bench.runner` executes them into machine-readable
``BENCH_<topic>.json`` documents (git SHA, environment fingerprint,
per-point latency percentiles and obs counter deltas), and
:mod:`repro.bench.compare` diffs two trajectories with a configurable
regression threshold — the non-zero exit code is the CI gate.

The CLI front end lives in :mod:`repro.bench.cli` and is routed from
``repro bench`` / ``repro bench compare``.
"""

from __future__ import annotations

from repro.bench.compare import Regression, compare_documents, compare_runs
from repro.bench.runner import BenchDocument, run_topic, write_document
from repro.bench.topics import TOPICS, topic_points

__all__ = [
    "BenchDocument",
    "Regression",
    "TOPICS",
    "compare_documents",
    "compare_runs",
    "run_topic",
    "topic_points",
    "write_document",
]
