"""The pinned parameter sweeps behind every ``repro bench`` run.

Each topic is a named list of *points*; a point is a plain dict of the
parameters one measurement varies (cardinality ``n``, dimensionality
``d``, radius distribution, query count, ...), mirroring the ranges the
paper sweeps in its evaluation (Section 7.1: synthetic datasets across
dimensionalities and cardinalities, Gaussian and uniform radius
distributions).  Two trajectories are comparable exactly because the
points are pinned here rather than improvised per run: the compare step
matches points by their parameter dict.

``quick`` points are small enough for a CI smoke lane (the whole sweep
in well under two minutes); ``full`` extends the same axes towards the
paper's scales.
"""

from __future__ import annotations

__all__ = ["TOPICS", "topic_points"]


def _point(**params: object) -> "dict[str, object]":
    return dict(params)


#: topic -> mode -> points.  Every quick point is also a full point so a
#: full trajectory can be compared against a quick baseline.
_SWEEPS: "dict[str, dict[str, list[dict[str, object]]]]" = {
    # Index construction: bulk-loading the SS-tree across cardinality,
    # dimensionality and radius-distribution axes.
    "build": {
        "quick": [
            _point(n=500, d=3, radius="gaussian"),
            _point(n=1000, d=3, radius="gaussian"),
            _point(n=500, d=8, radius="gaussian"),
            _point(n=500, d=3, radius="uniform"),
        ],
        "full": [
            _point(n=500, d=3, radius="gaussian"),
            _point(n=1000, d=3, radius="gaussian"),
            _point(n=4000, d=3, radius="gaussian"),
            _point(n=500, d=8, radius="gaussian"),
            _point(n=1000, d=16, radius="gaussian"),
            _point(n=500, d=3, radius="uniform"),
            _point(n=4000, d=3, radius="uniform"),
        ],
    },
    # Definition-2 kNN over the SS-tree: the paper's primary workload.
    "knn": {
        "quick": [
            _point(n=600, d=3, radius="gaussian", k=10, queries=15,
                   strategy="hs", criterion="hyperbola"),
            _point(n=600, d=3, radius="gaussian", k=10, queries=15,
                   strategy="hs", criterion="cascade"),
            _point(n=600, d=3, radius="gaussian", k=10, queries=15,
                   strategy="df", criterion="hyperbola"),
            _point(n=600, d=8, radius="gaussian", k=10, queries=15,
                   strategy="hs", criterion="hyperbola"),
            _point(n=600, d=3, radius="uniform", k=10, queries=15,
                   strategy="hs", criterion="hyperbola"),
        ],
        "full": [
            _point(n=600, d=3, radius="gaussian", k=10, queries=15,
                   strategy="hs", criterion="hyperbola"),
            _point(n=600, d=3, radius="gaussian", k=10, queries=15,
                   strategy="hs", criterion="cascade"),
            _point(n=600, d=3, radius="gaussian", k=10, queries=15,
                   strategy="df", criterion="hyperbola"),
            _point(n=600, d=8, radius="gaussian", k=10, queries=15,
                   strategy="hs", criterion="hyperbola"),
            _point(n=600, d=3, radius="uniform", k=10, queries=15,
                   strategy="hs", criterion="hyperbola"),
            _point(n=2500, d=3, radius="gaussian", k=10, queries=25,
                   strategy="hs", criterion="hyperbola"),
            _point(n=2500, d=3, radius="gaussian", k=50, queries=25,
                   strategy="hs", criterion="hyperbola"),
            _point(n=2500, d=16, radius="gaussian", k=10, queries=25,
                   strategy="hs", criterion="hyperbola"),
        ],
    },
    # Reverse-NN candidate generation (flat, pairwise pre-filter).
    "rknn": {
        "quick": [
            _point(n=150, d=3, radius="gaussian", queries=5,
                   criterion="hyperbola"),
            _point(n=150, d=8, radius="gaussian", queries=5,
                   criterion="hyperbola"),
        ],
        "full": [
            _point(n=150, d=3, radius="gaussian", queries=5,
                   criterion="hyperbola"),
            _point(n=150, d=8, radius="gaussian", queries=5,
                   criterion="hyperbola"),
            _point(n=500, d=3, radius="gaussian", queries=10,
                   criterion="hyperbola"),
            _point(n=500, d=3, radius="uniform", queries=10,
                   criterion="hyperbola"),
        ],
    },
    # Durable streaming mutations: WAL-acked insert/delete throughput
    # ("mutate" points, throughput_ops = mutations/sec) and warm-restart
    # replay cost ("recover" points, latency = one full reopen over a
    # WAL of `mutations` records).
    "stream": {
        "quick": [
            _point(phase="mutate", n=300, d=3, radius="gaussian",
                   mutations=120),
            _point(phase="mutate", n=300, d=8, radius="gaussian",
                   mutations=120),
            _point(phase="recover", n=300, d=3, radius="gaussian",
                   mutations=400),
        ],
        "full": [
            _point(phase="mutate", n=300, d=3, radius="gaussian",
                   mutations=120),
            _point(phase="mutate", n=300, d=8, radius="gaussian",
                   mutations=120),
            _point(phase="recover", n=300, d=3, radius="gaussian",
                   mutations=400),
            _point(phase="mutate", n=1000, d=3, radius="gaussian",
                   mutations=500),
            _point(phase="recover", n=1000, d=3, radius="gaussian",
                   mutations=2000),
        ],
    },
    # End-to-end serving over real TCP: single-process vs a supervised
    # worker pool, with one induced SIGKILL mid-burst ("kill" is the
    # request index of the kill in the first burst; 0 = no kill) so
    # the trajectory prices failover p99, not just the happy path.
    "serve": {
        "quick": [
            _point(phase="single", n=300, d=3, radius="gaussian",
                   requests=24, k=5),
            _point(phase="workers", workers=2, n=300, d=3,
                   radius="gaussian", requests=24, k=5, kill=6),
        ],
        "full": [
            _point(phase="single", n=300, d=3, radius="gaussian",
                   requests=24, k=5),
            _point(phase="workers", workers=2, n=300, d=3,
                   radius="gaussian", requests=24, k=5, kill=6),
            _point(phase="workers", workers=2, n=300, d=3,
                   radius="gaussian", requests=24, k=5, kill=0),
            _point(phase="workers", workers=4, n=1000, d=3,
                   radius="gaussian", requests=48, k=5, kill=12),
        ],
    },
    # Top-k dominating: the vectorised n x (n-1) scoring pass.
    "dominating": {
        "quick": [
            _point(n=120, d=3, radius="gaussian", k=5, queries=3,
                   criterion="hyperbola"),
            _point(n=120, d=3, radius="gaussian", k=5, queries=3,
                   criterion="minmax"),
        ],
        "full": [
            _point(n=120, d=3, radius="gaussian", k=5, queries=3,
                   criterion="hyperbola"),
            _point(n=120, d=3, radius="gaussian", k=5, queries=3,
                   criterion="minmax"),
            _point(n=400, d=3, radius="gaussian", k=10, queries=5,
                   criterion="hyperbola"),
            _point(n=400, d=8, radius="gaussian", k=10, queries=5,
                   criterion="hyperbola"),
        ],
    },
}

#: The registered topic names, in canonical emission order.
TOPICS: "tuple[str, ...]" = tuple(_SWEEPS)


def topic_points(topic: str, *, quick: bool = False) -> "list[dict[str, object]]":
    """The pinned parameter points of *topic* (copies, safe to annotate).

    Raises ``KeyError`` for an unknown topic; callers surface the
    registered names from :data:`TOPICS`.
    """
    sweep = _SWEEPS[topic]
    mode = "quick" if quick else "full"
    return [dict(point) for point in sweep[mode]]
