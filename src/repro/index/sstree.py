"""An SS-tree (White & Jain, ICDE 1996) for hypersphere data.

The SS-tree is an R-tree-style height-balanced structure whose
directory regions are *spheres*: every node stores the centroid of the
object centers underneath it and a covering radius large enough to
enclose every descendant object.  White & Jain report (and the paper
relies on) the sphere directory outperforming rectangle directories for
similarity search in high-dimensional spaces.

Faithful design choices:

- **Choose-subtree** descends into the child whose centroid is closest
  to the new entry's center (the original insertion heuristic).
- **Split** picks the coordinate with the highest variance of the child
  centroids and partitions along it at the position minimising the sum
  of the two sides' variances, subject to a minimum fill (the original
  split algorithm).
- **Centroids** are the count-weighted means of the underlying object
  centers, maintained incrementally on the insertion path.

Additions beyond the original (needed by this reproduction):

- entries are ``(key, Hypersphere)`` pairs so query answers can be
  matched against ground truth;
- :meth:`SSTree.bulk_load` packs a dataset bottom-up (sort-tile
  recursive on the longest-variance dimension) for fast experiment
  setup;
- :meth:`SSTree.validate` checks the covering invariants, used by the
  property-based tests.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import IndexStructureError
from repro.geometry.hypersphere import Hypersphere
from repro.index.instrumentation import IndexStatsMixin

__all__ = ["SSTree", "SSTreeNode"]

DEFAULT_MAX_ENTRIES = 16


class SSTreeNode:
    """A directory or leaf node: a covering sphere over its children."""

    __slots__ = ("is_leaf", "children", "entries", "centroid", "radius", "count")

    def __init__(self, dimension: int, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.children: list[SSTreeNode] = []
        self.entries: list[tuple[object, Hypersphere]] = []
        self.centroid = np.zeros(dimension)
        self.radius = 0.0
        self.count = 0

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def sphere(self) -> Hypersphere:
        """The covering sphere of this node."""
        return Hypersphere(self.centroid, self.radius)

    def min_dist(self, query: Hypersphere) -> float:
        """Lower bound on ``MinDist(S, query)`` for any object S below."""
        gap = (
            float(np.linalg.norm(self.centroid - query.center))
            - self.radius
            - query.radius
        )
        return gap if gap > 0.0 else 0.0

    def max_dist(self, query: Hypersphere) -> float:
        """Upper bound on ``MaxDist(S, query)`` for any object S below."""
        return (
            float(np.linalg.norm(self.centroid - query.center))
            + self.radius
            + query.radius
        )

    def max_dist_lower_bound(self, query: Hypersphere) -> float:
        """Lower bound on ``MaxDist(S, query)`` for any object S below.

        Every member sphere has ``Dist(c_S, centroid) + r_S <= radius``,
        so ``MaxDist(S, query) = Dist(c_S, cq) + r_S + rq >=
        Dist(centroid, cq) - radius + rq`` (and trivially ``>= rq``).
        """
        gap = float(np.linalg.norm(self.centroid - query.center)) - self.radius
        return max(gap, 0.0) + query.radius

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Recompute centroid, covering radius and count from children."""
        if self.is_leaf:
            if not self.entries:
                self.count = 0
                self.radius = 0.0
                return
            centers = np.stack([sphere.center for _, sphere in self.entries])
            self.count = len(self.entries)
            self.centroid = centers.mean(axis=0)
            self.radius = max(
                float(np.linalg.norm(sphere.center - self.centroid)) + sphere.radius
                for _, sphere in self.entries
            )
        else:
            if not self.children:
                self.count = 0
                self.radius = 0.0
                return
            self.count = sum(child.count for child in self.children)
            self.centroid = (
                sum(child.centroid * child.count for child in self.children)
                / self.count
            )
            self.radius = max(
                float(np.linalg.norm(child.centroid - self.centroid)) + child.radius
                for child in self.children
            )

    def _member_positions(self) -> np.ndarray:
        """Centroid positions used by the split heuristics."""
        if self.is_leaf:
            return np.stack([sphere.center for _, sphere in self.entries])
        return np.stack([child.centroid for child in self.children])


class SSTree(IndexStatsMixin):
    """A dynamically grown (or bulk-loaded) SS-tree over keyed hyperspheres.

    Parameters
    ----------
    dimension:
        Dimensionality of the indexed hyperspheres.
    max_entries:
        Node capacity; nodes split when it is exceeded.  The minimum
        fill is ``ceil(max_entries * 0.4)`` as in the original paper.

    Examples
    --------
    >>> tree = SSTree(dimension=2)
    >>> tree.insert("a", Hypersphere([0.0, 0.0], 1.0))
    >>> tree.insert("b", Hypersphere([5.0, 5.0], 0.5))
    >>> len(tree)
    2
    """

    def __init__(self, dimension: int, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if dimension < 1:
            raise IndexStructureError(f"dimension must be positive, got {dimension}")
        if max_entries < 4:
            raise IndexStructureError(f"max_entries must be at least 4, got {max_entries}")
        self.dimension = dimension
        self.max_entries = max_entries
        self.min_entries = max(2, math.ceil(max_entries * 0.4))
        self.root = SSTreeNode(dimension, is_leaf=True)
        self._init_stats()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def insert(self, key: object, sphere: Hypersphere) -> None:
        """Insert one keyed hypersphere."""
        if sphere.dimension != self.dimension:
            raise IndexStructureError(
                f"sphere dimension {sphere.dimension} != tree dimension "
                f"{self.dimension}"
            )
        split = self._insert_into(self.root, key, sphere)
        if split is not None:
            old_root = self.root
            self.root = SSTreeNode(self.dimension, is_leaf=False)
            self.root.children = [old_root, split]
            self.root.refresh()

    def _insert_into(
        self, node: SSTreeNode, key: object, sphere: Hypersphere
    ) -> SSTreeNode | None:
        """Recursive insert; returns the new sibling when *node* split."""
        if node.is_leaf:
            node.entries.append((key, sphere))
        else:
            child = min(
                node.children,
                key=lambda c: float(np.linalg.norm(c.centroid - sphere.center)),
            )
            split = self._insert_into(child, key, sphere)
            if split is not None:
                node.children.append(split)
        node.refresh()
        if self._overflowing(node):
            return self._split(node)
        return None

    def _overflowing(self, node: SSTreeNode) -> bool:
        size = len(node.entries) if node.is_leaf else len(node.children)
        return size > self.max_entries

    def _split(self, node: SSTreeNode) -> SSTreeNode:
        """Split *node* in place; returns the newly created sibling."""
        positions = node._member_positions()
        axis = int(np.argmax(positions.var(axis=0)))
        order = np.argsort(positions[:, axis], kind="stable")
        members: Sequence = node.entries if node.is_leaf else node.children
        ordered = [members[i] for i in order]
        split_at = self._best_split_position(positions[order, :])

        sibling = SSTreeNode(self.dimension, is_leaf=node.is_leaf)
        if node.is_leaf:
            node.entries = ordered[:split_at]
            sibling.entries = ordered[split_at:]
        else:
            node.children = ordered[:split_at]
            sibling.children = ordered[split_at:]
        node.refresh()
        sibling.refresh()
        return sibling

    def _best_split_position(self, ordered_positions: np.ndarray) -> int:
        """The split index minimising the summed per-side variances."""
        n = ordered_positions.shape[0]
        lo = self.min_entries
        hi = n - self.min_entries
        if lo >= hi:
            return n // 2
        best_at, best_score = n // 2, math.inf
        for at in range(lo, hi + 1):
            left, right = ordered_positions[:at], ordered_positions[at:]
            score = float(left.var(axis=0).sum()) + float(right.var(axis=0).sum())
            if score < best_score:
                best_at, best_score = at, score
        return best_at

    def remove(self, key: object, sphere: Hypersphere) -> bool:
        """Remove one ``(key, sphere)`` entry; returns whether it existed.

        Uses the classical R-tree-style condense step: the entry's leaf
        is located through the covering spheres, the entry is dropped,
        and any node left under-filled on the path is dissolved with its
        remaining members re-inserted.
        """
        if sphere.dimension != self.dimension:
            raise IndexStructureError(
                f"sphere dimension {sphere.dimension} != tree dimension "
                f"{self.dimension}"
            )
        orphans: list[tuple[object, Hypersphere]] = []
        removed = self._remove_from(self.root, key, sphere, orphans, is_root=True)
        if not removed:
            return False
        # Collapse a root that lost all but one child.
        while not self.root.is_leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
        for orphan_key, orphan_sphere in orphans:
            self.insert(orphan_key, orphan_sphere)
        return True

    def _remove_from(
        self,
        node: SSTreeNode,
        key: object,
        sphere: Hypersphere,
        orphans: list,
        *,
        is_root: bool,
    ) -> bool:
        if node.is_leaf:
            for i, (entry_key, entry_sphere) in enumerate(node.entries):
                if entry_key == key and entry_sphere == sphere:
                    del node.entries[i]
                    node.refresh()
                    return True
            return False
        gap_to = lambda child: float(
            np.linalg.norm(child.centroid - sphere.center)
        )
        # The entry can live in any child whose covering sphere reaches it.
        for child in sorted(node.children, key=gap_to):
            reach = gap_to(child) - child.radius
            if reach > sphere.radius + 1e-9:
                continue  # covering invariant: the entry cannot be below
            if self._remove_from(child, key, sphere, orphans, is_root=False):
                # Condense: dissolve an emptied leaf or an inner child
                # whose fan-out fell below the minimum, queueing its
                # remaining members for re-insertion.
                emptied_leaf = child.is_leaf and not child.entries
                thin_inner = (
                    not child.is_leaf and len(child.children) < self.min_entries
                )
                if (emptied_leaf or thin_inner) and len(node.children) > 1:
                    node.children.remove(child)
                    orphans.extend(self._collect_entries(child))
                node.refresh()
                return True
        return False

    def _collect_entries(self, node: SSTreeNode) -> list:
        if node.is_leaf:
            return list(node.entries)
        collected: list = []
        for child in node.children:
            collected.extend(self._collect_entries(child))
        return collected

    @classmethod
    def bulk_load(
        cls,
        items: Iterable[tuple[object, Hypersphere]],
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> "SSTree":
        """Pack a whole dataset bottom-up.

        Recursively sorts on the highest-variance coordinate and slices
        into equal chunks of at most *max_entries*, producing a balanced
        tree in O(n log n) — used by the experiment harness where the
        paper builds its index once per dataset.
        """
        items = list(items)
        if not items:
            raise IndexStructureError("cannot bulk-load an empty dataset")
        dimension = items[0][1].dimension
        tree = cls(dimension, max_entries=max_entries)

        leaves: list[SSTreeNode] = []
        for chunk in _tile(items, max_entries, key_positions=np.stack(
            [sphere.center for _, sphere in items]
        )):
            leaf = SSTreeNode(dimension, is_leaf=True)
            leaf.entries = chunk
            leaf.refresh()
            leaves.append(leaf)

        level = leaves
        while len(level) > 1:
            positions = np.stack([node.centroid for node in level])
            grouped = _tile(level, max_entries, key_positions=positions)
            parents = []
            for group in grouped:
                parent = SSTreeNode(dimension, is_leaf=False)
                parent.children = group
                parent.refresh()
                parents.append(parent)
            level = parents
        tree.root = level[0]
        return tree

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.root.count

    def __iter__(self) -> Iterator[tuple[object, Hypersphere]]:
        yield from self._iter_node(self.root)

    def _iter_node(self, node: SSTreeNode) -> Iterator[tuple[object, Hypersphere]]:
        if node.is_leaf:
            yield from node.entries
        else:
            for child in node.children:
                yield from self._iter_node(child)

    @property
    def height(self) -> int:
        """Number of levels (a lone leaf root has height 1)."""
        height, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def node_count(self) -> int:
        """Total number of directory + leaf nodes."""
        def count(node: SSTreeNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + sum(count(child) for child in node.children)

        return count(self.root)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, query: Hypersphere) -> list[tuple[object, Hypersphere]]:
        """All entries whose hypersphere intersects *query*."""
        found: list[tuple[object, Hypersphere]] = []
        nodes_visited = entries_scanned = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.min_dist(query) > 0.0:
                continue
            nodes_visited += 1
            if node.is_leaf:
                entries_scanned += len(node.entries)
                found.extend(
                    (key, sphere)
                    for key, sphere in node.entries
                    if sphere.overlaps(query)
                )
            else:
                stack.extend(node.children)
        self.record_query(
            node_accesses=nodes_visited, entries_scanned=entries_scanned
        )
        return found

    # ------------------------------------------------------------------
    # Invariants (property-based tests drive this)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`IndexStructureError` if any structural invariant fails."""
        self._validate_node(self.root, is_root=True)
        leaf_depths = set(self._leaf_depths(self.root, 1))
        if len(leaf_depths) > 1:
            raise IndexStructureError(f"tree is unbalanced: leaf depths {leaf_depths}")

    def _validate_node(self, node: SSTreeNode, *, is_root: bool) -> None:
        size = len(node.entries) if node.is_leaf else len(node.children)
        if size > self.max_entries:
            raise IndexStructureError(f"node overfull: {size} > {self.max_entries}")
        if not is_root and size < self.min_entries and not node.is_leaf:
            raise IndexStructureError(f"inner node underfull: {size} < {self.min_entries}")
        tolerance = 1e-9 * (1.0 + abs(node.radius))
        if node.is_leaf:
            for _, sphere in node.entries:
                reach = (
                    float(np.linalg.norm(sphere.center - node.centroid))
                    + sphere.radius
                )
                if reach > node.radius + tolerance:
                    raise IndexStructureError("leaf covering radius violated")
        else:
            for child in node.children:
                reach = (
                    float(np.linalg.norm(child.centroid - node.centroid))
                    + child.radius
                )
                if reach > node.radius + tolerance:
                    raise IndexStructureError("inner covering radius violated")
                self._validate_node(child, is_root=False)
        expected = (
            len(node.entries)
            if node.is_leaf
            else sum(child.count for child in node.children)
        )
        if node.count != expected:
            raise IndexStructureError(f"count mismatch: {node.count} != {expected}")

    def _leaf_depths(self, node: SSTreeNode, depth: int) -> Iterator[int]:
        if node.is_leaf:
            yield depth
        else:
            for child in node.children:
                yield from self._leaf_depths(child, depth + 1)


def _tile(
    members: Sequence, capacity: int, *, key_positions: np.ndarray
) -> list[list]:
    """Group *members* into chunks of <= *capacity* along the widest axis."""
    axis = int(np.argmax(key_positions.var(axis=0)))
    order = np.argsort(key_positions[:, axis], kind="stable")
    ordered = [members[i] for i in order]
    n_groups = math.ceil(len(ordered) / capacity)
    # array_split balances group sizes (they differ by at most one), so no
    # group ends up pathologically underfull.
    return [
        [ordered[i] for i in chunk]
        for chunk in np.array_split(np.arange(len(ordered)), n_groups)
    ]
