"""Crash-safe index snapshots: checksummed save / load / verify.

A production service cannot afford to rebuild its indexes from scratch
after every restart, and it can afford even less to *trust* a file that
a crash (or a flaky disk) left half-written.  This module persists all
four index structures — :class:`~repro.index.linear.LinearIndex`,
:class:`~repro.index.sstree.SSTree`, :class:`~repro.index.mtree.MTree`
and :class:`~repro.index.vptree.VPTree` — with three defences:

**Versioned header.**  Every snapshot starts with a magic string, a
format version and a CRC-protected JSON header naming the index kind,
dimensionality, entry count and structural parameters.  An unknown
magic or version is rejected before any page is parsed.

**CRC per node page.**  The structure is serialised as a sequence of
*pages* (one page per tree node; entry chunks for the flat index), each
framed as ``length || payload || crc32(payload)``.  Every byte of the
file after the magic is covered by either a length field that is
bounds-checked against the file size or a CRC, so any single corrupted
byte is detected at load time and surfaced as a typed
:class:`~repro.exceptions.SnapshotCorruptionError` — never as a
silently wrong index (the bit-flip test in ``tests/test_snapshot.py``
asserts exactly this, byte by byte).

**Atomic rename-on-write.**  :func:`save` writes to a temporary file in
the destination directory, flushes and fsyncs it, and only then
``os.replace``-s it over the target, so a crash mid-save leaves the
previous snapshot intact.

Geometry round-trips exactly: floats are serialised through JSON, whose
``repr``-based encoding reproduces every finite float64 bit for bit, and
node fields (centroids, covering radii, distance bands) are restored
rather than recomputed.  ``load(save(index))`` therefore answers every
kNN query identically to the original — the property test in
``tests/test_snapshot.py`` drives this across all four indexes.

Raw file I/O goes through the module attributes :func:`_io_write` /
:func:`_io_read` so the fault-injection harness
(:mod:`repro.robust.faults`, seam ``"snapshot"``) can corrupt bytes in
flight; the CRC framing is what turns those faults into typed errors.
"""

from __future__ import annotations

import io
import json
import os
import struct
import tempfile
import zlib
from typing import Any, BinaryIO, Callable, Iterator, Sequence

from repro import obs
from repro.exceptions import SnapshotCorruptionError, SnapshotError
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.index.mtree import MTree, MTreeNode
from repro.index.sstree import SSTree, SSTreeNode
from repro.index.vptree import VPTree, VPTreeNode
from repro.obs import names

__all__ = ["save", "load", "verify", "MAGIC", "VERSION"]

MAGIC = b"HSDOMSNP"
VERSION = 1

_U32 = struct.Struct("<I")
#: Entries per page for the flat linear index.
_LINEAR_PAGE_ENTRIES = 256

AnyIndex = "LinearIndex | SSTree | MTree | VPTree"


# ----------------------------------------------------------------------
# Raw I/O seam (patched by repro.robust.faults, seam "snapshot")
# ----------------------------------------------------------------------
def _io_write(handle: BinaryIO, data: bytes) -> None:
    """Write *data*; the snapshot fault seam wraps this attribute."""
    handle.write(data)


def _io_read(handle: BinaryIO, size: int) -> bytes:
    """Read up to *size* bytes; the snapshot fault seam wraps this."""
    return handle.read(size)


# ----------------------------------------------------------------------
# Entry (key, sphere) codec
# ----------------------------------------------------------------------
def _encode_key(key: object) -> list:
    if key is None:
        return ["n"]
    if isinstance(key, bool):  # before int: bool subclasses int
        return ["b", key]
    if isinstance(key, int):
        return ["i", key]
    if isinstance(key, float):
        return ["f", key]
    if isinstance(key, str):
        return ["s", key]
    if isinstance(key, tuple):
        return ["t", [_encode_key(item) for item in key]]
    raise SnapshotError(
        f"entry key of type {type(key).__name__!r} is not "
        "snapshot-serialisable (supported: None, bool, int, float, str, "
        "tuple thereof)"
    )


def _decode_key(encoded: Any) -> object:
    if not isinstance(encoded, list) or not encoded:
        raise SnapshotCorruptionError("malformed entry key in snapshot page")
    tag = encoded[0]
    if tag == "n":
        return None
    if tag in ("b", "i", "f", "s"):
        return encoded[1]
    if tag == "t":
        return tuple(_decode_key(item) for item in encoded[1])
    raise SnapshotCorruptionError(f"unknown entry-key tag {tag!r}")


def _encode_entries(entries: "Sequence[tuple[object, Hypersphere]]") -> list:
    return [
        [_encode_key(key), [float(c) for c in sphere.center], sphere.radius]
        for key, sphere in entries
    ]


def _decode_entries(encoded: Any) -> "list[tuple[object, Hypersphere]]":
    try:
        return [
            (_decode_key(key), Hypersphere(center, radius))
            for key, center, radius in encoded
        ]
    except (TypeError, ValueError) as error:
        raise SnapshotCorruptionError(
            f"malformed entry list in snapshot page: {error}"
        ) from error


# ----------------------------------------------------------------------
# Per-index page codecs (preorder node pages)
# ----------------------------------------------------------------------
def _linear_pages(index: LinearIndex) -> "Iterator[dict]":
    entries = list(index)
    for at in range(0, len(entries), _LINEAR_PAGE_ENTRIES):
        chunk = entries[at : at + _LINEAR_PAGE_ENTRIES]
        yield {"entries": _encode_entries(chunk)}


def _sstree_pages(node: SSTreeNode) -> "Iterator[dict]":
    page = {
        "leaf": node.is_leaf,
        "children": len(node.children),
        "centroid": [float(c) for c in node.centroid],
        "radius": node.radius,
        "count": node.count,
    }
    if node.is_leaf:
        page["entries"] = _encode_entries(node.entries)
    yield page
    for child in node.children:
        yield from _sstree_pages(child)


def _mtree_pages(node: MTreeNode) -> "Iterator[dict]":
    page = {
        "leaf": node.is_leaf,
        "children": len(node.children),
        "routing": (
            None if node.routing is None else [float(c) for c in node.routing]
        ),
        "radius": node.radius,
        "count": node.count,
    }
    if node.is_leaf:
        page["entries"] = _encode_entries(node.entries)
    yield page
    for child in node.children:
        yield from _mtree_pages(child)


def _vptree_pages(node: VPTreeNode) -> "Iterator[dict]":
    page = {
        "leaf": node.is_leaf,
        "children": len(node.children),
        "vantage": [float(c) for c in node.vantage],
        "lo": node.lo,
        "hi": node.hi,
        "r_max": node.r_max,
        "count": node.count,
        "split_radius": node.split_radius,
    }
    if node.is_leaf:
        page["entries"] = _encode_entries(node.entries)
    yield page
    for child in node.children:
        yield from _vptree_pages(child)


def _page_field(page: dict, key: str) -> Any:
    try:
        return page[key]
    except KeyError:
        raise SnapshotCorruptionError(
            f"snapshot page is missing the {key!r} field"
        ) from None


def _rebuild_sstree_node(pages: "Iterator[dict]", dimension: int) -> SSTreeNode:
    page = _next_page(pages)
    node = SSTreeNode(dimension, is_leaf=bool(_page_field(page, "leaf")))
    node.centroid = _as_vector(_page_field(page, "centroid"), dimension)
    node.radius = float(_page_field(page, "radius"))
    node.count = int(_page_field(page, "count"))
    if node.is_leaf:
        node.entries = _decode_entries(_page_field(page, "entries"))
    for _ in range(int(_page_field(page, "children"))):
        node.children.append(_rebuild_sstree_node(pages, dimension))
    return node


def _rebuild_mtree_node(pages: "Iterator[dict]", dimension: int) -> MTreeNode:
    page = _next_page(pages)
    node = MTreeNode(is_leaf=bool(_page_field(page, "leaf")))
    routing = _page_field(page, "routing")
    node.routing = None if routing is None else _as_vector(routing, dimension)
    node.radius = float(_page_field(page, "radius"))
    node.count = int(_page_field(page, "count"))
    if node.is_leaf:
        node.entries = _decode_entries(_page_field(page, "entries"))
    for _ in range(int(_page_field(page, "children"))):
        node.children.append(_rebuild_mtree_node(pages, dimension))
    return node


def _rebuild_vptree_node(pages: "Iterator[dict]", dimension: int) -> VPTreeNode:
    page = _next_page(pages)
    node = VPTreeNode(is_leaf=bool(_page_field(page, "leaf")))
    node.vantage = _as_vector(_page_field(page, "vantage"), dimension)
    node.lo = float(_page_field(page, "lo"))
    node.hi = float(_page_field(page, "hi"))
    node.r_max = float(_page_field(page, "r_max"))
    node.count = int(_page_field(page, "count"))
    node.split_radius = float(_page_field(page, "split_radius"))
    if node.is_leaf:
        node.entries = _decode_entries(_page_field(page, "entries"))
    for _ in range(int(_page_field(page, "children"))):
        node.children.append(_rebuild_vptree_node(pages, dimension))
    return node


def _as_vector(values: Any, dimension: int) -> Any:
    import numpy as np

    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1 or array.shape[0] != dimension:
        raise SnapshotCorruptionError(
            f"snapshot vector of shape {array.shape} does not match the "
            f"declared dimension {dimension}"
        )
    return array


def _next_page(pages: "Iterator[dict]") -> dict:
    try:
        return next(pages)
    except StopIteration:
        raise SnapshotCorruptionError(
            "snapshot ended before the declared node structure was complete"
        ) from None


def _describe_index(index: "Any") -> "tuple[str, dict, list[dict]]":
    """(kind, params, pages) for any supported index instance."""
    if isinstance(index, LinearIndex):
        return "linear", {}, list(_linear_pages(index))
    if isinstance(index, SSTree):
        params = {"max_entries": index.max_entries}
        return "sstree", params, list(_sstree_pages(index.root))
    if isinstance(index, MTree):
        params = {"max_entries": index.max_entries}
        return "mtree", params, list(_mtree_pages(index.root))
    if isinstance(index, VPTree):
        params = {"leaf_capacity": index.leaf_capacity}
        return "vptree", params, list(_vptree_pages(index.root))
    raise SnapshotError(
        f"cannot snapshot object of type {type(index).__name__!r}; "
        "supported indexes: LinearIndex, SSTree, MTree, VPTree"
    )


def _rebuild_index(
    kind: str, params: dict, dimension: int, pages: "list[dict]"
) -> "Any":
    page_iter = iter(pages)
    if kind == "linear":
        entries: "list[tuple[object, Hypersphere]]" = []
        for page in pages:
            entries.extend(_decode_entries(_page_field(page, "entries")))
        return LinearIndex(entries)
    if kind == "sstree":
        tree = SSTree(dimension, max_entries=int(params.get("max_entries", 16)))
        tree.root = _rebuild_sstree_node(page_iter, dimension)
        return tree
    if kind == "mtree":
        mtree = MTree(dimension, max_entries=int(params.get("max_entries", 16)))
        mtree.root = _rebuild_mtree_node(page_iter, dimension)
        return mtree
    if kind == "vptree":
        root = _rebuild_vptree_node(page_iter, dimension)
        return VPTree(root, dimension, int(params.get("leaf_capacity", 16)))
    raise SnapshotError(f"unknown snapshot index kind {kind!r}")


# ----------------------------------------------------------------------
# Frame helpers
# ----------------------------------------------------------------------
def _frame(payload: bytes) -> bytes:
    return _U32.pack(len(payload)) + payload + _U32.pack(
        zlib.crc32(payload) & 0xFFFFFFFF
    )


def _read_exact(handle: BinaryIO, size: int, what: str) -> bytes:
    data = _io_read(handle, size)
    if len(data) != size:
        raise SnapshotCorruptionError(
            f"snapshot truncated while reading {what} "
            f"(wanted {size} bytes, got {len(data)})"
        )
    return data


def _read_frame(handle: BinaryIO, remaining: int, what: str) -> bytes:
    header = _read_exact(handle, _U32.size, f"{what} length")
    (length,) = _U32.unpack(header)
    if length + _U32.size > remaining:
        raise SnapshotCorruptionError(
            f"snapshot {what} declares {length} bytes but only "
            f"{remaining - _U32.size} remain in the file"
        )
    payload = _read_exact(handle, length, what)
    checksum = _read_exact(handle, _U32.size, f"{what} checksum")
    (expected,) = _U32.unpack(checksum)
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if actual != expected:
        raise SnapshotCorruptionError(
            f"snapshot {what} failed its CRC check "
            f"(stored {expected:#010x}, computed {actual:#010x})"
        )
    return payload


def _parse_json(payload: bytes, what: str) -> dict:
    try:
        parsed = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotCorruptionError(
            f"snapshot {what} is not valid JSON despite a passing CRC: {error}"
        ) from error
    if not isinstance(parsed, dict):
        raise SnapshotCorruptionError(f"snapshot {what} is not a JSON object")
    return parsed


def _dump_json(payload: dict, what: str) -> bytes:
    try:
        return json.dumps(
            payload, allow_nan=False, separators=(",", ":")
        ).encode("utf-8")
    except ValueError as error:
        raise SnapshotError(f"cannot serialise snapshot {what}: {error}") from error


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def save(index: "Any", path: "str | os.PathLike[str]") -> dict:
    """Write a checksummed snapshot of *index* to *path* atomically.

    Returns a summary dict (``kind``, ``dimension``, ``count``,
    ``pages``, ``bytes``).  The write lands in a temporary file first
    and is renamed over *path* only after a successful flush+fsync, so
    an interrupted save never destroys an existing snapshot.
    """
    with obs.trace(names.SNAPSHOT_SAVE_SPAN):
        kind, params, pages = _describe_index(index)
        header = {
            "kind": kind,
            "dimension": index.dimension,
            "count": len(index),
            "pages": len(pages),
            "params": params,
        }
        path = os.fspath(path)
        directory = os.path.dirname(path) or "."
        descriptor, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
        )
        total = 0
        try:
            with os.fdopen(descriptor, "wb") as handle:
                _io_write(handle, MAGIC + _U32.pack(VERSION))
                total += len(MAGIC) + _U32.size
                framed = _frame(_dump_json(header, "header"))
                _io_write(handle, framed)
                total += len(framed)
                for page in pages:
                    framed = _frame(_dump_json(page, "page"))
                    _io_write(handle, framed)
                    total += len(framed)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        _fsync_directory(directory)
    if obs.ENABLED:
        obs.incr(names.SNAPSHOT_SAVES)
        obs.incr(names.SNAPSHOT_PAGES_WRITTEN, len(pages))
        obs.observe(names.SNAPSHOT_BYTES, total)
    return {
        "kind": kind,
        "dimension": header["dimension"],
        "count": header["count"],
        "pages": len(pages),
        "bytes": total,
    }


def _fsync_directory(directory: str) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _read_snapshot(
    path: "str | os.PathLike[str]",
    on_page: "Callable[[dict], None] | None",
) -> dict:
    """Parse and integrity-check a snapshot; returns the header.

    Every page is CRC-verified; *on_page* (when given) receives each
    decoded page in file order.
    """
    path = os.fspath(path)
    try:
        size = os.path.getsize(path)
        handle: BinaryIO = open(path, "rb")
    except OSError as error:
        raise SnapshotError(f"cannot open snapshot {path!r}: {error}") from error
    with handle:
        remaining = size
        prefix = _read_exact(handle, len(MAGIC) + _U32.size, "magic and version")
        remaining -= len(prefix)
        if prefix[: len(MAGIC)] != MAGIC:
            raise SnapshotCorruptionError(
                f"{path!r} is not a repro index snapshot (bad magic)"
            )
        (version,) = _U32.unpack(prefix[len(MAGIC) :])
        if version != VERSION:
            raise SnapshotError(
                f"snapshot {path!r} has format version {version}; this "
                f"build reads version {VERSION}"
            )
        header_payload = _read_frame(handle, remaining, "header")
        remaining -= len(header_payload) + 2 * _U32.size
        header = _parse_json(header_payload, "header")
        for key in ("kind", "dimension", "count", "pages", "params"):
            if key not in header:
                raise SnapshotCorruptionError(
                    f"snapshot header is missing the {key!r} field"
                )
        page_count = int(header["pages"])
        if page_count < 0:
            raise SnapshotCorruptionError("snapshot header declares negative pages")
        for number in range(page_count):
            payload = _read_frame(handle, remaining, f"page {number}")
            remaining -= len(payload) + 2 * _U32.size
            if on_page is not None:
                on_page(_parse_json(payload, f"page {number}"))
        if _io_read(handle, 1):
            raise SnapshotCorruptionError(
                "snapshot carries trailing bytes after the final page"
            )
    header["bytes"] = size
    return header


def load(path: "str | os.PathLike[str]") -> "Any":
    """Rebuild an index from a snapshot, verifying every CRC on the way.

    Raises :class:`~repro.exceptions.SnapshotCorruptionError` on any
    integrity failure and :class:`~repro.exceptions.SnapshotError` on
    unreadable files or unsupported versions.
    """
    with obs.trace(names.SNAPSHOT_LOAD_SPAN):
        pages: "list[dict]" = []
        try:
            header = _read_snapshot(path, pages.append)
            index = _rebuild_index(
                str(header["kind"]),
                dict(header["params"]),
                int(header["dimension"]),
                pages,
            )
        except SnapshotCorruptionError:
            if obs.ENABLED:
                obs.incr(names.SNAPSHOT_CORRUPTIONS)
            raise
        if len(index) != int(header["count"]):
            if obs.ENABLED:
                obs.incr(names.SNAPSHOT_CORRUPTIONS)
            raise SnapshotCorruptionError(
                f"snapshot declares {header['count']} entries but "
                f"rebuilding produced {len(index)}"
            )
    if obs.ENABLED:
        obs.incr(names.SNAPSHOT_LOADS)
        obs.incr(names.SNAPSHOT_PAGES_READ, len(pages))
    return index


def verify(path: "str | os.PathLike[str]") -> dict:
    """Integrity-check a snapshot without rebuilding the index.

    Returns the header summary (``kind``, ``dimension``, ``count``,
    ``pages``, ``bytes``) when every CRC passes; raises
    :class:`~repro.exceptions.SnapshotCorruptionError` otherwise.
    """
    with obs.trace(names.SNAPSHOT_VERIFY_SPAN):
        counted = 0

        def count(_: dict) -> None:
            nonlocal counted
            counted += 1

        try:
            header = _read_snapshot(path, count)
        except SnapshotCorruptionError:
            if obs.ENABLED:
                obs.incr(names.SNAPSHOT_CORRUPTIONS)
            raise
    if obs.ENABLED:
        obs.incr(names.SNAPSHOT_VERIFIES)
        obs.incr(names.SNAPSHOT_PAGES_READ, counted)
    return {
        "kind": header["kind"],
        "dimension": header["dimension"],
        "count": header["count"],
        "pages": header["pages"],
        "bytes": header["bytes"],
    }
