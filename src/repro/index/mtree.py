"""An M-tree (Ciaccia, Patella & Zezula, VLDB 1997) for hypersphere data.

The M-tree is the classic dynamically balanced metric index the paper's
related work lists alongside the SS-tree.  Unlike the SS-tree it never
computes centroids: every routing entry is an *actual data center*
promoted from below, and all maintenance uses only pairwise distances —
the property that makes the structure metric-space general.

Adaptation to hypersphere objects: the tree indexes the object centers,
and every covering radius is enlarged by the member object radii, so a
node's sphere ``(routing, radius)`` covers every *point of every member
hypersphere* beneath it.  That makes the node bounds identical in form
to the SS-tree's, and the duck-typed node interface (``is_leaf`` /
``entries`` / ``children`` / ``min_dist`` / ``max_dist_lower_bound``)
lets :func:`repro.queries.knn.knn_query` run on it unchanged.

Policies (the classical defaults):

- **insert** descends into the child needing no radius enlargement with
  the nearest routing object, else the child with minimal enlargement;
- **split** promotes the two members farthest apart (the M_LB_DIST-like
  exhaustive choice — node capacities are small) and partitions the
  members to the nearer promoted routing object.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.exceptions import IndexStructureError
from repro.geometry.hypersphere import Hypersphere
from repro.index.instrumentation import IndexStatsMixin

__all__ = ["MTree", "MTreeNode"]

DEFAULT_MAX_ENTRIES = 16


class MTreeNode:
    """A node: a promoted routing center plus a covering radius."""

    __slots__ = ("is_leaf", "entries", "children", "routing", "radius", "count")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list[tuple[object, Hypersphere]] = []
        self.children: list[MTreeNode] = []
        self.routing: np.ndarray | None = None
        self.radius = 0.0
        self.count = 0

    def min_dist(self, query: Hypersphere) -> float:
        """Lower bound on ``MinDist(S, query)`` for every member S."""
        gap = (
            float(np.linalg.norm(self.routing - query.center))
            - self.radius
            - query.radius
        )
        return gap if gap > 0.0 else 0.0

    def max_dist_lower_bound(self, query: Hypersphere) -> float:
        """Lower bound on ``MaxDist(S, query)`` for every member S."""
        gap = float(np.linalg.norm(self.routing - query.center)) - self.radius
        return max(gap, 0.0) + query.radius

    def refresh(self) -> None:
        """Recompute the covering radius and count (routing unchanged)."""
        if self.is_leaf:
            self.count = len(self.entries)
            self.radius = max(
                (
                    float(np.linalg.norm(sphere.center - self.routing))
                    + sphere.radius
                    for _, sphere in self.entries
                ),
                default=0.0,
            )
        else:
            self.count = sum(child.count for child in self.children)
            self.radius = max(
                (
                    float(np.linalg.norm(child.routing - self.routing))
                    + child.radius
                    for child in self.children
                ),
                default=0.0,
            )


class MTree(IndexStatsMixin):
    """A dynamically built M-tree over keyed hyperspheres.

    Examples
    --------
    >>> tree = MTree(dimension=2)
    >>> tree.insert("a", Hypersphere([0.0, 0.0], 1.0))
    >>> tree.insert("b", Hypersphere([5.0, 5.0], 0.5))
    >>> len(tree)
    2
    """

    def __init__(self, dimension: int, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if dimension < 1:
            raise IndexStructureError(f"dimension must be positive, got {dimension}")
        if max_entries < 4:
            raise IndexStructureError(f"max_entries must be at least 4, got {max_entries}")
        self.dimension = dimension
        self.max_entries = max_entries
        self.root = MTreeNode(is_leaf=True)
        self._init_stats()

    @classmethod
    def build(
        cls,
        items: Iterable[tuple[object, Hypersphere]],
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> "MTree":
        """Construct by repeated insertion (the M-tree is insert-built)."""
        items = list(items)
        if not items:
            raise IndexStructureError("cannot build an index over an empty dataset")
        tree = cls(items[0][1].dimension, max_entries=max_entries)
        for key, sphere in items:
            tree.insert(key, sphere)
        return tree

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: object, sphere: Hypersphere) -> None:
        """Insert one keyed hypersphere."""
        if sphere.dimension != self.dimension:
            raise IndexStructureError(
                f"sphere dimension {sphere.dimension} != tree dimension "
                f"{self.dimension}"
            )
        if self.root.routing is None:
            self.root.routing = sphere.center.copy()
        split = self._insert_into(self.root, key, sphere)
        if split is not None:
            old_root = self.root
            self.root = MTreeNode(is_leaf=False)
            self.root.children = [old_root, split]
            # Promote the child routing center nearer the crowd.
            self.root.routing = old_root.routing
            self.root.refresh()

    def _insert_into(
        self, node: MTreeNode, key: object, sphere: Hypersphere
    ) -> "MTreeNode | None":
        if node.is_leaf:
            node.entries.append((key, sphere))
        else:
            child = self._choose_child(node, sphere)
            split = self._insert_into(child, key, sphere)
            if split is not None:
                node.children.append(split)
        node.refresh()
        if self._overflowing(node):
            return self._split(node)
        return None

    def _choose_child(self, node: MTreeNode, sphere: Hypersphere) -> MTreeNode:
        """Classical choice: no-enlargement nearest, else least enlargement."""
        best, best_key = None, None
        for child in node.children:
            gap = (
                float(np.linalg.norm(child.routing - sphere.center))
                + sphere.radius
            )
            enlargement = max(gap - child.radius, 0.0)
            candidate_key = (enlargement, gap)
            if best_key is None or candidate_key < best_key:
                best, best_key = child, candidate_key
        return best

    def _overflowing(self, node: MTreeNode) -> bool:
        size = len(node.entries) if node.is_leaf else len(node.children)
        return size > self.max_entries

    def _split(self, node: MTreeNode) -> MTreeNode:
        """Promote two far-apart members; partition to the nearer one."""
        if node.is_leaf:
            positions = np.stack([sphere.center for _, sphere in node.entries])
            members: list = list(node.entries)
        else:
            positions = np.stack([child.routing for child in node.children])
            members = list(node.children)

        first, second = self._promote(positions)
        gap_first = np.linalg.norm(positions - positions[first], axis=1)
        gap_second = np.linalg.norm(positions - positions[second], axis=1)
        to_second = gap_second < gap_first
        # Guarantee both sides non-empty even for duplicate-heavy data.
        to_second[first] = False
        to_second[second] = True

        sibling = MTreeNode(is_leaf=node.is_leaf)
        keep = [m for m, flag in zip(members, to_second) if not flag]
        move = [m for m, flag in zip(members, to_second) if flag]
        # Inner nodes need a fan-out of at least two on both sides;
        # duplicate-heavy data can otherwise leave a side with one
        # member (every tie breaks the same way).
        min_side = 1 if node.is_leaf else 2
        while len(move) < min_side and len(keep) > min_side:
            move.append(keep.pop())
        while len(keep) < min_side and len(move) > min_side:
            keep.append(move.pop())
        if node.is_leaf:
            node.entries, sibling.entries = keep, move
            node.routing = positions[first].copy()
            sibling.routing = positions[second].copy()
        else:
            node.children, sibling.children = keep, move
            node.routing = positions[first].copy()
            sibling.routing = positions[second].copy()
        node.refresh()
        sibling.refresh()
        return sibling

    @staticmethod
    def _promote(positions: np.ndarray) -> tuple[int, int]:
        """The pair of member positions farthest apart (exhaustive)."""
        n = positions.shape[0]
        best = (0, 1 if n > 1 else 0)
        best_gap = -1.0
        for i in range(n):
            gaps = np.linalg.norm(positions[i + 1 :] - positions[i], axis=1)
            if gaps.size == 0:
                continue
            j = int(np.argmax(gaps))
            if gaps[j] > best_gap:
                best_gap = float(gaps[j])
                best = (i, i + 1 + j)
        return best

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.root.count

    def __iter__(self) -> Iterator[tuple[object, Hypersphere]]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)

    @property
    def height(self) -> int:
        """Number of levels (the M-tree is height-balanced)."""
        height, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def node_count(self) -> int:
        """Total number of nodes."""
        def count(node: MTreeNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + sum(count(child) for child in node.children)

        return count(self.root)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, query: Hypersphere) -> list[tuple[object, Hypersphere]]:
        """All entries whose hypersphere intersects *query*."""
        found: list[tuple[object, Hypersphere]] = []
        nodes_visited = entries_scanned = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.count == 0 or node.min_dist(query) > 0.0:
                continue
            nodes_visited += 1
            if node.is_leaf:
                entries_scanned += len(node.entries)
                found.extend(
                    (key, sphere)
                    for key, sphere in node.entries
                    if sphere.overlaps(query)
                )
            else:
                stack.extend(node.children)
        self.record_query(
            node_accesses=nodes_visited, entries_scanned=entries_scanned
        )
        return found

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`IndexStructureError` on any violated invariant."""
        if self.root.count == 0:
            return

        def check(node: MTreeNode) -> tuple[int, int]:
            if node.routing is None:
                raise IndexStructureError("node without a routing object")
            tolerance = 1e-9 * (1.0 + node.radius)
            if node.is_leaf:
                if not node.entries:
                    raise IndexStructureError("empty leaf")
                for _, sphere in node.entries:
                    reach = (
                        float(np.linalg.norm(sphere.center - node.routing))
                        + sphere.radius
                    )
                    if reach > node.radius + tolerance:
                        raise IndexStructureError("leaf covering radius violated")
                if node.count != len(node.entries):
                    raise IndexStructureError("leaf count mismatch")
                return node.count, 1
            if len(node.children) < 2:
                raise IndexStructureError("inner node must have at least two children")
            if len(node.children) > self.max_entries:
                raise IndexStructureError("inner node overfull")
            total = 0
            depths = set()
            for child in node.children:
                reach = (
                    float(np.linalg.norm(child.routing - node.routing))
                    + child.radius
                )
                if reach > node.radius + tolerance:
                    raise IndexStructureError("inner covering radius violated")
                child_count, child_depth = check(child)
                total += child_count
                depths.add(child_depth)
            if len(depths) != 1:
                raise IndexStructureError(f"tree unbalanced: subtree depths {depths}")
            if node.count != total:
                raise IndexStructureError("inner count mismatch")
            return total, depths.pop() + 1

        check(self.root)
