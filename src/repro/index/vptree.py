"""A vantage-point tree over hypersphere data (extension).

The paper's related work (Section 5.1) lists the VP-tree among the
metric index structures hyperspheres appear in.  This implementation
adapts the classic VP-tree (Yianilos / Chiueh) to *hypersphere* objects
so it can drive the same kNN machinery as the SS-tree:

- objects live in leaf buckets;
- every inner node stores a vantage point and splits its members at the
  median distance-to-vantage (inner ball vs outer shell);
- every node (leaf or inner) additionally records, over all objects
  beneath it: the range ``[lo, hi]`` of center-to-vantage distances and
  the largest object radius ``r_max``.  The reverse triangle inequality
  then gives an O(1) lower bound on any member's distance to a query,
  which is exactly the interface the kNN traversals need.

The node type deliberately exposes the same duck-typed surface as
:class:`~repro.index.sstree.SSTreeNode` (``is_leaf``, ``entries``,
``children``, ``min_dist``, ``max_dist_lower_bound``), so
:func:`repro.queries.knn.knn_query` works with either index unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.exceptions import IndexStructureError
from repro.geometry.hypersphere import Hypersphere
from repro.index.instrumentation import IndexStatsMixin

__all__ = ["VPTree", "VPTreeNode"]

DEFAULT_LEAF_CAPACITY = 16


class VPTreeNode:
    """A VP-tree node: a vantage point plus member distance statistics."""

    __slots__ = ("is_leaf", "entries", "children", "vantage", "lo", "hi",
                 "r_max", "count", "split_radius")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list[tuple[object, Hypersphere]] = []
        self.children: list[VPTreeNode] = []
        self.vantage: np.ndarray | None = None
        self.lo = 0.0
        self.hi = 0.0
        self.r_max = 0.0
        self.count = 0
        self.split_radius = 0.0  # inner/outer boundary (inner nodes only)

    def _center_gap_band(self, query: Hypersphere) -> float:
        """Lower bound on ``Dist(c_S, cq)`` over every member S."""
        to_vantage = float(np.linalg.norm(query.center - self.vantage))
        return max(to_vantage - self.hi, self.lo - to_vantage, 0.0)

    def min_dist(self, query: Hypersphere) -> float:
        """Lower bound on ``MinDist(S, query)`` for every member S."""
        gap = self._center_gap_band(query) - self.r_max - query.radius
        return gap if gap > 0.0 else 0.0

    def max_dist_lower_bound(self, query: Hypersphere) -> float:
        """Lower bound on ``MaxDist(S, query)`` for every member S."""
        return self._center_gap_band(query) + query.radius


class VPTree(IndexStatsMixin):
    """A bucketed vantage-point tree over keyed hyperspheres.

    Built in one shot from the full dataset (the classic VP-tree is a
    static structure).

    Examples
    --------
    >>> tree = VPTree.build([("a", Hypersphere([0.0, 0.0], 1.0)),
    ...                      ("b", Hypersphere([5.0, 5.0], 0.5))])
    >>> len(tree)
    2
    """

    def __init__(self, root: VPTreeNode, dimension: int, leaf_capacity: int) -> None:
        self.root = root
        self.dimension = dimension
        self.leaf_capacity = leaf_capacity
        self._init_stats()

    @classmethod
    def build(
        cls,
        items: Iterable[tuple[object, Hypersphere]],
        *,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        seed: int = 0,
    ) -> "VPTree":
        """Construct the tree over *items* (``(key, Hypersphere)`` pairs)."""
        items = list(items)
        if not items:
            raise IndexStructureError("cannot build an index over an empty dataset")
        if leaf_capacity < 2:
            raise IndexStructureError(
                f"leaf_capacity must be at least 2, got {leaf_capacity}"
            )
        dimension = items[0][1].dimension
        for _, sphere in items:
            if sphere.dimension != dimension:
                raise IndexStructureError("all spheres must share one dimensionality")
        rng = np.random.default_rng(seed)
        root = cls._build_node(items, leaf_capacity, rng)
        return cls(root, dimension, leaf_capacity)

    @staticmethod
    def _node_statistics(node: VPTreeNode, items: list) -> None:
        centers = np.stack([sphere.center for _, sphere in items])
        gaps = np.linalg.norm(centers - node.vantage, axis=1)
        node.lo = float(gaps.min())
        node.hi = float(gaps.max())
        node.r_max = max(sphere.radius for _, sphere in items)
        node.count = len(items)

    @classmethod
    def _build_node(
        cls, items: list, leaf_capacity: int, rng: np.random.Generator
    ) -> VPTreeNode:
        if len(items) <= leaf_capacity:
            node = VPTreeNode(is_leaf=True)
            node.entries = items
            # The leaf vantage is the member centroid — any fixed point
            # works; the centroid keeps the [lo, hi] band tight.
            node.vantage = np.mean(
                [sphere.center for _, sphere in items], axis=0
            )
            cls._node_statistics(node, items)
            return node

        node = VPTreeNode(is_leaf=False)
        # Classic vantage selection: a random member's center.
        node.vantage = items[int(rng.integers(len(items)))][1].center.copy()
        cls._node_statistics(node, items)

        centers = np.stack([sphere.center for _, sphere in items])
        gaps = np.linalg.norm(centers - node.vantage, axis=1)
        node.split_radius = float(np.median(gaps))
        inner = [item for item, gap in zip(items, gaps) if gap <= node.split_radius]
        outer = [item for item, gap in zip(items, gaps) if gap > node.split_radius]
        if not inner or not outer:
            # Duplicate-heavy data: the median cannot separate; fall back
            # to an arbitrary balanced split to guarantee termination.
            half = len(items) // 2
            inner, outer = items[:half], items[half:]
        node.children = [
            cls._build_node(inner, leaf_capacity, rng),
            cls._build_node(outer, leaf_capacity, rng),
        ]
        return node

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.root.count

    def __iter__(self) -> Iterator[tuple[object, Hypersphere]]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)

    @property
    def height(self) -> int:
        """Length of the longest root-to-leaf path."""
        def depth(node: VPTreeNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(depth(child) for child in node.children)

        return depth(self.root)

    def node_count(self) -> int:
        """Total number of nodes."""
        def count(node: VPTreeNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + sum(count(child) for child in node.children)

        return count(self.root)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, query: Hypersphere) -> list[tuple[object, Hypersphere]]:
        """All entries whose hypersphere intersects *query*."""
        found: list[tuple[object, Hypersphere]] = []
        nodes_visited = entries_scanned = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.min_dist(query) > 0.0:
                continue
            nodes_visited += 1
            if node.is_leaf:
                entries_scanned += len(node.entries)
                found.extend(
                    (key, sphere)
                    for key, sphere in node.entries
                    if sphere.overlaps(query)
                )
            else:
                stack.extend(node.children)
        self.record_query(
            node_accesses=nodes_visited, entries_scanned=entries_scanned
        )
        return found

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`IndexStructureError` on any violated invariant."""
        def check(node: VPTreeNode) -> int:
            if node.vantage is None:
                raise IndexStructureError("node without a vantage point")
            if node.lo > node.hi + 1e-12:
                raise IndexStructureError("distance band inverted")
            if node.is_leaf:
                if not node.entries:
                    raise IndexStructureError("empty leaf")
                for _, sphere in node.entries:
                    gap = float(np.linalg.norm(sphere.center - node.vantage))
                    if not (node.lo - 1e-9 <= gap <= node.hi + 1e-9):
                        raise IndexStructureError("member outside the distance band")
                    if sphere.radius > node.r_max + 1e-12:
                        raise IndexStructureError("member radius above r_max")
                if node.count != len(node.entries):
                    raise IndexStructureError("leaf count mismatch")
                return node.count
            if len(node.children) != 2:
                raise IndexStructureError("inner node must have two children")
            total = sum(check(child) for child in node.children)
            if node.count != total:
                raise IndexStructureError("inner count mismatch")
            # Every descendant must respect this node's own band too.
            for key, sphere in self._iter_subtree(node):
                gap = float(np.linalg.norm(sphere.center - node.vantage))
                if not (node.lo - 1e-9 <= gap <= node.hi + 1e-9):
                    raise IndexStructureError("descendant outside the distance band")
            return total

        check(self.root)

    def _iter_subtree(
        self, node: VPTreeNode
    ) -> Iterator[tuple[object, Hypersphere]]:
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                yield from current.entries
            else:
                stack.extend(current.children)
