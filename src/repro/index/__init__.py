"""Index substrate: the SS-tree used by the paper's kNN experiments.

The paper indexes its datasets with an SS-tree (White & Jain, ICDE
1996), a height-balanced tree whose directory entries are bounding
*spheres* rather than rectangles — a good fit when the data objects are
hyperspheres themselves.

- :class:`~repro.index.sstree.SSTree` — insertion-built or bulk-loaded
  SS-tree with covering-sphere directory nodes.
- :class:`~repro.index.vptree.VPTree` — a vantage-point tree (related
  work, Section 5.1) exposing the same node interface, so every query
  algorithm runs on either index (extension).
- :class:`~repro.index.mtree.MTree` — the classic dynamically balanced
  metric tree (related work, Section 5.1), same interface (extension).
- :class:`~repro.index.linear.LinearIndex` — a flat scan with the same
  traversal interface, used as the exact baseline.
"""

from repro.index.linear import LinearIndex
from repro.index.mtree import MTree, MTreeNode
from repro.index.sstree import SSTree, SSTreeNode
from repro.index.vptree import VPTree, VPTreeNode

__all__ = [
    "SSTree",
    "SSTreeNode",
    "VPTree",
    "VPTreeNode",
    "MTree",
    "MTreeNode",
    "LinearIndex",
]
