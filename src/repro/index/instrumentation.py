"""A uniform access-statistics surface shared by every index.

The paper's kNN evaluation (Section 7.2) is a story about *node
accesses*: the adapted tree algorithms win or lose by how much of the
directory a query touches.  Every index therefore mixes in
:class:`IndexStatsMixin`, which accumulates per-instance tallies —

- ``node_accesses`` — directory/leaf nodes visited by queries (a flat
  :class:`~repro.index.linear.LinearIndex` counts each full scan as one
  node access: the whole structure is one "node");
- ``entries_scanned`` — stored entries actually examined;
- ``queries`` — traversals recorded.

The mixin also forwards every recording into the process-wide
:mod:`repro.obs` registry (``index.*`` counters) when observation is
enabled, so CLI profiling sees index behaviour without holding a
reference to the index object.

Indexes call :meth:`IndexStatsMixin.record_query` at the end of their
own traversals (``range_query``) and :func:`repro.queries.knn.knn_query`
calls it with the traversal tallies it already keeps, so the hot loops
never pay per-node bookkeeping beyond what they already did.
"""

from __future__ import annotations

from repro import obs
from repro.obs import names

__all__ = ["IndexStatsMixin"]


class IndexStatsMixin:
    """Per-instance query statistics with a uniform ``stats()`` dict."""

    _node_accesses: int = 0
    _entries_scanned: int = 0
    _queries: int = 0

    def _init_stats(self) -> None:
        self._node_accesses = 0
        self._entries_scanned = 0
        self._queries = 0

    @property
    def node_accesses(self) -> int:
        """Total nodes visited by queries since the last reset."""
        return self._node_accesses

    @property
    def entries_scanned(self) -> int:
        """Total stored entries examined by queries since the last reset."""
        return self._entries_scanned

    def record_scan(
        self, *, node_accesses: int = 0, entries_scanned: int = 0
    ) -> None:
        """Tally accesses without counting a query (helper scans)."""
        self._node_accesses += node_accesses
        self._entries_scanned += entries_scanned
        if obs.ENABLED:
            obs.incr(names.INDEX_NODE_ACCESSES, node_accesses)
            obs.incr(names.INDEX_ENTRIES_SCANNED, entries_scanned)

    def record_query(
        self, *, node_accesses: int = 0, entries_scanned: int = 0
    ) -> None:
        """Tally one traversal (and mirror it into :mod:`repro.obs`)."""
        self._queries += 1
        if obs.ENABLED:
            obs.incr(names.INDEX_QUERIES)
        self.record_scan(
            node_accesses=node_accesses, entries_scanned=entries_scanned
        )

    def reset_stats(self) -> None:
        """Zero the tallies (structure statistics are unaffected)."""
        self._init_stats()

    def stats(self) -> dict:
        """Structure and access statistics as one plain dict.

        Uniform across all four indexes: ``size``, ``height``,
        ``node_count``, ``queries``, ``node_accesses``,
        ``entries_scanned``.
        """
        return {
            "size": len(self),  # type: ignore[arg-type]
            "height": self.height,  # type: ignore[attr-defined]
            "node_count": self.node_count(),  # type: ignore[attr-defined]
            "queries": self._queries,
            "node_accesses": self._node_accesses,
            "entries_scanned": self._entries_scanned,
        }
