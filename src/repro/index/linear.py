"""A flat linear-scan "index" used as the exact baseline.

The paper compares index-accelerated kNN algorithms against each other;
this reproduction additionally needs a trivially correct reference to
compute the *precision* of each algorithm.  :class:`LinearIndex` stores
the dataset as dense arrays so the reference answer (Definition 2 of
the paper) can be computed with vectorised NumPy in one pass.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.exceptions import IndexStructureError
from repro.geometry.hypersphere import Hypersphere
from repro.index.instrumentation import IndexStatsMixin

__all__ = ["LinearIndex"]


class LinearIndex(IndexStatsMixin):
    """Dense storage of keyed hyperspheres with vectorised distance bounds."""

    def __init__(self, items: Iterable[tuple[object, Hypersphere]]) -> None:
        items = list(items)
        if not items:
            raise IndexStructureError("cannot build an index over an empty dataset")
        self.keys = [key for key, _ in items]
        self.spheres = [sphere for _, sphere in items]
        dimension = self.spheres[0].dimension
        for sphere in self.spheres:
            if sphere.dimension != dimension:
                raise IndexStructureError("all spheres must share one dimensionality")
        self.dimension = dimension
        self.centers = np.stack([sphere.center for sphere in self.spheres])
        self.radii = np.array([sphere.radius for sphere in self.spheres])
        self._init_stats()

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self) -> Iterator[tuple[object, Hypersphere]]:
        yield from zip(self.keys, self.spheres)

    @property
    def height(self) -> int:
        """A flat scan is one level deep by definition."""
        return 1

    def node_count(self) -> int:
        """The whole structure is a single "node"."""
        return 1

    def max_dists(self, query: Hypersphere) -> np.ndarray:
        """``MaxDist(S_i, query)`` for every stored hypersphere."""
        gaps = np.linalg.norm(self.centers - query.center, axis=1)
        return gaps + self.radii + query.radius

    def min_dists(self, query: Hypersphere) -> np.ndarray:
        """``MinDist(S_i, query)`` for every stored hypersphere."""
        gaps = np.linalg.norm(self.centers - query.center, axis=1)
        return np.maximum(gaps - self.radii - query.radius, 0.0)
