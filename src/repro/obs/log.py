"""Logging wiring for the reproduction (``repro.*`` logger hierarchy).

The library itself only ever *emits* records through :func:`get_logger`
and never configures handlers (the standard library-friendly policy), so
embedding applications keep full control.  The CLI opts into console
output with :func:`configure_logging`, which ``--verbose`` switches to
DEBUG level.
"""

from __future__ import annotations

import logging
from typing import TextIO

__all__ = ["LOGGER_NAME", "get_logger", "configure_logging"]

LOGGER_NAME = "repro"

# Library policy: emit freely, stay silent unless the app adds handlers.
logging.getLogger(LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def configure_logging(
    *, verbose: bool = False, stream: "TextIO | None" = None
) -> logging.Logger:
    """Attach one console handler to the ``repro`` logger (idempotent).

    Repeated calls reconfigure the existing handler instead of stacking
    duplicates, so tests and long-lived sessions can toggle verbosity.
    """
    logger = get_logger()
    level = logging.DEBUG if verbose else logging.INFO
    handler = next(
        (
            h
            for h in logger.handlers
            if isinstance(h, logging.StreamHandler)
            and not isinstance(h, logging.NullHandler)
        ),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    logger.setLevel(level)
    return logger
