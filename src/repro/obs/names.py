"""The central registry of instrumentation names.

Every counter, histogram and trace-span key used by an instrumented
call site lives here, either as an ALL_CAPS constant (static names) or
as a small helper that formats one *family* of names (dynamic names
such as per-stage or per-seam counters).  Two things depend on that:

- the domlint ``metric-name`` rule (:mod:`repro.analysis`) validates
  every metric key it can see at lint time against :func:`is_known`,
  so a typo'd key (``"hyperbola.clls"``) is a lint error instead of a
  silently empty counter;
- :func:`all_static_names` / :data:`PATTERNS` document the complete
  instrumentation surface for dashboards and tests.

Call sites reference this module instead of spelling keys inline::

    from repro.obs import names

    obs.incr(names.HYPERBOLA_CALLS)
    obs.incr(names.verified_stage(stage))

Dynamic families use one placeholder segment per varying component
(``verified.stage.*``); :func:`is_known` matches a dotted name against
the static set first and the patterns second.

>>> is_known("hyperbola.calls")
True
>>> is_known("hyperbola.clls")
False
>>> is_known(verified_stage("companion"))
True
"""

from __future__ import annotations

__all__ = [
    "PATTERNS",
    "all_static_names",
    "is_known",
    # families
    "analysis_rule",
    "batch_calls",
    "bench_span",
    "breaker_transition",
    "dominance_span",
    "experiment_span",
    "fault",
    "knn_span",
    "tenant_outcome",
    "verified_fallback",
    "verified_fallback_failed",
    "verified_stage",
    "verified_stage_failed",
    "verified_stage_undecided",
]

# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
# repro.core.hyperbola — scalar kernel call/fast-path breakdown.
HYPERBOLA_CALLS = "hyperbola.calls"
HYPERBOLA_FAST_PATH_OVERLAP = "hyperbola.fast_path.overlap"
HYPERBOLA_FAST_PATH_CENTER_OUTSIDE = "hyperbola.fast_path.center_outside"
HYPERBOLA_FAST_PATH_POINT_QUERY = "hyperbola.fast_path.point_query"
HYPERBOLA_VERTEX_1D = "hyperbola.vertex_1d"
HYPERBOLA_BISECTOR = "hyperbola.bisector"
HYPERBOLA_QUARTIC = "hyperbola.quartic"
HYPERBOLA_STATIONARY_CANDIDATES = "hyperbola.stationary_candidates"

# repro.core.cascade — filter-and-refine outcome breakdown.
CASCADE_CALLS = "cascade.calls"
CASCADE_OVERLAP_REJECT = "cascade.overlap_reject"
CASCADE_FAST_ACCEPT = "cascade.fast_accept"
CASCADE_FAST_REJECT = "cascade.fast_reject"
CASCADE_FALL_THROUGH = "cascade.fall_through"

# repro.core.batch — vectorised kernel row accounting.
BATCH_CALLS = "batch.calls"
BATCH_HYPERBOLA_ROWS = "batch.hyperbola.rows"
BATCH_HYPERBOLA_OVERLAP_ROWS = "batch.hyperbola.overlap_rows"
BATCH_HYPERBOLA_CENTER_OUTSIDE_ROWS = "batch.hyperbola.center_outside_rows"
BATCH_HYPERBOLA_POINT_QUERY_ROWS = "batch.hyperbola.point_query_rows"
BATCH_HYPERBOLA_BISECTOR_ROWS = "batch.hyperbola.bisector_rows"
BATCH_HYPERBOLA_QUARTIC_ROWS = "batch.hyperbola.quartic_rows"

# repro.geometry.quartic — solver selection.
QUARTIC_COMPANION_SOLVES = "quartic.companion_solves"
QUARTIC_CLOSED_FORM_SOLVES = "quartic.closed_form_solves"
QUARTIC_CLOSED_FORM_FALLBACKS = "quartic.closed_form_fallbacks"
QUARTIC_BATCH_SOLVES = "quartic.batch_solves"

# repro.index.instrumentation — uniform index access statistics.
INDEX_NODE_ACCESSES = "index.node_accesses"
INDEX_ENTRIES_SCANNED = "index.entries_scanned"
INDEX_QUERIES = "index.queries"

# repro.queries.knn — traversal statistics.
KNN_QUERIES = "knn.queries"
KNN_NODE_ACCESSES = "knn.node_accesses"
KNN_ENTRIES_CONSIDERED = "knn.entries_considered"
KNN_DOMINANCE_CHECKS = "knn.dominance_checks"
KNN_PRUNED_CASE3 = "knn.pruned_case3"
KNN_UNCERTAIN_DECISIONS = "knn.uncertain_decisions"
KNN_REFERENCE_QUERIES = "knn.reference_queries"
KNN_REFERENCE_DOMINANCE_CHECKS = "knn.reference_dominance_checks"

# repro.queries.rknn — reverse-NN statistics.
RNN_QUERIES = "rnn.queries"
RNN_UNCERTAIN_DECISIONS = "rnn.uncertain_decisions"

# repro.robust — escalation-ladder and fallback outcomes.
VERIFIED_UNCERTAIN = "verified.uncertain"
VERIFIED_FALLBACK_NONE = "verified.fallback.none"

# repro.resilience — budget exhaustion and degradation outcomes.
RESILIENCE_DEADLINE_EXCEEDED = "resilience.deadline_exceeded"
RESILIENCE_CANDIDATES_EXHAUSTED = "resilience.candidates_exhausted"
RESILIENCE_ESCALATIONS_DENIED = "resilience.escalations_denied"
RESILIENCE_CLOCK_FAULTS = "resilience.clock_faults"
RESILIENCE_DEGRADED_QUERIES = "resilience.degraded_queries"
RESILIENCE_PARTIAL_QUERIES = "resilience.partial_queries"
RESILIENCE_ABSORBED_FAULTS = "resilience.absorbed_faults"

# repro.bench — standing benchmark observatory.
BENCH_TOPICS = "bench.topics"
BENCH_POINTS = "bench.points"

# repro.queries.explain — per-query EXPLAIN captures.
EXPLAIN_QUERIES = "explain.queries"

# repro.obs.export — metric exporters.
EXPORT_PROMETHEUS_RENDERS = "export.prometheus_renders"
EXPORT_EVENTS_LOGGED = "export.events_logged"

# repro.serve — the fault-tolerant multi-tenant query service.
SERVE_REQUESTS = "serve.requests"
SERVE_RESPONSES_OK = "serve.responses.ok"
SERVE_RESPONSES_DEGRADED = "serve.responses.degraded"
SERVE_RESPONSES_SHED = "serve.responses.shed"
SERVE_RESPONSES_REJECTED = "serve.responses.rejected"
SERVE_RESPONSES_UNAVAILABLE = "serve.responses.unavailable"
SERVE_ADMISSION_ADMITTED = "serve.admission.admitted"
SERVE_ADMISSION_QUEUE_FULL = "serve.admission.queue_full"
SERVE_ADMISSION_RATE_LIMITED = "serve.admission.rate_limited"
SERVE_ADMISSION_CLOCK_FAULTS = "serve.admission.clock_faults"
SERVE_RETRIES = "serve.retries"
SERVE_RETRY_RESCUES = "serve.retry_rescues"
SERVE_HEDGES = "serve.hedges"
SERVE_HANDLER_FAULTS = "serve.handler_faults"
SERVE_PROTOCOL_ERRORS = "serve.protocol_errors"
SERVE_QUARANTINED_INDEXES = "serve.quarantined_indexes"
SERVE_BREAKER_SHORT_CIRCUITS = "serve.breaker_short_circuits"

# repro.stream.wal — write-ahead-log durability outcomes.
WAL_APPENDS = "wal.appends"
WAL_FSYNCS = "wal.fsyncs"
WAL_ROTATIONS = "wal.rotations"
WAL_REPLAYED_RECORDS = "wal.replayed_records"
WAL_TRUNCATED_FRAMES = "wal.truncated_frames"
WAL_CORRUPTIONS = "wal.corruptions"
WAL_TRUNCATIONS = "wal.truncations"

# repro.stream — the durable mutation pipeline over immutable snapshots.
STREAM_INSERTS = "stream.inserts"
STREAM_DELETES = "stream.deletes"
STREAM_MUTATIONS_ACKED = "stream.mutations_acked"
STREAM_REPLAYS = "stream.replays"
STREAM_MERGED_QUERIES = "stream.merged_queries"
STREAM_TOMBSTONE_HITS = "stream.tombstone_hits"

# repro.stream.compact — checkpoint/compaction cycle outcomes.
COMPACT_RUNS = "compact.runs"
COMPACT_FAILURES = "compact.failures"
COMPACT_FOLDED_ENTRIES = "compact.folded_entries"
COMPACT_DROPPED_TOMBSTONES = "compact.dropped_tombstones"

# repro.serve — the streaming-mutation endpoint.
SERVE_MUTATIONS = "serve.mutations"
SERVE_MUTATIONS_ACKED = "serve.mutations.acked"
SERVE_MUTATIONS_REJECTED = "serve.mutations.rejected"

# repro.serve.supervisor — the multi-process worker pool.
SERVE_WORKERS_SPAWNED = "serve.workers.spawned"
SERVE_WORKERS_EXITS = "serve.workers.exits"
SERVE_WORKERS_RESPAWNS = "serve.workers.respawns"
SERVE_WORKERS_SPAWN_FAILURES = "serve.workers.spawn_failures"
SERVE_WORKERS_HEARTBEAT_MISSES = "serve.workers.heartbeat_misses"
SERVE_WORKERS_KILLS = "serve.workers.kills"
SERVE_WORKERS_FAILOVERS = "serve.workers.failovers"
SERVE_WORKERS_FLAP_CAPPED = "serve.workers.flap_capped"
SERVE_WORKERS_QUORUM_LOST = "serve.workers.quorum_lost"
SERVE_WORKERS_DRAINED = "serve.workers.drained"
SERVE_WORKERS_DRAIN_TIMEOUTS = "serve.workers.drain_timeouts"
SERVE_WORKERS_MUTATIONS_REACKED = "serve.workers.mutations_reacked"
SERVE_WORKERS_MUTATIONS_RESENT = "serve.workers.mutations_resent"

# repro.index.snapshot — crash-safe persistence outcomes.
SNAPSHOT_SAVES = "snapshot.saves"
SNAPSHOT_LOADS = "snapshot.loads"
SNAPSHOT_VERIFIES = "snapshot.verifies"
SNAPSHOT_CORRUPTIONS = "snapshot.corruptions"
SNAPSHOT_PAGES_WRITTEN = "snapshot.pages_written"
SNAPSHOT_PAGES_READ = "snapshot.pages_read"

# repro.analysis — domlint engine runs (lint-as-telemetry).
ANALYSIS_RUNS = "analysis.runs"
ANALYSIS_FILES = "analysis.files"
ANALYSIS_RULE_EVALUATIONS = "analysis.rule_evaluations"
ANALYSIS_FINDINGS = "analysis.findings"
ANALYSIS_SUPPRESSED = "analysis.suppressed"
ANALYSIS_BASELINED = "analysis.baselined"
ANALYSIS_PARSE_ERRORS = "analysis.parse_errors"

# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
QUARTIC_BATCH_ROWS = "quartic.batch_rows"
BATCH_WORKLOAD_ROWS = "batch.workload_rows"
KNN_ANSWER_SIZE = "knn.answer_size"
SNAPSHOT_BYTES = "snapshot.bytes"
SERVE_LATENCY_S = "serve.latency_s"
SERVE_QUEUE_DEPTH = "serve.queue_depth"
WAL_RECORD_BYTES = "wal.record_bytes"
STREAM_OVERLAY_SIZE = "stream.overlay_size"
STREAM_MUTATE_LATENCY_S = "stream.mutate_latency_s"

# ----------------------------------------------------------------------
# Trace spans (timers)
# ----------------------------------------------------------------------
STATS_LINT = "stats.lint"
STATS_SCALAR = "stats.scalar"
STATS_BATCH = "stats.batch"
STATS_KNN = "stats.knn"
STATS_VERIFIED = "stats.verified"
STATS_FAULTS = "stats.faults"
DOMINANCE_WORKLOAD = "dominance.workload"
KNN_BUILD_INDEX = "knn.build_index"
KNN_REFERENCE = "knn.reference"
SNAPSHOT_SAVE_SPAN = "snapshot.save"
SNAPSHOT_LOAD_SPAN = "snapshot.load"
SNAPSHOT_VERIFY_SPAN = "snapshot.verify"
WAL_REPLAY_SPAN = "wal.replay"
STREAM_OPEN_SPAN = "stream.open"
COMPACT_RUN_SPAN = "compact.run"

#: Dynamic name families: one ``*`` per varying dotted segment.
PATTERNS: "tuple[str, ...]" = (
    "analysis.rule.*",  # per-rule finding counters (rule name segment)
    "batch.calls.*",  # per-criterion batch evaluations
    "bench.topic.*",  # per-topic benchmark spans
    "dominance.*",  # per-criterion dominance-experiment spans
    "knn.*.*",  # per-(strategy, criterion) kNN-experiment spans
    "verified.stage.*",  # ladder stage attempts
    "verified.stage.*.undecided",
    "verified.stage.*.failed",
    "verified.fallback.*",  # conservative fallback outcomes
    "verified.fallback.*.failed",
    "faults.*.*",  # injected-fault activations per (seam, mode)
    "serve.breaker.*.*",  # breaker transitions per (index, state)
    "serve.tenant.*.*",  # per-(tenant-class, outcome) request counters
)


def analysis_rule(rule: str) -> str:
    """Per-rule lint finding counter (``analysis.rule.<rule-name>``)."""
    return f"analysis.rule.{rule}"


def batch_calls(criterion: str) -> str:
    """Per-criterion batch-evaluation counter (``batch.calls.<name>``)."""
    return f"batch.calls.{criterion}"


def bench_span(topic: str) -> str:
    """Per-topic benchmark-run span (``bench.topic.<topic>``)."""
    return f"bench.topic.{topic}"


def verified_stage(stage: str) -> str:
    """Ladder-stage attempt counter (``verified.stage.<stage>``)."""
    return f"verified.stage.{stage}"


def verified_stage_undecided(stage: str) -> str:
    """Stage came back with a margin inside its own error bound."""
    return f"verified.stage.{stage}.undecided"


def verified_stage_failed(stage: str) -> str:
    """Stage raised one of the recognised numeric failures."""
    return f"verified.stage.{stage}.failed"


def verified_fallback(criterion: str) -> str:
    """Conservative fallback answered (``verified.fallback.<name>``)."""
    return f"verified.fallback.{criterion}"


def verified_fallback_failed(criterion: str) -> str:
    """Conservative fallback itself failed (exception swallowed)."""
    return f"verified.fallback.{criterion}.failed"


def fault(seam: str, mode: str) -> str:
    """Injected-fault activation counter (``faults.<seam>.<mode>``)."""
    return f"faults.{seam}.{mode}"


def breaker_transition(index: str, state: str) -> str:
    """Circuit-breaker transition counter (``serve.breaker.<index>.<state>``)."""
    return f"serve.breaker.{index}.{state}"


def tenant_outcome(tenant_class: str, outcome: str) -> str:
    """Per-tenant-class outcome counter (``serve.tenant.<class>.<outcome>``)."""
    return f"serve.tenant.{tenant_class}.{outcome}"


def dominance_span(criterion: str) -> str:
    """Dominance-experiment per-criterion span (``dominance.<name>``)."""
    return f"dominance.{criterion}"


def knn_span(strategy: str, criterion: str) -> str:
    """kNN-experiment span (``knn.<strategy>.<criterion>``)."""
    return f"knn.{strategy}.{criterion}"


def experiment_span(experiment: str) -> str:
    """Top-level span for one experiment run (the experiment id itself).

    Experiment ids are registered at runtime by
    :mod:`repro.experiments.runner`; routing them through this helper
    keeps the call site visibly inside the name registry without this
    module importing the experiment table (which would be an import
    cycle: experiments use :mod:`repro.obs`).
    """
    return experiment


def all_static_names() -> "frozenset[str]":
    """Every registered static (non-family) instrumentation name."""
    return _STATIC_NAMES


def _segments_match(name: "tuple[str, ...]", pattern: "tuple[str, ...]") -> bool:
    return len(name) == len(pattern) and all(
        p == "*" or p == n for n, p in zip(name, pattern)
    )


def is_known(name: str) -> bool:
    """Whether *name* is a registered static name or matches a family.

    A lint-time probe may hand in a *pattern* itself (an f-string whose
    formatted fields were replaced by ``*``); those match when they
    align with a registered family segment-for-segment.
    """
    if name in _STATIC_NAMES:
        return True
    parts = tuple(name.split("."))
    return any(_segments_match(parts, tuple(p.split("."))) for p in _PATTERN_PARTS)


_STATIC_NAMES: "frozenset[str]" = frozenset(
    value
    for key, value in globals().items()
    if key.isupper() and key != "PATTERNS" and isinstance(value, str)
)
_PATTERN_PARTS: "tuple[str, ...]" = PATTERNS
