"""Zero-dependency instrumentation: counters, timers, histograms, spans.

The paper's evaluation (Sections 7.1-7.2) is entirely about *where time
goes* — per-criterion decision cost, fast-path effectiveness, SS-tree
node accesses — so the reproduction needs a way to count hot-path events
without perturbing the timings it reports.  This module provides:

- a metrics registry holding :class:`Counter`, :class:`Timer` and
  :class:`Histogram` instruments, created on first use by name;
- a module-level :data:`ENABLED` flag so instrumented call sites cost a
  single attribute check + branch when observation is off (verified by
  ``benchmarks/test_obs_overhead.py``);
- :func:`trace` — a context manager / decorator recording nested span
  timings (span names join into dotted paths, e.g. ``fig9.dataset``);
- :func:`collect` / :func:`reset` — snapshot everything to a plain dict
  / clear it;
- :func:`scope` — push a fresh registry onto a :mod:`contextvars`
  variable, isolating concurrent tasks (and tests) from each other.

Instrumented call sites follow one idiom::

    from repro import obs
    ...
    if obs.ENABLED:
        obs.incr("hyperbola.fast_path.overlap")

The registry is *contextvar-scoped*: by default every context shares the
root registry, but :func:`scope` gives the current context (thread /
asyncio task / ``contextvars.copy_context()`` run) a private one, so
parallel experiment runners never mix their counts.

Logging lives in the :mod:`repro.obs.log` submodule.
"""

from __future__ import annotations

import bisect
import functools
import math
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator

__all__ = [
    "ENABLED",
    "Counter",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "enable",
    "disable",
    "enabled",
    "enabled_scope",
    "incr",
    "observe",
    "add_time",
    "trace",
    "collect",
    "counter_value",
    "reset",
    "scope",
    "current_registry",
    "diff",
]

# Fast-path guard: call sites check this before doing any metrics work.
# Mutate only through enable()/disable() so the flag stays a plain module
# attribute (one LOAD_ATTR + branch when disabled).
ENABLED = False


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Timer:
    """Accumulated wall-clock seconds over named spans."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }


class _P2Quantile:
    """One streaming quantile via the P² algorithm (Jain & Chlamtac).

    Five markers track the running estimate in O(1) memory, so tail
    latency (p95/p99) is reportable without keeping every sample.  The
    first five observations are kept sorted and answered exactly; from
    the sixth on, marker heights are adjusted by the classic
    parabolic-prediction rule (falling back to linear interpolation when
    the parabola would cross a neighbouring marker).
    """

    __slots__ = ("p", "_q", "_n", "_target", "_rate")

    def __init__(self, p: float) -> None:
        self.p = p
        self._q: "list[float]" = []  # marker heights (raw samples until primed)
        self._n = [0, 1, 2, 3, 4]  # marker positions (0-based)
        self._target = [0.0, 2.0 * p, 4.0 * p, 2.0 + 2.0 * p, 4.0]
        self._rate = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    def observe(self, value: float) -> None:
        q, n = self._q, self._n
        if len(q) < 5:
            bisect.insort(q, value)
            return
        if value < q[0]:
            q[0] = value
            k = 0
        elif value >= q[4]:
            q[4] = value
            k = 3
        else:
            k = 0
            while value >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1
        target = self._target
        for i, rate in enumerate(self._rate):
            target[i] += rate
        for i in (1, 2, 3):
            drift = target[i] - n[i]
            if (drift >= 1.0 and n[i + 1] - n[i] > 1) or (
                drift <= -1.0 and n[i - 1] - n[i] < -1
            ):
                step = 1 if drift >= 1.0 else -1
                height = self._parabolic(i, step)
                if not q[i - 1] < height < q[i + 1]:
                    height = self._linear(i, step)
                q[i] = height
                n[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        q, n = self._q, self._n
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        q, n = self._q, self._n
        return q[i] + step * (q[i + step] - q[i]) / (n[i + step] - n[i])

    def value(self) -> float:
        q = self._q
        if not q:
            return 0.0
        if len(q) < 5:
            # Exact nearest-rank quantile over the few buffered samples.
            rank = max(int(math.ceil(self.p * len(q))) - 1, 0)
            return q[min(rank, len(q) - 1)]
        return q[2]


class Histogram:
    """Streaming summary (count/sum/mean/std/min/max + p50/p95/p99).

    Quantiles are P² estimates (see :class:`_P2Quantile`): exact for the
    first five observations, O(1)-memory approximations after that, so
    tail latency is reportable without retaining samples.
    """

    __slots__ = ("name", "count", "sum", "sum_sq", "min", "max", "_quantiles")

    #: The quantiles every histogram estimates, as (key, p) pairs.
    QUANTILES: "tuple[tuple[str, float], ...]" = (
        ("p50", 0.50),
        ("p95", 0.95),
        ("p99", 0.99),
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.sum_sq = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._quantiles = tuple(_P2Quantile(p) for _, p in self.QUANTILES)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.sum_sq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for estimator in self._quantiles:
            estimator.observe(value)

    def snapshot(self) -> dict:
        if not self.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "std": 0.0,
                    "min": 0.0, "max": 0.0,
                    **{key: 0.0 for key, _ in self.QUANTILES}}
        mean = self.sum / self.count
        # Population variance; clamp tiny negative round-off.
        variance = max(self.sum_sq / self.count - mean * mean, 0.0)
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": mean,
            "std": math.sqrt(variance),
            "min": self.min,
            "max": self.max,
            **{
                key: estimator.value()
                for (key, _), estimator in zip(self.QUANTILES, self._quantiles)
            },
        }


class MetricsRegistry:
    """A bag of named instruments, each created on first use."""

    __slots__ = ("counters", "timers", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.timers: dict[str, Timer] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self.timers.get(name)
        if instrument is None:
            instrument = self.timers[name] = Timer(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def collect(self) -> dict:
        """Everything recorded so far, as a plain (JSON-friendly) dict."""
        return {
            "counters": {
                name: c.snapshot() for name, c in sorted(self.counters.items())
            },
            "timers": {
                name: t.snapshot() for name, t in sorted(self.timers.items())
            },
            "histograms": {
                name: h.snapshot() for name, h in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (names re-create themselves on use)."""
        self.counters.clear()
        self.timers.clear()
        self.histograms.clear()


# The root registry is shared by every context that never called scope().
_root_registry = MetricsRegistry()
_registry_var: ContextVar["MetricsRegistry | None"] = ContextVar(
    "repro_obs_registry", default=None
)
# Dotted span path of the enclosing trace() spans in this context.
_span_var: ContextVar[tuple[str, ...]] = ContextVar("repro_obs_span", default=())


def current_registry() -> MetricsRegistry:
    """The registry of the current context (the root one by default)."""
    registry = _registry_var.get()
    return registry if registry is not None else _root_registry


def enable() -> None:
    """Turn instrumentation on (all mutators start recording)."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn instrumentation off (all mutators become no-ops)."""
    global ENABLED
    ENABLED = False


def enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return ENABLED


@contextmanager
def enabled_scope(flag: bool = True) -> Iterator[None]:
    """Temporarily set the enabled flag, restoring it on exit."""
    global ENABLED
    previous = ENABLED
    ENABLED = flag
    try:
        yield
    finally:
        ENABLED = previous


@contextmanager
def scope(registry: "MetricsRegistry | None" = None) -> Iterator[MetricsRegistry]:
    """Give the current context a private registry until exit.

    Nested scopes stack; sibling contexts (threads, copied contexts)
    keep whatever registry their own context carries.
    """
    registry = registry if registry is not None else MetricsRegistry()
    token = _registry_var.set(registry)
    try:
        yield registry
    finally:
        _registry_var.reset(token)


def incr(name: str, amount: int = 1) -> None:
    """Add *amount* to the named counter (no-op while disabled)."""
    if not ENABLED:
        return
    current_registry().counter(name).increment(amount)


def observe(name: str, value: float) -> None:
    """Record *value* into the named histogram (no-op while disabled)."""
    if not ENABLED:
        return
    current_registry().histogram(name).observe(value)


def add_time(name: str, seconds: float) -> None:
    """Record an externally measured duration into the named timer."""
    if not ENABLED:
        return
    current_registry().timer(name).observe(seconds)


class _Span:
    """One ``trace(name)`` activation: context manager and decorator."""

    __slots__ = ("name", "_token", "_path", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self._token = None

    def __enter__(self) -> "_Span":
        if not ENABLED:
            self._token = None
            return self
        path = _span_var.get() + (self.name,)
        self._token = _span_var.set(path)
        self._path = ".".join(path)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        if self._token is None:
            return False
        elapsed = time.perf_counter() - self._started
        _span_var.reset(self._token)
        self._token = None
        # Record even if ENABLED flipped off mid-span: the span was
        # opened under observation, so its timing belongs to the run.
        current_registry().timer(self._path).observe(elapsed)
        return False

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object) -> object:
            with _Span(self.name):
                return fn(*args, **kwargs)

        return wrapper


def trace(name: str) -> _Span:
    """Time a span of work under *name* (nested spans join with dots).

    Usable as a context manager or a decorator::

        with obs.trace("fig9"):
            with obs.trace("dataset"):   # recorded as "fig9.dataset"
                build()

        @obs.trace("solve")
        def solve(...): ...

    While disabled the span records nothing and costs one attribute
    check on entry and exit.
    """
    return _Span(name)


def current_span_path() -> str:
    """The dotted path of the enclosing spans ('' outside any span)."""
    return ".".join(_span_var.get())


def collect() -> dict:
    """Snapshot the current context's registry to a plain dict."""
    return current_registry().collect()


def counter_value(name: str) -> int:
    """Current value of the named counter (0 if it never incremented).

    Reads do not create the instrument, so probing a counter that never
    fired leaves no trace in :func:`collect` output.
    """
    instrument = current_registry().counters.get(name)
    return instrument.value if instrument is not None else 0


def reset() -> None:
    """Clear every instrument in the current context's registry."""
    current_registry().reset()


def diff(before: dict, after: dict) -> dict:
    """The change between two :func:`collect` snapshots.

    Counters subtract; timers and histograms subtract their ``count``
    and ``total``/``sum`` fields (the min/max/mean fields are not
    meaningfully diffable and are omitted).  Instruments absent from
    *before* count from zero.  Zero-delta entries are dropped, so the
    result shows only what the in-between work touched.
    """
    out: dict = {"counters": {}, "timers": {}, "histograms": {}}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            out["counters"][name] = delta
    for kind, total_key in (("timers", "total"), ("histograms", "sum")):
        for name, snap in after.get(kind, {}).items():
            previous = before.get(kind, {}).get(name, {})
            count = snap["count"] - previous.get("count", 0)
            if count:
                out[kind][name] = {
                    "count": count,
                    total_key: snap[total_key] - previous.get(total_key, 0.0),
                }
    return out
