"""Metric exporters: Prometheus text format and a JSONL query-event log.

The instrumentation registry (:mod:`repro.obs`) collects numbers into a
plain dict; this module turns such a snapshot into artifacts an
operations stack can consume:

- :func:`to_prometheus` renders any :func:`repro.obs.collect` snapshot
  in the Prometheus text exposition format (``# TYPE``-prefixed metric
  families, sanitised names, counters as ``_total``, timers and
  histograms as summaries with ``quantile`` labels), ready to be served
  from a ``/metrics`` endpoint or pushed through a textfile collector;
- :class:`QueryEventLog` appends one structured JSON object per query
  to a line-delimited log (stats delta, guarantee tier,
  partial/complete flag, duration) — the substrate a serving front end
  exposes per tenant.  :func:`scope` activates a log for the current
  context the same way :func:`repro.obs.scope` activates a registry;
  the query layer emits into whatever log is active, at the cost of a
  single contextvar read per query when none is.

Both exporters are pure functions of their inputs (plus an append-only
file handle), keeping the zero-dependency discipline of the obs layer.
"""

from __future__ import annotations

import io
import json
import re
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import IO, Any, Iterator

from repro import obs
from repro.obs import names

__all__ = [
    "QueryEvent",
    "QueryEventLog",
    "current_event_log",
    "read_events",
    "sanitize_metric_name",
    "scope",
    "to_prometheus",
]

# ----------------------------------------------------------------------
# Prometheus text-format rendering
# ----------------------------------------------------------------------

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")

#: The stats-delta fields a query outcome may carry, in event order.
_STAT_FIELDS = (
    "nodes_visited",
    "entries_considered",
    "dominance_checks",
    "pruned_case3",
    "uncertain_decisions",
    "absorbed_faults",
    "degraded_checks",
)


def sanitize_metric_name(name: str) -> str:
    """Map a dotted obs name onto the Prometheus metric-name charset.

    Dots (and anything else outside ``[a-zA-Z0-9_:]``) become
    underscores; a leading digit is prefixed with an underscore.

    >>> sanitize_metric_name("hyperbola.fast_path.overlap")
    'hyperbola_fast_path_overlap'
    """
    cleaned = _INVALID_CHARS.sub("_", name)
    if _INVALID_FIRST.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    """Float formatting per the exposition format (repr keeps precision)."""
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def to_prometheus(snapshot: dict, *, prefix: str = "repro") -> str:
    """Render a :func:`repro.obs.collect` snapshot as Prometheus text.

    Every obs instrument becomes one well-formed metric family:

    - counters → ``<prefix>_<name>_total`` with ``# TYPE ... counter``;
    - timers → ``<prefix>_<name>_seconds`` summaries (``_count`` and
      ``_sum`` samples);
    - histograms → ``<prefix>_<name>`` summaries with ``quantile``
      labels for the streaming p50/p95/p99 estimates plus ``_count``
      and ``_sum``.

    Families are emitted sorted by name, each preceded by its ``# HELP``
    and ``# TYPE`` lines, matching ``promtool check metrics``
    conventions.  The output ends with a trailing newline (or is empty
    for an empty snapshot).
    """
    out = io.StringIO()
    for name, value in sorted(snapshot.get("counters", {}).items()):
        family = f"{prefix}_{sanitize_metric_name(name)}_total"
        out.write(f"# HELP {family} obs counter {name}\n")
        out.write(f"# TYPE {family} counter\n")
        out.write(f"{family} {_format_value(value)}\n")
    for name, snap in sorted(snapshot.get("timers", {}).items()):
        family = f"{prefix}_{sanitize_metric_name(name)}_seconds"
        out.write(f"# HELP {family} obs timer {name}\n")
        out.write(f"# TYPE {family} summary\n")
        out.write(f"{family}_count {_format_value(snap['count'])}\n")
        out.write(f"{family}_sum {_format_value(snap['total'])}\n")
    for name, snap in sorted(snapshot.get("histograms", {}).items()):
        family = f"{prefix}_{sanitize_metric_name(name)}"
        out.write(f"# HELP {family} obs histogram {name}\n")
        out.write(f"# TYPE {family} summary\n")
        for key, p in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            if key in snap:
                out.write(
                    f'{family}{{quantile="{p}"}} {_format_value(snap[key])}\n'
                )
        out.write(f"{family}_count {_format_value(snap['count'])}\n")
        out.write(f"{family}_sum {_format_value(snap['sum'])}\n")
    if obs.ENABLED:
        obs.incr(names.EXPORT_PROMETHEUS_RENDERS)
    return out.getvalue()


# ----------------------------------------------------------------------
# JSONL query-event log
# ----------------------------------------------------------------------


@dataclass
class QueryEvent:
    """One structured record of one query execution."""

    #: Query kind: ``"knn"``, ``"rknn"``, ``"dominating"``, ...
    kind: str
    #: Wall-clock duration of the query, in seconds.
    duration_s: float
    #: Number of keys/scores in the returned answer.
    answer_size: int
    #: Guarantee tier actually achieved (``"optimal"``/``"conservative"``).
    tier: str = "optimal"
    #: Whether the query ran to completion (False → partial answer).
    complete: bool = True
    #: Per-query stats delta (nodes visited, entries considered, ...).
    stats: "dict[str, int]" = field(default_factory=dict)
    #: Tenant class the request ran under (serving only; None elsewhere).
    tenant: "str | None" = None
    #: HTTP status the serving layer answered with (0 outside serving).
    status: int = 0

    def to_dict(self) -> "dict[str, Any]":
        payload: "dict[str, Any]" = {
            "kind": self.kind,
            "duration_s": self.duration_s,
            "answer_size": self.answer_size,
            "tier": self.tier,
            "complete": self.complete,
            "stats": dict(self.stats),
        }
        # Serving-only fields stay absent outside the serving layer so
        # pre-existing logs and goldens round-trip unchanged.
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        if self.status:
            payload["status"] = self.status
        return payload

    @classmethod
    def from_dict(cls, payload: "dict[str, Any]") -> "QueryEvent":
        tenant = payload.get("tenant")
        return cls(
            kind=str(payload["kind"]),
            duration_s=float(payload["duration_s"]),
            answer_size=int(payload["answer_size"]),
            tier=str(payload.get("tier", "optimal")),
            complete=bool(payload.get("complete", True)),
            stats={
                key: int(value)
                for key, value in payload.get("stats", {}).items()
            },
            tenant=None if tenant is None else str(tenant),
            status=int(payload.get("status", 0)),
        )

    @classmethod
    def from_outcome(
        cls, kind: str, outcome: Any, duration_s: float
    ) -> "QueryEvent":
        """Build an event from a query outcome, duck-typed.

        Works for :class:`~repro.queries.knn.KNNResult`, plain lists of
        keys/scores, and :class:`~repro.resilience.PartialResult`
        envelopes around either (attribute forwarding surfaces the
        wrapped stats; the report supplies tier/completeness).
        """
        stats: "dict[str, int]" = {}
        for field_name in _STAT_FIELDS:
            value = getattr(outcome, field_name, None)
            if isinstance(value, int) and value:
                stats[field_name] = value
        tier = "optimal"
        complete = True
        report = getattr(outcome, "report", None)
        if report is not None:
            tier = report.tier.value
            complete = bool(report.complete)
        try:
            answer_size = len(outcome)
        except TypeError:
            answer_size = 0
        return cls(
            kind=kind,
            duration_s=duration_s,
            answer_size=answer_size,
            tier=tier,
            complete=complete,
            stats=stats,
        )


class QueryEventLog:
    """An append-only JSONL sink of :class:`QueryEvent` records.

    One JSON object per line, written eagerly so a crash loses at most
    the event being written.  Emission is serialised by a lock, so one
    log can be shared by the serving front end's executor threads
    without interleaving half-lines.  Usable as a context manager::

        with QueryEventLog.open("queries.jsonl") as log, export.scope(log):
            knn_query(tree, q, 5)     # emits one event per query
    """

    __slots__ = ("_sink", "_owns_sink", "_lock", "events_written")

    def __init__(self, sink: "IO[str]", *, owns_sink: bool = False) -> None:
        self._sink = sink
        self._owns_sink = owns_sink
        self._lock = threading.Lock()
        self.events_written = 0

    @classmethod
    def open(cls, path: str) -> "QueryEventLog":
        """Open (append) a log file at *path*."""
        return cls(open(path, "a", encoding="utf-8"), owns_sink=True)

    def emit(self, event: QueryEvent) -> None:
        """Append one event (one line) and flush."""
        with self._lock:
            self._sink.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            self._sink.flush()
            self.events_written += 1
        if obs.ENABLED:
            obs.incr(names.EXPORT_EVENTS_LOGGED)

    def emit_outcome(
        self,
        kind: str,
        outcome: Any,
        duration_s: float,
        *,
        tenant: "str | None" = None,
        status: int = 0,
    ) -> None:
        """Build an event from a query outcome and append it."""
        event = QueryEvent.from_outcome(kind, outcome, duration_s)
        if tenant is not None:
            event.tenant = tenant
        if status:
            event.status = status
        self.emit(event)

    def close(self) -> None:
        if self._owns_sink:
            self._sink.close()

    def __enter__(self) -> "QueryEventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events(path: str) -> "list[QueryEvent]":
    """Parse a JSONL event log back into :class:`QueryEvent` records."""
    events: "list[QueryEvent]" = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(QueryEvent.from_dict(json.loads(line)))
    return events


# The active event log of the current context; None means no logging,
# which costs the query layer one contextvar read per query.
_event_log_var: "ContextVar[QueryEventLog | None]" = ContextVar(
    "repro_obs_event_log", default=None
)


def current_event_log() -> "QueryEventLog | None":
    """The event log active in the current context (``None`` when none)."""
    return _event_log_var.get()


@contextmanager
def scope(log: "QueryEventLog | None") -> "Iterator[QueryEventLog | None]":
    """Activate *log* for the current context until exit.

    Mirrors :func:`repro.obs.scope`: nested scopes stack, sibling
    contexts keep their own log.  Passing ``None`` explicitly shields
    the block from any outer log.
    """
    token = _event_log_var.set(log)
    try:
        yield log
    finally:
        _event_log_var.reset(token)
