"""Command-line interface: regenerate the paper's tables and figures.

Examples
--------
Run everything at laptop scale (the default, 5% of the paper's sizes)::

    python -m repro all

Run one figure at the paper's full sizes and save the rows as JSON::

    python -m repro fig9 --scale 1.0 --json fig9.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.exceptions import ReproError
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = ["main", "build_parser"]

DEFAULT_SCALE = 0.05


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation tables/figures of 'Hypersphere "
            "Dominance: An Optimal Approach' (SIGMOD 2014)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=(
            "experiment ids ('all' or any of: "
            + ", ".join(sorted(EXPERIMENTS))
            + ")"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help=(
            "fraction of the paper's dataset/workload sizes "
            f"(default {DEFAULT_SCALE}; use 1.0 for the paper-size run)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="random seed (default 0)"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write all reports as a JSON array to PATH",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    names = list(args.experiments)
    if "all" in names:
        names = sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(EXPERIMENTS))} or 'all'"
        )

    reports = []
    for name in names:
        try:
            report = run_experiment(name, scale=args.scale, seed=args.seed)
        except ReproError as error:
            print(f"error running {name}: {error}", file=sys.stderr)
            return 1
        reports.append(report)
        print(report.render())
        print()

    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump([report.to_dict() for report in reports], handle, indent=2)
        print(f"wrote {len(reports)} report(s) to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
