"""Command-line interface: regenerate the paper's tables and figures.

Examples
--------
Run everything at laptop scale (the default, 5% of the paper's sizes)::

    python -m repro all

Run one figure at the paper's full sizes and save the rows as JSON::

    python -m repro fig9 --scale 1.0 --json fig9.json

Profile an experiment (prints an instrumentation-stats table after the
result table; the same stats land under ``"stats"`` in the JSON)::

    python -m repro fig9 --profile

Run the canned instrumentation workload on its own::

    python -m repro stats

Bound an experiment's wall-clock time (queries past the deadline return
conservative partial answers instead of running on)::

    python -m repro fig13 --deadline-ms 5000

Save, verify and reload a crash-safe index snapshot::

    python -m repro snapshot save /tmp/demo.snap --kind sstree
    python -m repro snapshot verify /tmp/demo.snap
    python -m repro snapshot load /tmp/demo.snap
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro import obs
from repro.core.base import get_criterion
from repro.core.batch import batch_evaluate
from repro.data.synthetic import synthetic_dataset
from repro.data.workload import DominanceWorkload, knn_queries
from repro.exceptions import ReproError
from repro.experiments.report import render_stats
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.index.sstree import SSTree
from repro.obs import names
from repro.obs.log import configure_logging, get_logger
from repro.queries.knn import knn_query
from repro.queries.validation import validate_deadline_ms

__all__ = ["main", "build_parser", "deadline_ms_argtype", "run_canned_workload"]

DEFAULT_SCALE = 0.05

log = get_logger("cli")


def deadline_ms_argtype(text: str) -> float:
    """Argparse ``type=`` adapter for ``--deadline-ms``.

    Delegates to :func:`repro.queries.validation.validate_deadline_ms`
    so a negative, zero, NaN or non-numeric deadline is rejected at the
    CLI boundary (argparse answers with usage + exit code 2) instead of
    surfacing as a confusing downstream failure.
    """
    try:
        return validate_deadline_ms(text)
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation tables/figures of 'Hypersphere "
            "Dominance: An Optimal Approach' (SIGMOD 2014)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=(
            "experiment ids ('all', 'stats', or any of: "
            + ", ".join(sorted(EXPERIMENTS))
            + ")"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help=(
            "fraction of the paper's dataset/workload sizes "
            f"(default {DEFAULT_SCALE}; use 1.0 for the paper-size run)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="random seed (default 0)"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write all reports as a JSON array to PATH",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "enable repro.obs instrumentation and print a stats table "
            "after each experiment (also stored under 'stats' in --json)"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log progress at DEBUG level to stderr",
    )
    parser.add_argument(
        "--deadline-ms",
        type=deadline_ms_argtype,
        default=None,
        metavar="MS",
        help=(
            "wall-clock budget per experiment; past the deadline, queries "
            "degrade to conservative partial answers instead of running on "
            "(smoke runs and liveness checks, not publication numbers)"
        ),
    )
    return parser


def run_canned_workload(*, seed: int = 0) -> dict:
    """Exercise every instrumented subsystem once; return the stats.

    The workload is small and fixed: a synthetic dataset, the scalar
    Hyperbola and Cascade criteria over a dominance workload, one
    vectorised batch evaluation, a handful of SS-tree kNN queries, the
    certified criterion over the same triples (so the escalation-ladder
    stage counters show up), and one fault-injected pass demonstrating
    graceful degradation.  Must be called with instrumentation enabled
    to record anything.
    """
    dataset = synthetic_dataset(400, 3, mu=0.1, seed=seed)
    workload = DominanceWorkload.from_dataset(dataset, size=500, seed=seed)
    with obs.trace(names.STATS_SCALAR):
        for name in ("hyperbola", "cascade"):
            criterion = get_criterion(name)
            for sa, sb, sq in workload.triples():
                criterion.dominates(sa, sb, sq)
    with obs.trace(names.STATS_BATCH):
        batch_evaluate("hyperbola", *workload.arrays())
    with obs.trace(names.STATS_KNN):
        tree = SSTree.bulk_load(dataset.items(), max_entries=16)
        for query in knn_queries(dataset, count=10, seed=seed):
            knn_query(tree, query, 5, criterion="hyperbola")
    with obs.trace(names.STATS_VERIFIED):
        verified = get_criterion("verified")
        for sa, sb, sq in workload.triples():
            verified.dominates(sa, sb, sq)
    with obs.trace(names.STATS_FAULTS):
        # A short demonstration that certified verdicts survive kernel
        # corruption: the 'verified.stage.*' / 'faults.*' counters show
        # the ladder escalating over the poisoned quartic solver.
        from repro.robust import faults

        with faults.inject("quartic", "nan"):
            for sa, sb, sq in list(workload.triples())[:50]:
                verified.dominates(sa, sb, sq)
    with obs.trace(names.STATS_LINT):
        # One small domlint pass (over the rule framework itself) so the
        # 'analysis.*' lint-as-telemetry counters surface in the stats
        # table alongside the numeric kernels.
        from pathlib import Path

        from repro.analysis import engine as lint_engine

        lint_engine.lint_paths(
            [Path(lint_engine.__file__).resolve().parent / "base.py"]
        )
    return obs.collect()


_SNAPSHOT_KINDS = ("linear", "sstree", "mtree", "vptree")


def _build_snapshot_index(kind: str, n: int, dimension: int, seed: int) -> object:
    dataset = synthetic_dataset(n, dimension, seed=seed)
    items = list(dataset.items())
    if kind == "linear":
        from repro.index.linear import LinearIndex

        return LinearIndex(items)
    if kind == "sstree":
        return SSTree.bulk_load(items)
    if kind == "mtree":
        from repro.index.mtree import MTree

        return MTree.build(items)
    from repro.index.vptree import VPTree

    return VPTree.build(items)


def _snapshot_main(argv: "Sequence[str]") -> int:
    """The ``repro snapshot save|load|verify`` front end."""
    from repro.exceptions import SnapshotCorruptionError, SnapshotError
    from repro.index import snapshot as snap

    parser = argparse.ArgumentParser(
        prog="repro snapshot",
        description=(
            "Crash-safe index snapshots: checksummed save / verify / load "
            "(corruption is reported as a typed error, never as a wrong index)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_save = sub.add_parser(
        "save", help="build an index over a synthetic dataset and snapshot it"
    )
    p_save.add_argument("path", help="destination snapshot file")
    p_save.add_argument(
        "--kind", choices=_SNAPSHOT_KINDS, default="sstree", help="index structure"
    )
    p_save.add_argument("--n", type=int, default=400, help="dataset size")
    p_save.add_argument("--dimension", type=int, default=3, help="dimensionality")
    p_save.add_argument("--seed", type=int, default=0, help="dataset seed")
    p_load = sub.add_parser("load", help="rebuild an index from a snapshot")
    p_load.add_argument("path", help="snapshot file to load")
    p_verify = sub.add_parser(
        "verify", help="integrity-check a snapshot without rebuilding it"
    )
    p_verify.add_argument("path", help="snapshot file to check")
    args = parser.parse_args(list(argv))

    try:
        if args.command == "save":
            index = _build_snapshot_index(
                args.kind, args.n, args.dimension, args.seed
            )
            info = snap.save(index, args.path)
            print(
                f"saved {info['kind']} snapshot: {info['count']} entries, "
                f"d={info['dimension']}, {info['pages']} page(s), "
                f"{info['bytes']} bytes -> {args.path}"
            )
        elif args.command == "verify":
            info = snap.verify(args.path)
            print(
                f"snapshot OK: kind={info['kind']} count={info['count']} "
                f"d={info['dimension']} pages={info['pages']} "
                f"bytes={info['bytes']}"
            )
        else:
            index = snap.load(args.path)
            print(
                f"loaded {type(index).__name__}: {len(index)} entries, "  # type: ignore[arg-type]
                f"d={index.dimension}"  # type: ignore[attr-defined]
            )
    except SnapshotCorruptionError as error:
        print(f"snapshot corrupt: {error}", file=sys.stderr)
        return 2
    except SnapshotError as error:
        print(f"snapshot error: {error}", file=sys.stderr)
        return 1
    return 0


def _parse_stream_key(text: str) -> object:
    """CLI keys: an int when it parses as one, else the literal string."""
    try:
        return int(text)
    except ValueError:
        return text


def _stream_main(argv: "Sequence[str]") -> int:
    """The ``repro stream init|insert|delete|status|compact`` front end.

    Mutation payloads pass :func:`repro.queries.validation.validate_mutation`
    before any byte reaches the write-ahead log; invalid geometry exits
    with status 2 (the established bad-input code), durable success
    prints the acked sequence number.
    """
    from repro.exceptions import StreamError, ValidationError
    from repro.queries.validation import validate_mutation
    from repro.stream.engine import StreamingIndex

    parser = argparse.ArgumentParser(
        prog="repro stream",
        description=(
            "Durable streaming mutations over a snapshot-backed index: "
            "every acked insert/delete survives a crash (WAL + replay), "
            "and compaction folds the overlay into a fresh snapshot."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_init = sub.add_parser(
        "init", help="initialise a streaming directory over a synthetic dataset"
    )
    p_init.add_argument("directory", help="streaming index directory to create")
    p_init.add_argument(
        "--kind", choices=_SNAPSHOT_KINDS, default="sstree", help="index structure"
    )
    p_init.add_argument("--n", type=int, default=400, help="dataset size")
    p_init.add_argument("--dimension", type=int, default=3, help="dimensionality")
    p_init.add_argument("--seed", type=int, default=0, help="dataset seed")
    p_insert = sub.add_parser("insert", help="durably insert (upsert) one sphere")
    p_insert.add_argument("directory", help="streaming index directory")
    p_insert.add_argument("--key", required=True, help="object key")
    p_insert.add_argument(
        "--center", required=True, help="comma-separated coordinates"
    )
    p_insert.add_argument("--radius", required=True, help="sphere radius")
    p_delete = sub.add_parser("delete", help="durably tombstone one key")
    p_delete.add_argument("directory", help="streaming index directory")
    p_delete.add_argument("--key", required=True, help="object key")
    p_status = sub.add_parser("status", help="report entries/overlay/WAL state")
    p_status.add_argument("directory", help="streaming index directory")
    p_compact = sub.add_parser(
        "compact", help="fold the overlay into a fresh snapshot and truncate"
    )
    p_compact.add_argument("directory", help="streaming index directory")
    args = parser.parse_args(list(argv))

    try:
        if args.command == "init":
            dataset = synthetic_dataset(args.n, args.dimension, seed=args.seed)
            stream = StreamingIndex.create(
                args.directory, list(dataset.items()), kind=args.kind
            )
            print(
                f"initialised streaming index: {len(stream)} entries, "
                f"d={stream.dimension}, kind={args.kind} -> {args.directory}"
            )
            stream.close()
            return 0
        if args.command == "insert":
            try:
                center = [float(c) for c in args.center.split(",") if c.strip()]
                radius = float(args.radius)
            except ValueError as error:
                print(f"stream validation error: {error}", file=sys.stderr)
                return 2
            with StreamingIndex.open(args.directory) as stream:
                try:
                    op, key, sphere = validate_mutation(
                        {
                            "op": "insert",
                            "key": _parse_stream_key(args.key),
                            "center": center,
                            "radius": radius,
                        },
                        stream.dimension,
                    )
                except ValidationError as error:
                    print(f"stream validation error: {error}", file=sys.stderr)
                    return 2
                assert sphere is not None
                seq = stream.insert(key, sphere)
            print(f"acked insert seq={seq} key={key!r}")
            return 0
        if args.command == "delete":
            with StreamingIndex.open(args.directory) as stream:
                try:
                    _, key, _ = validate_mutation(
                        {"op": "delete", "key": _parse_stream_key(args.key)}
                    )
                except ValidationError as error:
                    print(f"stream validation error: {error}", file=sys.stderr)
                    return 2
                seq = stream.delete(key)
            print(f"acked delete seq={seq} key={key!r}")
            return 0
        if args.command == "compact":
            with StreamingIndex.open(args.directory) as stream:
                result = stream.checkpoint()
            print(
                f"compacted: {result.entries} entries, "
                f"{result.dropped_tombstones} tombstone(s) dropped, "
                f"{result.snapshot_bytes} snapshot bytes, "
                f"{result.wal_segments_removed} WAL segment(s) removed"
            )
            return 0
        with StreamingIndex.open(args.directory) as stream:
            replayed = len(stream.wal.replayed)
            truncated = stream.wal.truncated_frames
            print(
                f"streaming index at {args.directory}: "
                f"{len(stream)} effective entries, d={stream.dimension}, "
                f"overlay={len(stream.overlay)} insert(s) + "
                f"{len(stream.overlay.tombstones)} tombstone(s), "
                f"last_seq={stream.last_seq}, wal_records={replayed}"
                + (f", truncated_frames={truncated}" if truncated else "")
            )
        return 0
    except StreamError as error:
        print(f"stream error: {error}", file=sys.stderr)
        return 1


_EXPLAIN_KINDS = ("knn", "rknn", "dominating")


def _explain_main(argv: "Sequence[str]") -> int:
    """The ``repro explain`` front end: one seeded query, dissected."""
    from repro.data.workload import knn_queries as make_queries
    from repro.index.linear import LinearIndex
    from repro.queries.dominating import top_k_dominating
    from repro.queries.rknn import rnn_candidates

    parser = argparse.ArgumentParser(
        prog="repro explain",
        description=(
            "Run one seeded query with explain=True and render its "
            "execution breakdown (per-level node accesses, cascade "
            "tiers, pruning effectiveness, budget use)."
        ),
    )
    parser.add_argument(
        "kind", choices=_EXPLAIN_KINDS, help="query kind to dissect"
    )
    parser.add_argument("--n", type=int, default=400, help="dataset size")
    parser.add_argument(
        "--dimension", type=int, default=3, help="dimensionality"
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument(
        "--k", type=int, default=5, help="k for knn/dominating (default 5)"
    )
    parser.add_argument(
        "--criterion",
        default="hyperbola",
        help="dominance criterion name (default hyperbola)",
    )
    parser.add_argument(
        "--strategy",
        default="hs",
        choices=("hs", "df"),
        help="kNN traversal strategy (default hs)",
    )
    parser.add_argument(
        "--algorithm",
        default="incremental",
        choices=("incremental", "two-phase"),
        help="kNN algorithm (default incremental)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the structured QueryExplain as JSON instead of the tree",
    )
    args = parser.parse_args(list(argv))

    dataset = synthetic_dataset(args.n, args.dimension, seed=args.seed)
    query = make_queries(dataset, count=1, seed=args.seed)[0]
    try:
        if args.kind == "knn":
            tree = SSTree.bulk_load(dataset.items())
            explained = knn_query(
                tree,
                query,
                args.k,
                criterion=args.criterion,
                strategy=args.strategy,
                algorithm=args.algorithm,
                explain=True,
            )
        elif args.kind == "rknn":
            index = LinearIndex(dataset.items())
            explained = rnn_candidates(
                index, query, criterion=args.criterion, explain=True
            )
        else:
            index = LinearIndex(dataset.items())
            explained = top_k_dominating(
                index, query, args.k, criterion=args.criterion, explain=True
            )
    except ReproError as error:
        print(f"explain error: {error}", file=sys.stderr)
        return 1
    detail = explained.explain  # type: ignore[union-attr]
    if args.json:
        print(json.dumps(detail.to_dict(), indent=2, sort_keys=True))
    else:
        print(detail.render())
    return 0


def _run_stats_command(args: argparse.Namespace) -> int:
    log.debug("running canned stats workload (seed=%d)", args.seed)
    with obs.enabled_scope(True), obs.scope():
        stats = run_canned_workload(seed=args.seed)
    print(render_stats(stats, title="repro stats: canned workload breakdown"))
    if args.json is not None:
        payload = [{"experiment": "stats", "stats": stats}]
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote 1 report(s) to {args.json}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # `repro lint` is the domlint static-analysis front end; its
        # flags are its own, so hand everything after 'lint' over.
        from repro.analysis.cli import main as lint_main

        return lint_main(arguments[1:])
    if arguments and arguments[0] == "snapshot":
        # `repro snapshot save|load|verify` manages crash-safe index
        # persistence; like lint, it owns its own flags.
        return _snapshot_main(arguments[1:])
    if arguments and arguments[0] == "bench":
        # `repro bench [compare]` is the standing benchmark observatory;
        # it owns its own flags.
        from repro.bench.cli import main as bench_main

        return bench_main(arguments[1:])
    if arguments and arguments[0] == "stream":
        # `repro stream init|insert|delete|status|compact` manages a
        # durable mutable index (WAL + overlay); it owns its own flags.
        return _stream_main(arguments[1:])
    if arguments and arguments[0] == "explain":
        # `repro explain knn|rknn|dominating` dissects one seeded query.
        return _explain_main(arguments[1:])
    if arguments and arguments[0] == "serve":
        # `repro serve` is the fault-tolerant multi-tenant query
        # service (and `repro serve smoke` its CI scenario); it owns
        # its own flags.
        from repro.serve.cli import main as serve_main

        return serve_main(arguments[1:])

    parser = build_parser()
    args = parser.parse_args(arguments)
    configure_logging(verbose=args.verbose)

    requested = list(args.experiments)
    if "stats" in requested:
        if len(requested) > 1:
            parser.error("'stats' runs alone; don't mix it with experiments")
        return _run_stats_command(args)
    if "all" in requested:
        requested = sorted(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(EXPERIMENTS))}, 'all', or 'stats'"
        )

    reports = []
    for name in requested:
        try:
            report = run_experiment(
                name,
                scale=args.scale,
                seed=args.seed,
                profile=args.profile,
                deadline_ms=args.deadline_ms,
            )
        except ReproError as error:
            print(f"error running {name}: {error}", file=sys.stderr)
            return 1
        reports.append(report)
        print(report.render())
        print()
        if args.profile:
            print(render_stats(report.stats, title=f"{name}: instrumentation"))
            print()

    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump([report.to_dict() for report in reports], handle, indent=2)
        print(f"wrote {len(reports)} report(s) to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
