"""Dominance for hyperspheres whose radii grow over time (future work).

The paper's conclusion poses: *"how to solve the dominance problem
efficiently when the radii of the hyperspheres change over time"*.
This module answers the linear-growth case exactly.

Model: centers are static and each radius grows linearly,
``r_i(t) = r_i + rate_i * t`` with ``rate_i >= 0`` (uncertainty only
accumulates — the GPS-drift model).  Then:

- the required margin ``ra(t) + rb(t)`` is non-decreasing in ``t``;
- the achieved margin ``min_{q in Sq(t)} (Dist(cb,q) - Dist(ca,q))`` is
  non-increasing in ``t`` (the query ball only grows).

So dominance is *monotone*: once lost it never returns, and the set of
times where ``Dom`` holds is an interval ``[0, t*)``.
:func:`dominance_horizon` finds ``t*`` by bisection over the exact O(d)
decision — each probe is one Hyperbola call, so the whole horizon costs
``O(d log(T / tol))``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hyperbola import HyperbolaCriterion
from repro.exceptions import CriterionError, GeometryError
from repro.geometry.hypersphere import Hypersphere

__all__ = ["GrowingHypersphere", "dominates_at", "dominance_horizon"]

_EXACT = HyperbolaCriterion()


@dataclass(frozen=True)
class GrowingHypersphere:
    """A hypersphere whose radius grows linearly with time."""

    sphere: Hypersphere
    rate: float = 0.0

    def __post_init__(self) -> None:
        if self.rate < 0.0:
            raise GeometryError(
                f"radius rate must be non-negative, got {self.rate}"
            )

    def at(self, t: float) -> Hypersphere:
        """The snapshot at time ``t >= 0``."""
        if t < 0.0:
            raise GeometryError(f"time must be non-negative, got {t}")
        return self.sphere.with_radius(self.sphere.radius + self.rate * t)


def dominates_at(
    sa: GrowingHypersphere,
    sb: GrowingHypersphere,
    sq: GrowingHypersphere,
    t: float,
) -> bool:
    """Exact dominance of the three snapshots at time *t*."""
    return _EXACT.dominates(sa.at(t), sb.at(t), sq.at(t))


def dominance_horizon(
    sa: GrowingHypersphere,
    sb: GrowingHypersphere,
    sq: GrowingHypersphere,
    *,
    horizon: float,
    tolerance: float = 1e-6,
) -> float:
    """The last time within ``[0, horizon]`` at which dominance holds.

    Returns ``0.0`` if dominance does not even hold now (callers should
    check ``dominates_at(..., 0.0)`` when the distinction matters), and
    ``horizon`` if it holds throughout.  The answer is exact up to
    *tolerance* thanks to the monotonicity argument in the module
    docstring.
    """
    if horizon <= 0.0:
        raise CriterionError(f"horizon must be positive, got {horizon}")
    if tolerance <= 0.0:
        raise CriterionError(f"tolerance must be positive, got {tolerance}")
    if not dominates_at(sa, sb, sq, 0.0):
        return 0.0
    if dominates_at(sa, sb, sq, horizon):
        return horizon
    lo, hi = 0.0, horizon  # dominance holds at lo, fails at hi
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if dominates_at(sa, sb, sq, mid):
            lo = mid
        else:
            hi = mid
    return lo
