"""The adapted MBR decision criterion (Section 2.2; Emrich et al. 2010).

Emrich et al.'s "optimal domination decision criterion" decides, for
hyperrectangles ``Ra``, ``Rb``, ``Rq``, whether every point of ``Ra`` is
closer than every point of ``Rb`` to every point of ``Rq``.  The paper
adapts it to hyperspheres by replacing each sphere with its minimum
bounding rectangle (MBR).

The rectangle decision itself is re-derived here from first principles.
Dominance over rectangles is equivalent to::

    max_{q in Rq} ( MaxDist(Ra, q)^2 - MinDist(Rb, q)^2 ) < 0

Both squared distances decompose per dimension, and the coordinates of
``q`` range independently over ``[Rq.lo[i], Rq.hi[i]]``, so the maximum
decomposes into d independent one-dimensional maximisations::

    sum_i max_{q_i} ( maxdist_i(Ra, q_i)^2 - mindist_i(Rb, q_i)^2 ) < 0

Each one-dimensional objective is piecewise linear outside ``Rb``'s
interval (the squared terms share their quadratic coefficient) and a
convex quadratic inside it, so its maximum over an interval is attained
at a piece endpoint: one of ``Rq``'s interval ends, ``Ra``'s interval
midpoint (where the far-end switches), or ``Rb``'s interval ends —
at most five candidate coordinates, hence O(d) overall.

Properties for the sphere adaptation (Lemmas 4 and 5 of the paper):
**correct** (spheres are contained in their MBRs) but **not sound**
(the MBRs of disjoint spheres may intersect — the paper's diagonal
three-sphere construction, reproduced in the test suite).
"""

from __future__ import annotations

from repro.core.base import DominanceCriterion, register_criterion
from repro.geometry.hyperrectangle import Hyperrectangle
from repro.geometry.hypersphere import Hypersphere

__all__ = ["MBRCriterion", "rectangle_dominates"]


def _max_margin_1d(
    a_lo: float,
    a_hi: float,
    b_lo: float,
    b_hi: float,
    q_lo: float,
    q_hi: float,
) -> float:
    """``max_{q in [q_lo, q_hi]} maxdist(A, q)^2 - mindist(B, q)^2`` in 1-D."""
    candidates = [q_lo, q_hi]
    for breakpoint in ((a_lo + a_hi) / 2.0, b_lo, b_hi):
        if q_lo < breakpoint < q_hi:
            candidates.append(breakpoint)
    best = -float("inf")
    for q in candidates:
        far_a = max(abs(q - a_lo), abs(a_hi - q))
        near_b = max(b_lo - q, q - b_hi, 0.0)
        margin = far_a * far_a - near_b * near_b
        if margin > best:
            best = margin
    return best


def rectangle_dominates(
    ra: Hyperrectangle, rb: Hyperrectangle, rq: Hyperrectangle
) -> bool:
    """Emrich et al.'s exact dominance decision for hyperrectangles.

    True iff every point of *ra* is strictly closer than every point of
    *rb* to every point of *rq*.  Runs in O(d).
    """
    if ra.dimension != rb.dimension or ra.dimension != rq.dimension:
        from repro.exceptions import DimensionalityMismatchError

        raise DimensionalityMismatchError(ra.dimension, rb.dimension)
    total = 0.0
    for i in range(ra.dimension):
        total += _max_margin_1d(
            ra.lo[i], ra.hi[i], rb.lo[i], rb.hi[i], rq.lo[i], rq.hi[i]
        )
    return total < 0.0


@register_criterion
class MBRCriterion(DominanceCriterion):
    """Decide sphere dominance through the spheres' bounding rectangles."""

    name = "mbr"
    is_correct = True
    is_sound = False

    def _decide(self, sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> bool:
        return rectangle_dominates(
            Hyperrectangle.bounding(sa),
            Hyperrectangle.bounding(sb),
            Hyperrectangle.bounding(sq),
        )
