"""The dominance operator: the paper's contribution and its baselines.

Importing this package registers the five decision criteria evaluated in
the paper:

======================  =========  ========  =======
criterion               correct?   sound?    O(d)?
======================  =========  ========  =======
``hyperbola`` (ours)    yes        yes       yes
``minmax``              yes        no        yes
``mbr``                 yes        no        yes
``gp``                  yes        no        yes
``trigonometric``       no         yes       yes
======================  =========  ========  =======

Use :func:`dominates` for one-off decisions,
:func:`~repro.core.base.get_criterion` for a reusable criterion object,
or :mod:`repro.core.batch` for vectorised workloads.
"""

from repro.core.base import (
    DominanceCriterion,
    available_criteria,
    get_criterion,
    register_criterion,
)
from repro.core.hyperbola import (
    HyperbolaCriterion,
    boundary_margin,
    dominates_with_margin,
    min_distance_to_boundary,
)
from repro.core.cascade import CascadeCriterion
from repro.core.temporal import (
    GrowingHypersphere,
    dominance_horizon,
    dominates_at,
)
from repro.core.weighted import WeightedEuclideanCriterion, weighted_dist
from repro.core.gp import GPCriterion
from repro.core.mbr import MBRCriterion, rectangle_dominates
from repro.core.minmax import MinMaxCriterion
from repro.core.trigonometric import TrigonometricCriterion
from repro.core.oracle import find_witness, min_margin, oracle_dominates
from repro.core.batch import batch_evaluate
from repro.geometry.hypersphere import Hypersphere

__all__ = [
    "DominanceCriterion",
    "HyperbolaCriterion",
    "CascadeCriterion",
    "WeightedEuclideanCriterion",
    "GrowingHypersphere",
    "dominance_horizon",
    "dominates_at",
    "weighted_dist",
    "MinMaxCriterion",
    "MBRCriterion",
    "GPCriterion",
    "TrigonometricCriterion",
    "available_criteria",
    "get_criterion",
    "register_criterion",
    "dominates",
    "boundary_margin",
    "dominates_with_margin",
    "min_distance_to_boundary",
    "rectangle_dominates",
    "oracle_dominates",
    "min_margin",
    "find_witness",
    "batch_evaluate",
]

_DEFAULT = HyperbolaCriterion()


def dominates(
    sa: Hypersphere,
    sb: Hypersphere,
    sq: Hypersphere,
    *,
    method: str = "hyperbola",
) -> bool:
    """Decide whether *sa* dominates *sb* with respect to the query *sq*.

    The default method is the paper's exact Hyperbola decision; any
    registered criterion name is accepted for comparison studies.

    >>> from repro import Hypersphere, dominates
    >>> sa = Hypersphere([0.0, 0.0], 1.0)
    >>> sb = Hypersphere([10.0, 0.0], 1.0)
    >>> sq = Hypersphere([-3.0, 0.0], 0.5)
    >>> dominates(sa, sb, sq)
    True
    """
    if method == "hyperbola":
        return _DEFAULT.dominates(sa, sb, sq)
    return get_criterion(method).dominates(sa, sb, sq)
