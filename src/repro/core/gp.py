"""The GP decision criterion (Section 2.2 / Appendix; Lian & Chen).

Lian & Chen's approach is exact in two dimensions but, for ``d > 2``,
first *projects* the d-dimensional configuration onto a plane and then
applies the exact 2-D decision.  The projection shrinks pairwise
distances (it is a contraction), so the criterion stays **correct** but
loses **soundness**: configurations that dominate in d dimensions may
fail the shrunken 2-D test.

Projection used here (an interpretation of [22]'s terse description —
see DESIGN.md Section 4): anchor the plane at ``ca`` and map

    u(x) = ( || x[0..d-2] - ca[0..d-2] ||,  x[d-1] - ca[d-1] ).

This choice has two properties that make the criterion provably correct:

- ``Dist(u(x), u(y)) <= Dist(x, y)`` for all x, y (triangle inequality
  on the collapsed block), so the image of every sphere ``S`` is inside
  the 2-D disk ``(u(c), r)``;
- ``Dist(u(x), u(ca)) = Dist(x, ca)`` exactly (``u(ca)`` is the
  origin), so the dominator's distances are *not* shrunk, which is the
  side that must not be underestimated.

For any realisations ``q in Sq``, ``a in Sa``, ``b in Sb``: 2-D
dominance of the projected disks gives
``Dist(ca, q) + ra = Dist(u(ca), u(q)) + ra < Dist(u(cb), u(q)) - rb
<= Dist(cb, q) - rb``, which is exactly d-dimensional dominance.

For ``d <= 2`` no information can be lost, so the criterion simply
delegates to the exact decision (matching the paper's remark that GP is
optimal for 2-dimensional data only).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.base import DominanceCriterion, register_criterion
from repro.core.hyperbola import HyperbolaCriterion
from repro.geometry.hypersphere import Hypersphere

__all__ = ["GPCriterion", "project_to_plane"]


def project_to_plane(point: np.ndarray, anchor: np.ndarray) -> np.ndarray:
    """Lian & Chen's 2-D projection of *point*, anchored at *anchor*."""
    offset = np.asarray(point, dtype=np.float64) - np.asarray(anchor, dtype=np.float64)
    collapsed = math.sqrt(float(offset[:-1] @ offset[:-1]))
    return np.array([collapsed, float(offset[-1])])


@register_criterion
class GPCriterion(DominanceCriterion):
    """Project to 2-D (anchored at ``ca``), then decide exactly there."""

    name = "gp"
    is_correct = True
    is_sound = False

    def __init__(self) -> None:
        self._exact_2d = HyperbolaCriterion()

    def _decide(self, sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> bool:
        if sa.dimension <= 2:
            return self._exact_2d.dominates(sa, sb, sq)
        anchor = sa.center
        projected_a = Hypersphere(project_to_plane(sa.center, anchor), sa.radius)
        projected_b = Hypersphere(project_to_plane(sb.center, anchor), sb.radius)
        projected_q = Hypersphere(project_to_plane(sq.center, anchor), sq.radius)
        return self._exact_2d.dominates(projected_a, projected_b, projected_q)
