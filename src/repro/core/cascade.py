"""A pruning cascade: cheap bounds first, the exact decision last.

An engineering extension beyond the paper (in the spirit of its
"filter-and-refine" related work): the MinMax criterion is an order of
magnitude cheaper than the exact Hyperbola decision, and it is
*correct* — whenever it answers true, dominance genuinely holds.  Its
converse bound is equally cheap: if even the most optimistic reading
fails (``MinDist(Sa, Sq) >= MaxDist(Sb, Sq)``), dominance is impossible.

The cascade therefore decides most workload triples with two center
distances and only falls through to the quartic machinery in the
genuinely ambiguous band.  It is exactly as correct and sound as
Hyperbola (the test suite asserts decision-for-decision equality) and
the ablation benchmark quantifies the speed-up, which grows with how
"easy" the workload is.
"""

from __future__ import annotations

from repro import obs
from repro.core.base import DominanceCriterion, register_criterion
from repro.core.hyperbola import HyperbolaCriterion
from repro.geometry.distance import max_dist, min_dist
from repro.geometry.hypersphere import Hypersphere
from repro.obs import names

__all__ = ["CascadeCriterion"]


@register_criterion
class CascadeCriterion(DominanceCriterion):
    """MinMax fast-accept / inverse-MinMax fast-reject, then Hyperbola."""

    name = "cascade"
    is_correct = True
    is_sound = True

    def __init__(self) -> None:
        self._exact = HyperbolaCriterion()

    def _decide(self, sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> bool:
        if obs.ENABLED:
            obs.incr(names.CASCADE_CALLS)
        if sa.overlaps(sb):
            if obs.ENABLED:
                obs.incr(names.CASCADE_OVERLAP_REJECT)
            return False
        # Fast accept: the pessimistic bound already separates them.
        if max_dist(sa, sq) < min_dist(sb, sq):
            if obs.ENABLED:
                obs.incr(names.CASCADE_FAST_ACCEPT)
            return True
        # Fast reject: MinDist(Sa,Sq) >= MaxDist(Sb,Sq) rearranges to
        # Dist(cb,cq) - Dist(ca,cq) - (ra+rb) <= -2*rq <= 0, i.e. the
        # query center itself already violates the MDD condition.
        if min_dist(sa, sq) >= max_dist(sb, sq):
            if obs.ENABLED:
                obs.incr(names.CASCADE_FAST_REJECT)
            return False
        if obs.ENABLED:
            obs.incr(names.CASCADE_FALL_THROUGH)
        # Dimensions were validated at this criterion's own entry point.
        return self._exact._decide(sa, sb, sq)
