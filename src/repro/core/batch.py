"""Vectorised (NumPy) evaluation of all five dominance criteria.

The paper's dominance experiments run workloads of 10,000 random
``(Sa, Sb, Sq)`` triples; evaluating those one Python call at a time
would measure interpreter overhead rather than the criteria.  This
module evaluates a whole workload at once with array kernels that
mirror the scalar implementations exactly (the test suite asserts
agreement element-by-element).

All functions share the same signature: six arrays describing ``n``
triples —

- ``ca, cb, cq`` : ``(n, d)`` center arrays,
- ``ra, rb, rq`` : ``(n,)`` radius arrays,

and return a boolean array of shape ``(n,)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import obs
from repro.geometry.quartic import solve_quartic_real_batch
from repro.obs import names

#: Anything convertible to an ``(n, d)`` float array of centers.
Centers = Sequence[Sequence[float]] | np.ndarray
#: Anything convertible to an ``(n,)`` float array of radii.
Radii = Sequence[float] | np.ndarray

__all__ = [
    "batch_minmax",
    "batch_mbr",
    "batch_gp",
    "batch_trigonometric",
    "batch_hyperbola",
    "batch_evaluate",
]


def _validate(
    ca: Centers,
    cb: Centers,
    cq: Centers,
    ra: Radii,
    rb: Radii,
    rq: Radii,
) -> tuple[np.ndarray, ...]:
    arrays = [np.asarray(a, dtype=np.float64) for a in (ca, cb, cq)]
    radii = [np.asarray(r, dtype=np.float64) for r in (ra, rb, rq)]
    n, d = arrays[0].shape
    for a in arrays:
        if a.shape != (n, d):
            raise ValueError("center arrays must share the same (n, d) shape")
    for r in radii:
        if r.shape != (n,):
            raise ValueError("radius arrays must have shape (n,)")
    return (*arrays, *radii)


def _row_norms(x: np.ndarray) -> np.ndarray:
    return np.sqrt(np.einsum("ij,ij->i", x, x))


def batch_minmax(
    ca: Centers,
    cb: Centers,
    cq: Centers,
    ra: Radii,
    rb: Radii,
    rq: Radii,
) -> np.ndarray:
    """Vectorised MinMax criterion."""
    ca, cb, cq, ra, rb, rq = _validate(ca, cb, cq, ra, rb, rq)
    max_dist_aq = _row_norms(ca - cq) + ra + rq
    min_dist_bq = np.maximum(_row_norms(cb - cq) - rb - rq, 0.0)
    return max_dist_aq < min_dist_bq


def batch_mbr(
    ca: Centers,
    cb: Centers,
    cq: Centers,
    ra: Radii,
    rb: Radii,
    rq: Radii,
) -> np.ndarray:
    """Vectorised MBR criterion (per-dimension candidate maximisation)."""
    ca, cb, cq, ra, rb, rq = _validate(ca, cb, cq, ra, rb, rq)
    a_lo, a_hi = ca - ra[:, None], ca + ra[:, None]
    b_lo, b_hi = cb - rb[:, None], cb + rb[:, None]
    q_lo, q_hi = cq - rq[:, None], cq + rq[:, None]

    def margin(q: np.ndarray) -> np.ndarray:
        far_a = np.maximum(np.abs(q - a_lo), np.abs(a_hi - q))
        near_b = np.maximum(np.maximum(b_lo - q, q - b_hi), 0.0)
        return far_a * far_a - near_b * near_b

    best = np.maximum(margin(q_lo), margin(q_hi))
    # Interior breakpoints, clipped into the query interval (clipping to
    # an endpoint just re-evaluates an endpoint, which is harmless).
    for breakpoint in (ca, b_lo, b_hi):  # ca == midpoint of Ra's MBR
        clipped = np.clip(breakpoint, q_lo, q_hi)
        best = np.maximum(best, margin(clipped))
    return best.sum(axis=1) < 0.0


def batch_trigonometric(
    ca: Centers,
    cb: Centers,
    cq: Centers,
    ra: Radii,
    rb: Radii,
    rq: Radii,
) -> np.ndarray:
    """Vectorised Trigonometric criterion."""
    ca, cb, cq, ra, rb, rq = _validate(ca, cb, cq, ra, rb, rq)
    rab = ra + rb
    direction = cb - ca
    separation = _row_norms(direction)
    safe = np.where(separation == 0.0, 1.0, separation)
    step = direction * (rq / safe)[:, None]

    def true_margin(q: np.ndarray) -> np.ndarray:
        return _row_norms(cb - q) - _row_norms(ca - q) - rab

    margin_1 = true_margin(cq + step)
    margin_2 = true_margin(cq - step)
    rejected = (
        (margin_1 == 0.0)
        | (margin_2 == 0.0)
        | ((margin_1 > 0.0) != (margin_2 > 0.0))
    )
    result = ~rejected
    degenerate = separation == 0.0
    if np.any(degenerate):
        result[degenerate] = true_margin(cq)[degenerate] != 0.0
    return result


def _reduce_to_half_plane(
    ca: np.ndarray, cb: np.ndarray, cq: np.ndarray, gap: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row ``(t, rho)`` coordinates of ``cq`` in the focal frame."""
    safe_gap = np.where(gap == 0.0, 1.0, gap)
    axis = (cb - ca) / safe_gap[:, None]
    offset = cq - (ca + cb) / 2.0
    t = np.einsum("ij,ij->i", offset, axis)
    rho_sq = np.einsum("ij,ij->i", offset, offset) - t * t
    return t, np.sqrt(np.maximum(rho_sq, 0.0))


def _batch_distance_to_hyperbola(
    t: np.ndarray, rho: np.ndarray, alpha: np.ndarray, rab: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`repro.core.hyperbola._distance_to_hyperbola_2d`.

    Rows must satisfy ``0 < rab < 2 * alpha``.
    """
    rab_sq = rab * rab
    alpha_sq = alpha * alpha
    a1 = (16.0 * alpha_sq - 4.0 * rab_sq) * t * t
    a2 = rab_sq * rab_sq - 4.0 * rab_sq * alpha_sq
    a3 = 4.0 * rab_sq * rho * rho
    a4 = 4.0 * rab_sq
    a5 = 4.0 * rab_sq - 16.0 * alpha_sq

    coefficients = np.stack(
        [
            a2 * a4 * a4 * a5 * a5,
            2.0 * a2 * a4 * a4 * a5 + 2.0 * a2 * a4 * a5 * a5,
            a1 * a4 * a4 + a2 * a4 * a4 + 4.0 * a2 * a4 * a5 + a2 * a5 * a5
            - a3 * a5 * a5,
            2.0 * a1 * a4 + 2.0 * a2 * a4 + 2.0 * a2 * a5 - 2.0 * a3 * a5,
            a1 + a2 - a3,
        ],
        axis=1,
    )
    lam = solve_quartic_real_batch(coefficients)  # (n, 4), nan padded

    def quadric_y_sq(x: np.ndarray) -> np.ndarray:
        """``y^2`` placing ``(x, y)`` on the quadric (may be negative)."""
        return (
            (16.0 * alpha_sq - 4.0 * rab_sq)[..., None] * x * x
            / (4.0 * rab_sq)[..., None]
            - alpha_sq[..., None]
            + rab_sq[..., None] / 4.0
        )

    denom_x = 1.0 + a5[:, None] * lam
    bad = np.isnan(lam) | (np.abs(denom_x) < 1e-12)
    with np.errstate(divide="ignore", invalid="ignore"):
        x = t[:, None] / denom_x
    # As in the scalar kernel: re-derive y from the quadric so every
    # candidate is genuinely on the curve (off-quadric candidates from
    # near-degenerate roots would underestimate the distance).
    y_sq = quadric_y_sq(np.where(bad, 0.0, x))
    bad |= y_sq < 0.0
    y = np.sqrt(np.maximum(y_sq, 0.0))
    dist_sq = (t[:, None] - x) ** 2 + (rho[:, None] - y) ** 2
    dist_sq = np.where(bad, np.inf, dist_sq)
    best_sq = np.min(dist_sq, axis=1, initial=np.inf)

    # Vertex candidates.
    half_rab = rab / 2.0
    best_sq = np.minimum(best_sq, (t - half_rab) ** 2 + rho * rho)
    best_sq = np.minimum(best_sq, (t + half_rab) ** 2 + rho * rho)

    # Off-axis critical ring.
    x_ring = t * rab_sq / (4.0 * alpha_sq)
    y_ring_sq = quadric_y_sq(x_ring[:, None])[:, 0]
    valid_ring = y_ring_sq >= 0.0
    y_ring = np.sqrt(np.maximum(y_ring_sq, 0.0))
    ring_sq = (t - x_ring) ** 2 + (rho - y_ring) ** 2
    best_sq = np.where(valid_ring, np.minimum(best_sq, ring_sq), best_sq)

    return np.sqrt(best_sq)


def batch_hyperbola(
    ca: Centers,
    cb: Centers,
    cq: Centers,
    ra: Radii,
    rb: Radii,
    rq: Radii,
) -> np.ndarray:
    """Vectorised Hyperbola criterion (the paper's optimal decision)."""
    ca, cb, cq, ra, rb, rq = _validate(ca, cb, cq, ra, rb, rq)
    rab = ra + rb
    gap = _row_norms(cb - ca)
    result = np.zeros(gap.shape, dtype=bool)

    live = gap > rab  # Lemma 1 fast-path: overlapping rows stay false.
    if obs.ENABLED:
        obs.incr(names.BATCH_HYPERBOLA_ROWS, int(gap.size))
        obs.incr(names.BATCH_HYPERBOLA_OVERLAP_ROWS, int(gap.size - live.sum()))
    if not np.any(live):
        return result

    margin_cq = _row_norms(cb - cq) - _row_norms(ca - cq) - rab
    center_inside = margin_cq > 0.0
    if obs.ENABLED:
        obs.incr(
            names.BATCH_HYPERBOLA_CENTER_OUTSIDE_ROWS,
            int((live & ~center_inside).sum()),
        )
    live &= center_inside
    if not np.any(live):
        return result

    # Point queries inside the open region Ra are decided already.
    point_query = live & (rq == 0.0)
    result[point_query] = True
    if obs.ENABLED:
        obs.incr(names.BATCH_HYPERBOLA_POINT_QUERY_ROWS, int(point_query.sum()))
    live &= rq > 0.0
    if not np.any(live):
        return result

    t, rho = _reduce_to_half_plane(ca, cb, cq, gap)

    if ca.shape[1] == 1:
        # One-dimensional data: the boundary of Ra is the vertex point
        # (no perpendicular dimension exists for the curve to bend into).
        result[live] = np.abs(t[live] + rab[live] / 2.0) > rq[live]
        return result

    # Same threshold as the scalar kernel: a hyperbola this flat is the
    # bisector hyperplane to within float resolution (and the quartic
    # coefficients would underflow).
    flat = rab <= 0.5e-9 * gap  # alpha = gap / 2
    bisector = live & flat
    result[bisector] = np.abs(t[bisector]) > rq[bisector]

    curved = live & ~flat
    if obs.ENABLED:
        obs.incr(names.BATCH_HYPERBOLA_BISECTOR_ROWS, int(bisector.sum()))
        obs.incr(names.BATCH_HYPERBOLA_QUARTIC_ROWS, int(curved.sum()))
    if np.any(curved):
        idx = np.flatnonzero(curved)
        dmin = _batch_distance_to_hyperbola(
            t[idx], rho[idx], gap[idx] / 2.0, rab[idx]
        )
        result[idx] = dmin > rq[idx]
    return result


def batch_gp(
    ca: Centers,
    cb: Centers,
    cq: Centers,
    ra: Radii,
    rb: Radii,
    rq: Radii,
) -> np.ndarray:
    """Vectorised GP criterion (2-D projection anchored at ``ca``)."""
    ca, cb, cq, ra, rb, rq = _validate(ca, cb, cq, ra, rb, rq)
    if ca.shape[1] <= 2:
        return batch_hyperbola(ca, cb, cq, ra, rb, rq)

    def project(points: np.ndarray) -> np.ndarray:
        offset = points - ca
        collapsed = _row_norms(offset[:, :-1])
        return np.stack([collapsed, offset[:, -1]], axis=1)

    return batch_hyperbola(project(ca), project(cb), project(cq), ra, rb, rq)


_BATCH_KERNELS = {
    "minmax": batch_minmax,
    "mbr": batch_mbr,
    "gp": batch_gp,
    "trigonometric": batch_trigonometric,
    "hyperbola": batch_hyperbola,
}


def batch_evaluate(
    name: str,
    ca: Centers,
    cb: Centers,
    cq: Centers,
    ra: Radii,
    rb: Radii,
    rq: Radii,
) -> np.ndarray:
    """Evaluate the named criterion over a whole workload at once."""
    try:
        kernel = _BATCH_KERNELS[name]
    except KeyError:
        known = ", ".join(sorted(_BATCH_KERNELS))
        raise ValueError(f"no batch kernel named {name!r}; known: {known}") from None
    if obs.ENABLED:
        obs.incr(names.BATCH_CALLS)
        obs.incr(names.batch_calls(name))
        obs.observe(names.BATCH_WORKLOAD_ROWS, int(np.asarray(ca).shape[0]))
    return kernel(ca, cb, cq, ra, rb, rq)
