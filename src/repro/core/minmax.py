"""The MinMax decision criterion (Section 2.2; Roussopoulos et al.).

``DC_MinMax(Sa, Sb, Sq)`` is true iff
``MaxDist(Sa, Sq) < MinDist(Sb, Sq)``.

Properties (Lemmas 2 and 3 of the paper):

- **correct** — a true answer really is dominance, because every pair of
  realisations is separated by the two bounds;
- **not sound** — when the query has a non-zero radius the criterion can
  answer false even though dominance holds (the paper's Figure 4
  construction, reproduced in the test suite);
- **O(d)** — two center distances.

When ``Sq`` is a point (``rq == 0``) the criterion *is* sound, which the
test suite also verifies.
"""

from __future__ import annotations

from repro.core.base import DominanceCriterion, register_criterion
from repro.geometry.distance import max_dist, min_dist
from repro.geometry.hypersphere import Hypersphere

__all__ = ["MinMaxCriterion"]


@register_criterion
class MinMaxCriterion(DominanceCriterion):
    """Compare the pessimistic bound on Sa against the optimistic on Sb."""

    name = "minmax"
    is_correct = True
    is_sound = False

    def _decide(self, sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> bool:
        return max_dist(sa, sq) < min_dist(sb, sq)
