"""An independent numerical ground-truth oracle for dominance.

The test suite must not certify Hyperbola against itself, so this module
evaluates the MDD condition

    min_{q in Sq} ( Dist(cb, q) - Dist(ca, q) )  >  ra + rb

by direct numerical minimisation, sharing no code path with the quartic
machinery.  It exploits only elementary facts:

- The margin ``f(q) = Dist(cb, q) - Dist(ca, q)`` depends on ``q`` only
  through its ``(t, rho)`` coordinates in the focal frame, and is even
  in ``rho``; so the ball ``Sq`` may be replaced by the full disk of
  radius ``rq`` around ``(t_q, rho_q)`` in the reduced half-plane.
- ``f`` has no interior critical points except on the focal axis rays
  beyond the foci, where it is constant (``-2*alpha`` beyond ``cb``,
  the global minimum; ``+2*alpha`` beyond ``ca``, the global maximum).
- Hence the minimum over the disk is ``-2*alpha`` if the disk touches
  the ray beyond ``cb``, and otherwise lies on the disk's boundary
  circle, which is scanned densely and refined by golden-section search.

The oracle is O(resolution * d) — far too slow for the query layer, but
exact enough (boundary cases excepted) to validate every criterion.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.geometry.hypersphere import Hypersphere
from repro.geometry.transform import FocalFrame

__all__ = ["min_margin", "oracle_dominates", "find_witness"]

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


def _margin_2d(t: float, rho: float, alpha: float) -> float:
    """``Dist(cb, .) - Dist(ca, .)`` at reduced coordinates ``(t, rho)``."""
    to_cb = math.hypot(t - alpha, rho)
    to_ca = math.hypot(t + alpha, rho)
    return to_cb - to_ca


def _margin_1d(sa: Hypersphere, sb: Hypersphere, q: float) -> float:
    """``Dist(cb, q) - Dist(ca, q)`` for a scalar coordinate ``q``."""
    return abs(sb.center[0] - q) - abs(sa.center[0] - q)


def _interval_candidates(
    sa: Hypersphere, sb: Hypersphere, sq: Hypersphere
) -> list[float]:
    """Extreme points of the 1-D margin over the interval ``Sq``."""
    lo = sq.center[0] - sq.radius
    hi = sq.center[0] + sq.radius
    candidates = [lo, hi]
    candidates.extend(x for x in (sa.center[0], sb.center[0]) if lo < x < hi)
    return candidates


def _golden_section(
    objective: "Callable[[float], float]",
    lo: float,
    hi: float,
    iterations: int = 80,
) -> tuple[float, float]:
    """Minimise a unimodal-ish 1-D *objective* on ``[lo, hi]``."""
    x1 = hi - _GOLDEN * (hi - lo)
    x2 = lo + _GOLDEN * (hi - lo)
    f1, f2 = objective(x1), objective(x2)
    for _ in range(iterations):
        if f1 <= f2:
            hi, x2, f2 = x2, x1, f1
            x1 = hi - _GOLDEN * (hi - lo)
            f1 = objective(x1)
        else:
            lo, x1, f1 = x1, x2, f2
            x2 = lo + _GOLDEN * (hi - lo)
            f2 = objective(x2)
    return (x1, f1) if f1 <= f2 else (x2, f2)


def min_margin(
    sa: Hypersphere,
    sb: Hypersphere,
    sq: Hypersphere,
    *,
    resolution: int = 4096,
) -> float:
    """``min_{q in Sq} Dist(cb, q) - Dist(ca, q)`` by numerical search.

    *resolution* controls the density of the initial boundary scan; the
    best few brackets are refined by golden-section search.
    """
    sa.require_same_dimension(sb)
    sa.require_same_dimension(sq)
    # Coincident foci (or a separation so small its square underflows):
    # the margin is identically zero to within float resolution.
    if float(np.linalg.norm(sb.center - sa.center)) == 0.0:
        return 0.0
    if sa.dimension == 1:
        # No perpendicular direction exists: Sq is an interval and the
        # margin is piecewise linear with breakpoints at the two foci.
        return min(
            _margin_1d(sa, sb, q) for q in _interval_candidates(sa, sb, sq)
        )
    frame = FocalFrame(sa.center, sb.center)
    alpha = frame.alpha
    t, rho = frame.reduce(sq.center)
    rq = sq.radius

    if rq == 0.0:
        return _margin_2d(t, rho, alpha)

    # Plateau short-circuit: the disk touches the axis ray beyond cb.
    if rho <= rq and t + math.sqrt(rq * rq - rho * rho) >= alpha:
        return -2.0 * alpha

    def margin_at_angle(theta: float) -> float:
        return _margin_2d(t + rq * math.cos(theta), rho + rq * math.sin(theta), alpha)

    angles = np.linspace(0.0, 2.0 * math.pi, resolution, endpoint=False)
    values = np.array([margin_at_angle(theta) for theta in angles])
    best = float(values.min())
    step = 2.0 * math.pi / resolution
    # Refine around every local minimum of the coarse scan.
    local = np.flatnonzero(
        (values <= np.roll(values, 1)) & (values <= np.roll(values, -1))
    )
    for i in local:
        theta = angles[i]
        _, refined = _golden_section(margin_at_angle, theta - step, theta + step)
        if refined < best:
            best = refined
    return best


def oracle_dominates(
    sa: Hypersphere,
    sb: Hypersphere,
    sq: Hypersphere,
    *,
    resolution: int = 4096,
) -> bool:
    """Ground-truth ``Dom(Sa, Sb, Sq)`` via numerical minimisation.

    Near-boundary configurations (margin within numerical tolerance of
    ``ra + rb``) are inherently ambiguous for any floating-point method;
    the property-based tests filter those out explicitly.
    """
    if sa.overlaps(sb):
        return False
    margin = min_margin(sa, sb, sq, resolution=resolution)
    return margin > sa.radius + sb.radius


def find_witness(
    sa: Hypersphere,
    sb: Hypersphere,
    sq: Hypersphere,
    *,
    resolution: int = 4096,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """A concrete violating triple ``(q, a, b)`` when dominance fails.

    Returns points ``q in Sq``, ``a in Sa``, ``b in Sb`` with
    ``Dist(a, q) >= Dist(b, q)``, or ``None`` when no violation could be
    found (i.e. dominance appears to hold).  Used by tests to turn an
    oracle "false" into a checkable certificate.
    """
    sa.require_same_dimension(sb)
    sa.require_same_dimension(sq)

    def witness_from(q: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        to_a = q - sa.center
        norm_a = float(np.linalg.norm(to_a))
        # Farthest point of Sa from q.
        a = sa.center - sa.radius * (to_a / norm_a) if norm_a > 0 else (
            sa.center + _any_unit(sa.dimension) * sa.radius
        )
        to_b = q - sb.center
        norm_b = float(np.linalg.norm(to_b))
        # Nearest point of Sb to q (clamped to the ball when q is inside).
        if norm_b > sb.radius:
            b = sb.center + sb.radius * (to_b / norm_b)
        else:
            b = q.copy()
        if float(np.linalg.norm(a - q)) >= float(np.linalg.norm(b - q)):
            return q, a, b
        return None

    # Candidate worst-case query points: the oracle minimiser and cq.
    if float(np.linalg.norm(sb.center - sa.center)) == 0.0:
        candidates = [np.asarray(sq.center, dtype=np.float64)]
    elif sa.dimension == 1:
        candidates = [
            np.array([q]) for q in _interval_candidates(sa, sb, sq)
        ]
    else:
        frame = FocalFrame(sa.center, sb.center)
        t, rho = frame.reduce(sq.center)
        rq = sq.radius
        candidates = [np.asarray(sq.center, dtype=np.float64)]
        if rq > 0.0:
            def margin_at_angle(theta: float) -> float:
                return _margin_2d(
                    t + rq * math.cos(theta), rho + rq * math.sin(theta), frame.alpha
                )

            angles = np.linspace(0.0, 2.0 * math.pi, resolution, endpoint=False)
            values = [margin_at_angle(theta) for theta in angles]
            best_theta = float(angles[int(np.argmin(values))])
            step = 2.0 * math.pi / resolution
            best_theta, _ = _golden_section(
                margin_at_angle, best_theta - step, best_theta + step
            )
            q2d = (
                t + rq * math.cos(best_theta),
                rho + rq * math.sin(best_theta),
            )
            # abs() folds the half-plane symmetry back into rho >= 0.
            candidates.append(frame.lift(q2d[0], abs(q2d[1]), toward=sq.center))

    for q in candidates:
        witness = witness_from(np.asarray(q, dtype=np.float64))
        if witness is not None:
            return witness
    return None


def _any_unit(dimension: int) -> np.ndarray:
    unit = np.zeros(dimension)
    unit[0] = 1.0
    return unit
