"""The dominance-criterion interface and registry.

The paper evaluates five *decision criteria* for the hypersphere
dominance predicate ``Dom(Sa, Sb, Sq)`` (Definition 1).  Each criterion
is a callable object with two advertised properties borrowed from
Emrich et al. (Section 1 of the paper):

- *correct* — a ``True`` answer implies genuine dominance (no false
  positives);
- *sound* — a ``False`` answer implies genuine non-dominance (no false
  negatives).

A criterion that is both (and runs in O(d)) is *optimal*; only the
paper's Hyperbola achieves all three.

Criteria register themselves under a short name so experiments and the
CLI can select them by string.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterator

from repro.exceptions import CriterionError, DimensionalityMismatchError
from repro.geometry.hypersphere import Hypersphere

__all__ = [
    "DominanceCriterion",
    "register_criterion",
    "get_criterion",
    "available_criteria",
]


class DominanceCriterion(ABC):
    """A decision procedure for ``Dom(Sa, Sb, Sq)``.

    Subclasses set the class attributes:

    - ``name`` — registry key (e.g. ``"hyperbola"``);
    - ``is_correct`` / ``is_sound`` — the theoretical guarantees from
      Table 1 of the paper, verified empirically by the test suite.
    """

    name: str = ""
    is_correct: bool = False
    is_sound: bool = False

    def dominates(self, sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> bool:
        """Decide whether *sa* dominates *sb* with respect to *sq*.

        This is the single entry point of every criterion: it validates
        that the three hyperspheres share one dimensionality (raising
        :class:`~repro.exceptions.DimensionalityMismatchError` otherwise)
        and then delegates to the subclass's :meth:`_decide`.  Before
        this template existed each subclass had to remember to validate,
        so a forgotten check could let a 2-D/3-D mix reach the kernel.
        """
        dimension = sa.dimension
        if sb.dimension != dimension:
            raise DimensionalityMismatchError(dimension, sb.dimension)
        if sq.dimension != dimension:
            raise DimensionalityMismatchError(dimension, sq.dimension)
        return self._decide(sa, sb, sq)

    @abstractmethod
    def _decide(self, sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> bool:
        """The criterion's decision body (inputs already validated)."""

    def __call__(self, sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> bool:
        return self.dominates(sa, sb, sq)

    @staticmethod
    def check_dimensions(sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> None:
        """Raise when the three hyperspheres live in different spaces.

        Retained for callers outside the class hierarchy; subclasses no
        longer need it because :meth:`dominates` validates up front.
        """
        sa.require_same_dimension(sb)
        sa.require_same_dimension(sq)

    def __repr__(self) -> str:
        flags = []
        if self.is_correct:
            flags.append("correct")
        if self.is_sound:
            flags.append("sound")
        return f"<{type(self).__name__} {self.name!r} ({', '.join(flags) or 'heuristic'})>"


_REGISTRY: dict[str, Callable[[], DominanceCriterion]] = {}


def register_criterion(
    factory: Callable[[], DominanceCriterion],
) -> Callable[[], DominanceCriterion]:
    """Register a criterion factory under its instance's ``name``.

    Usable as a plain call or as a class decorator (classes are their own
    zero-argument factories).
    """
    instance = factory()
    if not instance.name:
        raise CriterionError(f"{factory!r} produced a criterion without a name")
    if instance.name in _REGISTRY:
        raise CriterionError(f"criterion {instance.name!r} registered twice")
    _REGISTRY[instance.name] = factory
    return factory


def get_criterion(name: str) -> DominanceCriterion:
    """Instantiate the registered criterion called *name*.

    >>> get_criterion("minmax").name
    'minmax'
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise CriterionError(f"unknown criterion {name!r}; known: {known}") from None
    return factory()


def available_criteria() -> Iterator[str]:
    """The registered criterion names, sorted."""
    return iter(sorted(_REGISTRY))
