"""Dominance under weighted Euclidean metrics (future work).

The paper's conclusion poses: *"how to solve the dominance problem
... when some distance metrics other than Euclidean are adopted"*.
This module answers it exactly for the diagonally *weighted* Euclidean
family

    Dist_w(p, p') = sqrt( sum_i w_i * (p[i] - p'[i])^2 ),   w_i > 0,

which covers per-dimension unit normalisation, feature importance
weighting and diagonal Mahalanobis distances.

The reduction: scaling every coordinate by ``sqrt(w_i)`` turns
``Dist_w`` into the plain Euclidean distance, and a *metric ball* of the
weighted metric (``{x : Dist_w(c, x) <= r}``) maps to a plain Euclidean
ball of the same radius.  So the exact Hyperbola decision applies
verbatim in the scaled space.

Semantics note: the hyperspheres handed to this criterion are
interpreted as balls **of the weighted metric** — the natural model when
an object's uncertainty is expressed in the same metric the query uses.
(An axis-aligned Euclidean ball would map to an ellipsoid, a different
object class the paper does not treat.)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.base import DominanceCriterion
from repro.core.hyperbola import HyperbolaCriterion
from repro.exceptions import CriterionError, DimensionalityMismatchError
from repro.geometry.hypersphere import Hypersphere

__all__ = ["WeightedEuclideanCriterion", "weighted_dist"]


def weighted_dist(
    p: Sequence[float] | np.ndarray,
    q: Sequence[float] | np.ndarray,
    weights: Sequence[float] | np.ndarray,
) -> float:
    """The weighted Euclidean distance ``Dist_w`` between two points."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if p.shape != q.shape or p.shape != weights.shape:
        raise DimensionalityMismatchError(p.shape[-1], q.shape[-1])
    return float(np.sqrt(np.sum(weights * (p - q) ** 2)))


class WeightedEuclideanCriterion(DominanceCriterion):
    """Exact dominance under a per-dimension weighted Euclidean metric.

    Not added to the global registry: an instance carries its weight
    vector, so it is constructed explicitly.

    Examples
    --------
    >>> crit = WeightedEuclideanCriterion([4.0, 1.0])
    >>> sa = Hypersphere([0.0, 0.0], 1.0)
    >>> sb = Hypersphere([10.0, 0.0], 1.0)
    >>> sq = Hypersphere([-2.0, 0.0], 0.5)
    >>> crit.dominates(sa, sb, sq)
    True
    """

    name = "weighted-euclidean"
    is_correct = True
    is_sound = True

    def __init__(self, weights: Sequence[float] | np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise CriterionError("weights must be a non-empty 1-D vector")
        if not np.all(np.isfinite(weights)) or np.any(weights <= 0.0):
            raise CriterionError("weights must be finite and strictly positive")
        self._scale = np.sqrt(weights)
        self._exact = HyperbolaCriterion()

    @property
    def weights(self) -> np.ndarray:
        """The metric's per-dimension weights."""
        return self._scale**2

    def _to_euclidean(self, sphere: Hypersphere) -> Hypersphere:
        if sphere.dimension != self._scale.shape[0]:
            raise DimensionalityMismatchError(
                self._scale.shape[0], sphere.dimension
            )
        return Hypersphere(sphere.center * self._scale, sphere.radius)

    def _decide(self, sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> bool:
        return self._exact.dominates(
            self._to_euclidean(sa),
            self._to_euclidean(sb),
            self._to_euclidean(sq),
        )
