"""The Trigonometric decision criterion (paper appendix; Emrich et al. 2010).

The criterion originates from trigonometric pruning for all-nearest-
neighbour queries; the paper adapts it to the hypersphere dominance
problem and shows it is **sound but not correct** (Lemmas 11 and 12).

The adapted procedure, implemented here exactly as the appendix
describes:

1. Define the true margin ``f(q) = Dist(cb, q) - Dist(ca, q) - (ra+rb)``
   (the MDD condition asks for ``min f > 0``) and the surrogate
   ``g(q) = Dist(cb, q)^2 - Dist(ca, q)^2 - (ra+rb)``, whose derivative
   is easy: ``g`` is *linear* in ``q``, so its extrema over the ball
   ``Sq`` sit at the two boundary points along the gradient direction::

       q1, q2 = cq +- rq * (cb - ca) / Dist(ca, cb)

2. Evaluate the *true* margin at those two surrogate extrema.  If
   ``f(q1)`` and ``f(q2)`` have different signs, or either is zero, the
   margin crosses zero inside ``Sq`` (f is continuous), so the answer is
   false.  Otherwise answer true.

Soundness follows from the intermediate value theorem.  Correctness
fails because the minimiser of ``g`` need not minimise ``f``: the margin
can dip below zero away from the two probes, and when *both* probes are
negative the same-sign rule still answers "true" — the dominant source
of the criterion's false positives in the experiments.  (On the
specific numbers of the paper's Lemma 11 sketch our probe realisation
happens to see a sign change and answers false; the regression tests
therefore pin the non-correctness with explicitly constructed
false-positive instances instead.)
"""

from __future__ import annotations

import numpy as np

from repro.core.base import DominanceCriterion, register_criterion
from repro.core.hyperbola import boundary_margin
from repro.geometry.hypersphere import Hypersphere

__all__ = ["TrigonometricCriterion"]


@register_criterion
class TrigonometricCriterion(DominanceCriterion):
    """Sign test of the true margin at the surrogate's two extrema."""

    name = "trigonometric"
    is_correct = False
    is_sound = True

    def _decide(self, sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> bool:
        direction = sb.center - sa.center
        separation = float(np.linalg.norm(direction))
        if separation == 0.0:
            # g is constant; the single probe is the query center itself.
            return boundary_margin(sa, sb, sq.center) != 0.0
        step = direction * (sq.radius / separation)
        margin_1 = boundary_margin(sa, sb, sq.center + step)
        margin_2 = boundary_margin(sa, sb, sq.center - step)
        if margin_1 == 0.0 or margin_2 == 0.0:
            return False
        if (margin_1 > 0.0) != (margin_2 > 0.0):
            return False
        return True
