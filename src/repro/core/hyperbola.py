"""Algorithm Hyperbola — the paper's optimal dominance decision (Section 4).

The decision rests on the *minimum distance difference* (MDD) condition
(Section 3.2): ``Dom(Sa, Sb, Sq)`` holds iff

    min_{q in Sq} ( Dist(cb, q) - Dist(ca, q) )  >  ra + rb.

Geometrically, the locus ``Dist(cb, x) - Dist(ca, x) = ra + rb`` is one
branch of a hyperbola (hyperboloid sheet in d dimensions) with foci
``ca`` and ``cb``; the region ``Ra`` on ``ca``'s side of that branch is
exactly where the margin exceeds ``ra + rb``, and ``Dom`` holds iff the
whole query sphere lies in ``Ra`` (Lemma 7).  The algorithm therefore:

1. returns false immediately if ``Sa`` and ``Sb`` overlap (Lemma 1);
2. returns false if the query *center* is not in ``Ra``;
3. otherwise computes ``dmin``, the distance from ``cq`` to the
   boundary, and answers ``dmin > rq``.

``dmin`` is found in O(d): after an isometric change of frame the whole
problem lives in the 2-D half-plane spanned by the focal axis and the
query center (``(t, rho)`` coordinates, see
:class:`~repro.geometry.transform.FocalFrame`), where the Lagrange
conditions for the constrained minimisation reduce to the quartic
Equation (14) of the paper.  The candidate stationary points are:

- the (up to four) points obtained from the real quartic roots through
  Equations (12) and (13);
- the two hyperbola vertices ``(+-(ra+rb)/2, 0)``, which satisfy the
  quadric equation identically and cover the degenerate Lagrange branch
  that appears when ``cq`` lies on the focal axis (``rho == 0``);
- the off-axis critical ring at ``lambda = -1/(4 rab^2)``, the other
  degenerate branch of the same case.

Squaring during the derivation makes ``F(x) = 0`` describe *both*
branches of the hyperbola, but when ``cq`` is inside ``Ra`` the near
branch is ``Ra``'s boundary (mirror symmetry in the focal bisector), so
the distance to the quadric equals the distance to the boundary.

When ``ra + rb == 0`` the locus degenerates to the perpendicular
bisector hyperplane of the segment ``ca cb`` and ``dmin = |t|``.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.core.base import DominanceCriterion, register_criterion
from repro.geometry import quartic
from repro.geometry.distance import dist
from repro.geometry.hypersphere import Hypersphere
from repro.geometry.transform import FocalFrame
from repro.obs import names

__all__ = [
    "HyperbolaCriterion",
    "min_distance_to_boundary",
    "boundary_margin",
    "dominates_with_margin",
]

# A denominator in Equations (12)/(13) smaller than this (relative to the
# coefficient scale) marks a degenerate Lagrange branch; those branches are
# covered by the explicit vertex / ring candidates instead.
_DENOM_EPS = 1e-12

# When ra + rb is this small relative to alpha the hyperbola is flat to
# within float resolution (its vertex offset is rab/2 << any distance the
# decision compares), so the perpendicular-bisector formula is used.  This
# also shields the quartic coefficients (powers up to rab^4) from
# underflow when the radii are subnormal.
_BISECTOR_THRESHOLD = 1e-9


def boundary_margin(
    sa: Hypersphere, sb: Hypersphere, point: Sequence[float] | np.ndarray
) -> float:
    """``Dist(cb, point) - Dist(ca, point) - (ra + rb)``.

    Positive values place *point* strictly inside the region ``Ra``.
    """
    return (
        dist(sb.center, point)
        - dist(sa.center, point)
        - (sa.radius + sb.radius)
    )


def _distance_to_hyperbola_2d(
    t: float,
    rho: float,
    alpha: float,
    rab: float,
    solver: "Callable[[Sequence[float]], np.ndarray] | None" = None,
) -> float:
    """Minimum distance from ``(t, rho)`` to the quadric ``F = 0``.

    Works entirely in the reduced half-plane: the quadric is
    ``x^2 / (rab/2)^2 - y^2 / (alpha^2 - (rab/2)^2) = 1`` and the query
    point is ``(t, rho)`` with ``rho >= 0``.  Requires ``0 < rab <
    2*alpha`` (the caller guarantees it via the overlap fast-path).

    *solver* substitutes a different quartic root solver (used by the
    :mod:`repro.robust` escalation ladder to drive the same candidate
    enumeration through each precision stage); the default resolves
    :func:`repro.geometry.quartic.solve_quartic_real` at call time.

    Raises :class:`ArithmeticError` when a non-finite root or input
    corrupts the candidate search — a silent ``nan`` would be dropped by
    the float comparisons and *inflate* the minimum, turning numerical
    corruption into a wrong "dominates" answer.
    """
    if solver is None:
        solver = quartic.solve_quartic_real
    rab_sq = rab * rab
    alpha_sq = alpha * alpha
    # Coefficients from Section 4.3.2 of the paper.
    a1 = (16.0 * alpha_sq - 4.0 * rab_sq) * t * t
    a2 = rab_sq * rab_sq - 4.0 * rab_sq * alpha_sq
    a3 = 4.0 * rab_sq * rho * rho
    a4 = 4.0 * rab_sq
    a5 = 4.0 * rab_sq - 16.0 * alpha_sq

    best_sq = math.inf
    candidates = 0

    def consider(x: float, y: float) -> None:
        nonlocal best_sq
        dx = t - x
        dy = rho - y
        candidate = dx * dx + dy * dy
        if candidate < best_sq:
            best_sq = candidate

    def quadric_y_sq(x: float) -> float:
        """``y^2`` such that ``(x, y)`` lies on ``F = 0`` (may be < 0)."""
        return (
            (16.0 * alpha_sq - 4.0 * rab_sq) * x * x / (4.0 * rab_sq)
            - alpha_sq
            + rab_sq / 4.0
        )

    # Vertex candidates: always on the quadric, and they complete the
    # degenerate (rho == 0) Lagrange branch.
    half_rab = rab / 2.0
    consider(half_rab, 0.0)
    consider(-half_rab, 0.0)
    candidates += 2

    # Off-axis critical ring at lambda* = -1/a4 (the other degenerate
    # branch): x is forced, y^2 follows from F(x, y) = 0.
    x_ring = t * rab_sq / (4.0 * alpha_sq)
    y_ring_sq = quadric_y_sq(x_ring)
    if y_ring_sq >= 0.0:
        consider(x_ring, math.sqrt(y_ring_sq))
        candidates += 1

    # Generic branch: quartic Equation (14) in the Lagrange multiplier.
    coeff_a = a2 * a4 * a4 * a5 * a5
    coeff_b = 2.0 * a2 * a4 * a4 * a5 + 2.0 * a2 * a4 * a5 * a5
    coeff_c = (
        a1 * a4 * a4
        + a2 * a4 * a4
        + 4.0 * a2 * a4 * a5
        + a2 * a5 * a5
        - a3 * a5 * a5
    )
    coeff_d = 2.0 * a1 * a4 + 2.0 * a2 * a4 + 2.0 * a2 * a5 - 2.0 * a3 * a5
    coeff_e = a1 + a2 - a3
    scale = max(abs(coeff_a), abs(coeff_b), abs(coeff_c), abs(coeff_d), abs(coeff_e))
    if scale > 0.0:
        # Bounded by the quartic's degree (at most four real roots), so
        # this stays O(1) work per decision despite being a Python loop.
        for lam in solver((coeff_a, coeff_b, coeff_c, coeff_d, coeff_e)):  # domlint: ignore[hot-path-loop]
            lam = float(lam)
            if not math.isfinite(lam):
                raise ArithmeticError("quartic solver produced a non-finite root")
            denom_x = 1.0 + a5 * lam
            if abs(denom_x) < _DENOM_EPS:
                continue  # degenerate branch, handled explicitly above
            x = t / denom_x
            # Re-derive y from the quadric itself rather than trusting
            # rho / (1 + a4*lam): near-degenerate roots (e.g. the double
            # root at lambda = -1/a4 when rho == 0) would otherwise
            # yield off-quadric points that underestimate the distance.
            # Every candidate considered is therefore genuinely on the
            # quadric, so the minimum can never fall below the true one.
            y_sq = quadric_y_sq(x)
            if y_sq < 0.0:
                continue  # |x| below the vertex: no such quadric point
            consider(x, math.sqrt(y_sq))
            candidates += 1

    if obs.ENABLED:
        obs.incr(names.HYPERBOLA_STATIONARY_CANDIDATES, candidates)
    if not math.isfinite(best_sq):
        # Only possible when t/rho/alpha/rab were themselves corrupted:
        # nan candidates lose every `<` comparison and leave best_sq at
        # +inf, which would certify any query radius.
        raise ArithmeticError("non-finite inputs to the boundary-distance search")
    return math.sqrt(best_sq)


def min_distance_to_boundary(
    sa: Hypersphere, sb: Hypersphere, point: "Sequence[float] | np.ndarray"
) -> float:
    """Distance from *point* to the boundary of ``Ra`` (the hyperbola).

    Exposed for diagnostics, examples and tests.  Requires ``Sa`` and
    ``Sb`` not to overlap (otherwise the boundary does not exist).
    """
    from repro.exceptions import CriterionError

    sa.require_same_dimension(sb)
    if sa.overlaps(sb):
        raise CriterionError("the boundary only exists for non-overlapping spheres")
    frame = FocalFrame(sa.center, sb.center)
    t, rho = frame.reduce(point)
    rab = sa.radius + sb.radius
    if sa.dimension == 1:
        return abs(t + rab / 2.0)
    if rab <= _BISECTOR_THRESHOLD * frame.alpha:
        return abs(t)
    return _distance_to_hyperbola_2d(t, rho, frame.alpha, rab)


def dominates_with_margin(
    sa: Hypersphere,
    sb: Hypersphere,
    sq: Hypersphere,
    epsilon: float,
) -> bool:
    """Dominance with a safety margin: ``min_q margin > ra + rb + epsilon``.

    Useful when the inputs themselves carry measurement error: a
    positive *epsilon* demands the strict inequality of Definition 1 to
    hold with room to spare, so small perturbations of the spheres
    cannot flip the answer to a false positive.  Exact via the identity
    that inflating ``Sa``'s radius by *epsilon* shifts the MDD threshold
    by exactly *epsilon*.
    """
    from repro.exceptions import CriterionError

    if epsilon < 0.0:
        raise CriterionError(f"epsilon must be non-negative, got {epsilon}")
    inflated = sa.with_radius(sa.radius + epsilon)
    return HyperbolaCriterion().dominates(inflated, sb, sq)


@register_criterion
class HyperbolaCriterion(DominanceCriterion):
    """The paper's optimal (correct + sound + O(d)) decision procedure."""

    name = "hyperbola"
    is_correct = True
    is_sound = True

    def _decide(self, sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> bool:
        if obs.ENABLED:
            obs.incr(names.HYPERBOLA_CALLS)
        # Lemma 1: overlapping spheres never dominate.
        if sa.overlaps(sb):
            if obs.ENABLED:
                obs.incr(names.HYPERBOLA_FAST_PATH_OVERLAP)
            return False
        # Step 2 side test: the query center itself must be inside Ra.
        # The plain float64 kernel is deliberately tolerance-free (the
        # certified path lives in repro.robust.ladder); Lemma 7 makes
        # the sign of the raw margin the exact decision in real
        # arithmetic.
        if boundary_margin(sa, sb, sq.center) <= 0.0:  # domlint: ignore[margin-compare]
            if obs.ENABLED:
                obs.incr(names.HYPERBOLA_FAST_PATH_CENTER_OUTSIDE)
            return False
        if sq.radius == 0.0:
            # A point query strictly inside the open region Ra is dominated.
            if obs.ENABLED:
                obs.incr(names.HYPERBOLA_FAST_PATH_POINT_QUERY)
            return True
        # Step 1: distance from cq to the boundary of Ra.
        frame = FocalFrame(sa.center, sb.center)
        t, rho = frame.reduce(sq.center)
        rab = sa.radius + sb.radius
        if sa.dimension == 1:
            # No perpendicular dimension exists: the boundary of Ra is
            # the single point at the hyperbola vertex t = -rab/2.
            if obs.ENABLED:
                obs.incr(names.HYPERBOLA_VERTEX_1D)
            dmin = abs(t + rab / 2.0)
        elif rab <= _BISECTOR_THRESHOLD * frame.alpha:
            if obs.ENABLED:
                obs.incr(names.HYPERBOLA_BISECTOR)
            dmin = abs(t)
        else:
            if obs.ENABLED:
                obs.incr(names.HYPERBOLA_QUARTIC)
            dmin = _distance_to_hyperbola_2d(t, rho, frame.alpha, rab)
        return dmin > sq.radius
