"""Per-query EXPLAIN: where one query's time and pruning power went.

The paper's evaluation (Section 7.2) reasons about queries through
their internals — node accesses, how often the cheap MinMax bounds
decide a pair versus the exact Hyperbola solve, how much Case-3
pruning bites.  The instrumentation seams built for that analysis
already tally every such event; this module captures them *per query*
and structures the result as a :class:`QueryExplain`:

- per-level node accesses of the index traversal;
- per-tier cascade outcomes (overlap reject → MinMax fast accept /
  fast reject → Hyperbola fall-through) and the Hyperbola fast-path /
  quartic breakdown behind the fall-throughs;
- certified-ladder escalations (``verified.stage.*``) when the
  verified criterion is in play;
- pruning effectiveness and answer statistics;
- budget consumption and the achieved guarantee tier when a
  :class:`repro.resilience.Budget` is active.

Activation is per call — ``knn_query(..., explain=True)`` — and costs
nothing when off: the query functions take a single ``if explain:``
branch, the same discipline as ``if obs.ENABLED:`` call sites.  When
on, the query runs under a private enabled obs scope
(:func:`repro.obs.scope`), so the captured counters are exactly this
query's delta and the ambient registry is untouched.

Determinism: everything in :meth:`QueryExplain.signature` is a pure
function of the query inputs, so two identical seeded queries produce
identical signatures (asserted by the test suite).  Wall-clock duration
lives outside the signature.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro import obs
from repro.obs import names
from repro.resilience.budget import current as current_budget

__all__ = ["QueryExplain", "ExplainedResult", "explain_capture"]

#: Traversal-stat fields lifted off a query result, in display order.
_TRAVERSAL_FIELDS = (
    "nodes_visited",
    "entries_considered",
    "dominance_checks",
    "pruned_case3",
    "uncertain_decisions",
    "absorbed_faults",
    "degraded_checks",
)

_CASCADE_KEYS = {
    names.CASCADE_CALLS: "calls",
    names.CASCADE_OVERLAP_REJECT: "overlap_reject",
    names.CASCADE_FAST_ACCEPT: "minmax_fast_accept",
    names.CASCADE_FAST_REJECT: "minmax_fast_reject",
    names.CASCADE_FALL_THROUGH: "hyperbola_fall_through",
}

_HYPERBOLA_KEYS = {
    names.HYPERBOLA_CALLS: "calls",
    names.HYPERBOLA_FAST_PATH_OVERLAP: "fast_path_overlap",
    names.HYPERBOLA_FAST_PATH_CENTER_OUTSIDE: "fast_path_center_outside",
    names.HYPERBOLA_FAST_PATH_POINT_QUERY: "fast_path_point_query",
    names.HYPERBOLA_VERTEX_1D: "vertex_1d",
    names.HYPERBOLA_BISECTOR: "bisector",
    names.HYPERBOLA_QUARTIC: "quartic",
}


@dataclass
class QueryExplain:
    """The structured execution breakdown of one query."""

    #: Query kind: ``"knn"``, ``"rknn"`` or ``"dominating"``.
    kind: str
    #: Identifying parameters (k, criterion, strategy, algorithm, index).
    params: "dict[str, Any]"
    #: Number of keys/scores in the answer.
    answer_size: int
    #: Index nodes visited per tree level (empty for flat scans).
    nodes_by_level: "dict[int, int]"
    #: Traversal statistics (nodes, entries, checks, prunes, ...).
    traversal: "dict[str, int]"
    #: Per-tier cascade outcomes (MinMax accepts/rejects, fall-throughs).
    cascade: "dict[str, int]"
    #: Hyperbola fast-path / slow-path breakdown behind fall-throughs.
    hyperbola: "dict[str, int]"
    #: Certified-ladder stage attempts (``verified.stage.<stage>`` keys).
    ladder: "dict[str, int]"
    #: Budget consumption and degradation outcome (None when unbudgeted).
    budget: "dict[str, Any] | None"
    #: Every obs counter this query incremented (the full delta).
    counters: "dict[str, int]"
    #: Wall-clock duration; NOT part of :meth:`signature`.
    duration_s: float = 0.0
    #: kNN pruning anchor distance, when the query reports one.
    distk: "float | None" = None

    @property
    def pruning_effectiveness(self) -> float:
        """Fraction of candidate decisions settled by Case-3 pruning."""
        pruned = self.traversal.get("pruned_case3", 0)
        considered = self.traversal.get("entries_considered", 0) + pruned
        return pruned / considered if considered else 0.0

    def signature(self) -> "dict[str, Any]":
        """The deterministic part: identical for identical seeded runs."""
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "answer_size": self.answer_size,
            "distk": self.distk,
            "nodes_by_level": {
                str(level): count
                for level, count in sorted(self.nodes_by_level.items())
            },
            "traversal": dict(self.traversal),
            "cascade": dict(self.cascade),
            "hyperbola": dict(self.hyperbola),
            "ladder": dict(self.ladder),
            "budget": dict(self.budget) if self.budget is not None else None,
            "counters": dict(self.counters),
        }

    def to_dict(self) -> "dict[str, Any]":
        """JSON-friendly full form (signature plus timing)."""
        payload = self.signature()
        payload["duration_s"] = self.duration_s
        payload["pruning_effectiveness"] = self.pruning_effectiveness
        return payload

    def render(self) -> str:
        """A human-readable text tree of the breakdown."""
        params = ", ".join(
            f"{key}={value}" for key, value in sorted(self.params.items())
        )
        lines = [f"{self.kind.upper()} explain ({params})"]

        answer = f"answer: {self.answer_size} object(s)"
        if self.distk is not None:
            answer += f", distk={self.distk:.6g}"
        lines.append(f"├─ {answer}")

        nodes = self.traversal.get("nodes_visited", 0)
        entries = self.traversal.get("entries_considered", 0)
        if self.nodes_by_level:
            levels = ", ".join(
                f"L{level}:{count}"
                for level, count in sorted(self.nodes_by_level.items())
            )
            lines.append(
                f"├─ traversal: {nodes} node(s) [{levels}], "
                f"{entries} entries considered"
            )
        else:
            lines.append(
                f"├─ traversal: flat scan, {entries} entries considered"
            )
        pruned = self.traversal.get("pruned_case3", 0)
        lines.append(
            f"│  └─ pruning: {pruned} Case-3 prune(s) "
            f"({100.0 * self.pruning_effectiveness:.1f}% of decisions)"
        )

        if self.cascade.get("calls"):
            lines.append(f"├─ cascade: {self.cascade['calls']} call(s)")
            tiers = [
                (label, self.cascade[key])
                for key, label in (
                    ("overlap_reject", "overlap reject"),
                    ("minmax_fast_accept", "MinMax fast-accept"),
                    ("minmax_fast_reject", "MinMax fast-reject"),
                    ("hyperbola_fall_through", "Hyperbola fall-through"),
                )
                if self.cascade.get(key)
            ]
            for i, (label, count) in enumerate(tiers):
                branch = "└─" if i == len(tiers) - 1 else "├─"
                lines.append(f"│  {branch} {label}: {count}")
        if self.hyperbola.get("calls"):
            fast = sum(
                self.hyperbola.get(key, 0)
                for key in (
                    "fast_path_overlap",
                    "fast_path_center_outside",
                    "fast_path_point_query",
                )
            )
            lines.append(
                f"├─ hyperbola: {self.hyperbola['calls']} call(s) — "
                f"{fast} fast-path, "
                f"{self.hyperbola.get('bisector', 0)} bisector, "
                f"{self.hyperbola.get('quartic', 0)} quartic"
            )
        if self.ladder:
            stages = ", ".join(
                f"{stage.rsplit('.', 1)[-1]}:{count}"
                for stage, count in sorted(self.ladder.items())
            )
            lines.append(f"├─ certified ladder: {stages}")
        uncertain = self.traversal.get("uncertain_decisions", 0)
        absorbed = self.traversal.get("absorbed_faults", 0)
        if uncertain or absorbed:
            lines.append(
                f"├─ resilience: {uncertain} uncertain decision(s), "
                f"{absorbed} absorbed fault(s)"
            )

        if self.budget is not None:
            reason = self.budget.get("exhausted")
            state = (
                "complete"
                if self.budget.get("complete", True)
                else f"PARTIAL ({reason})"
            )
            lines.append(
                f"└─ budget: {self.budget.get('candidates_charged', 0)} "
                f"candidate(s), "
                f"{self.budget.get('escalations_charged', 0)} escalation(s), "
                f"tier={self.budget.get('tier', 'optimal')}, {state}"
            )
        else:
            lines.append("└─ budget: none (unbudgeted execution)")
        return "\n".join(lines)


class ExplainedResult:
    """A query answer bundled with its :class:`QueryExplain`.

    Attribute access, iteration, length and membership forward to the
    wrapped ``result`` (mirroring
    :class:`~repro.resilience.PartialResult`), so explained call sites
    keep working against the raw answer.
    """

    __slots__ = ("result", "explain")

    def __init__(self, result: Any, explain: QueryExplain) -> None:
        self.result = result
        self.explain = explain

    def __getattr__(self, name: str) -> Any:
        return getattr(self.result, name)

    def __iter__(self) -> "Iterator[Any]":
        return iter(self.result)

    def __len__(self) -> int:
        return len(self.result)

    def __contains__(self, item: Any) -> bool:
        return item in self.result

    def __repr__(self) -> str:
        return (
            f"ExplainedResult(result={self.result!r}, "
            f"explain=<{self.explain.kind} "
            f"{self.explain.answer_size} answer(s)>)"
        )


class _ExplainCollector:
    """Mutable state one explained query writes into while running."""

    __slots__ = ("levels", "registry", "started")

    def __init__(self, registry: obs.MetricsRegistry) -> None:
        #: Per-level node-access tally, filled by the traversal.
        self.levels: "dict[int, int]" = {}
        self.registry = registry
        self.started = time.perf_counter()

    def finish(
        self, kind: str, params: "dict[str, Any]", outcome: Any
    ) -> QueryExplain:
        """Assemble the :class:`QueryExplain` from everything captured."""
        duration = time.perf_counter() - self.started
        snapshot = self.registry.collect()
        counters: "dict[str, int]" = dict(snapshot.get("counters", {}))

        traversal: "dict[str, int]" = {}
        for field_name in _TRAVERSAL_FIELDS:
            value = getattr(outcome, field_name, None)
            if isinstance(value, int):
                traversal[field_name] = value

        cascade = {
            label: counters[key]
            for key, label in _CASCADE_KEYS.items()
            if key in counters
        }
        hyperbola = {
            label: counters[key]
            for key, label in _HYPERBOLA_KEYS.items()
            if key in counters
        }
        ladder = {
            key: value
            for key, value in counters.items()
            if key.startswith("verified.stage.")
        }

        budget_info: "dict[str, Any] | None" = None
        budget = current_budget()
        report = getattr(outcome, "report", None)
        if budget is not None or report is not None:
            budget_info = {
                "complete": True,
                "tier": "optimal",
                "exhausted": None,
                "candidates_charged": 0,
                "escalations_charged": 0,
            }
            if budget is not None:
                budget_info["candidates_charged"] = budget.candidates_charged
                budget_info["escalations_charged"] = budget.escalations_charged
                budget_info["exhausted"] = budget.exhausted()
            if report is not None:
                budget_info["complete"] = bool(report.complete)
                budget_info["tier"] = report.tier.value
                if report.exhausted is not None:
                    budget_info["exhausted"] = report.exhausted

        distk = getattr(outcome, "distk", None)
        if distk is not None:
            distk = None if distk != distk or distk == float("inf") else float(distk)

        try:
            answer_size = len(outcome)
        except TypeError:
            answer_size = 0

        return QueryExplain(
            kind=kind,
            params=params,
            answer_size=answer_size,
            nodes_by_level=dict(self.levels),
            traversal=traversal,
            cascade=cascade,
            hyperbola=hyperbola,
            ladder=ladder,
            budget=budget_info,
            counters=counters,
            duration_s=duration,
            distk=distk,
        )


@contextmanager
def explain_capture() -> "Iterator[_ExplainCollector]":
    """Run one query under a private, enabled obs scope and collect.

    Yields the :class:`_ExplainCollector` whose ``levels`` dict the
    traversal fills in; call :meth:`_ExplainCollector.finish` after the
    query returns to build the :class:`QueryExplain`.  The ambient
    registry and the global enabled flag are restored on exit, so
    explaining a query never perturbs surrounding instrumentation.
    """
    registry = obs.MetricsRegistry()
    with obs.enabled_scope(True), obs.scope(registry):
        collector = _ExplainCollector(registry)
        obs.incr(names.EXPLAIN_QUERIES)
        yield collector
