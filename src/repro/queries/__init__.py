"""Query layer: the paper's kNN application plus extensions.

Section 6 of the paper adapts the classical tree-based kNN algorithms
(depth-first, Roussopoulos et al.; best-first, Hjaltason & Samet) to
hyperspheres by maintaining a *best-known list* pruned with the
dominance operator.  :mod:`repro.queries.knn` implements that adapted
algorithm with a pluggable dominance criterion;
:func:`repro.queries.knn.knn_reference` computes the exact answer of
Definition 2 for precision measurements.

Extensions (applications the paper names but does not evaluate):

- :mod:`repro.queries.rknn` — reverse-NN candidates via dominance
  pruning;
- :mod:`repro.queries.dominating` — top-k dominating queries scored
  with the vectorised kernels.
"""

from repro.queries.browse import browse
from repro.queries.dominating import (
    DominanceScore,
    dominance_scores,
    top_k_dominating,
)
from repro.queries.knn import KNNResult, knn_query, knn_reference
from repro.queries.rknn import rnn_candidates

__all__ = [
    "browse",
    "knn_query",
    "knn_reference",
    "KNNResult",
    "rnn_candidates",
    "DominanceScore",
    "dominance_scores",
    "top_k_dominating",
]
