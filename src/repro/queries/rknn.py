"""Reverse nearest-neighbour candidates via dominance pruning (extension).

The paper's introduction names RkNN queries as a second application of
the dominance operator: for ``k = 1``, an object ``Sb`` can be
discarded from the reverse-NN answer of a query ``Sq`` as soon as some
other object ``Sa`` dominates ``Sq`` with respect to ``Sb`` — every
realisation of ``Sa`` is then strictly closer to every realisation of
``Sb`` than ``Sq`` is, so ``Sq`` cannot be ``Sb``'s nearest neighbour.

The paper evaluates only the kNN application; this module is the
natural RNN counterpart, provided as an extension and exercised by the
test suite.  Note the asymmetric argument order: the *roles* rotate —
``dominates(Sa, Sq, Sb)`` asks whether ``Sa`` beats ``Sq`` from ``Sb``'s
point of view.

With an exact criterion the returned set is the exact set of objects
whose reverse-NN membership *cannot be refuted* by dominance (objects
whose uncertainty regions leave the outcome undecided remain
candidates); a correct-but-unsound criterion refutes less and returns a
superset, mirroring the kNN precision experiments.

Resilience: membership here is refute-only, so every degradation is a
*kept* candidate.  A raising criterion on one pair keeps that pair's
candidate (absorbed fault); an exhausted
:class:`repro.resilience.Budget` keeps every not-yet-examined object
and returns a :class:`repro.resilience.PartialResult` — the candidate
set is then a superset of the exact one, never missing a true
reverse-NN.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro import obs
from repro.obs import export as obs_export
from repro.obs import names
from repro.core.base import DominanceCriterion, get_criterion
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.queries.explain import ExplainedResult, explain_capture
from repro.queries.validation import validate_query
from repro.resilience.budget import current as current_budget
from repro.resilience.partial import PartialResult, ResilienceReport

if TYPE_CHECKING:
    from repro.stream.overlay import DeltaOverlay

__all__ = ["rnn_candidates"]


def rnn_candidates(
    dataset: "LinearIndex | Sequence[tuple[object, Hypersphere]]",
    query: Hypersphere,
    *,
    criterion: "DominanceCriterion | str" = "hyperbola",
    explain: bool = False,
    overlay: "DeltaOverlay | None" = None,
) -> "list | PartialResult | ExplainedResult":
    """Keys of objects that may have *query* as their nearest neighbour.

    An object ``Sb`` is pruned iff some other dataset object ``Sa``
    dominates the query with respect to ``Sb``.  Candidate generation
    uses a cheap vectorised MinMax pre-filter before falling back to the
    configured criterion, so the exact operator only runs on the
    undecided pairs.

    With the certified ``"verified"`` criterion a borderline pair is
    never mis-pruned: an UNCERTAIN decision collapses to its
    conservative fallback (``True`` only when a correct criterion
    proved the prune safe) and is tallied on the
    ``rnn.uncertain_decisions`` obs counter.

    Returns a plain list normally; a
    :class:`~repro.resilience.PartialResult` wrapping one when a
    :class:`~repro.resilience.Budget` is active in the current context;
    an :class:`~repro.queries.explain.ExplainedResult` wrapping either
    when ``explain=True`` (costs a single branch when off).

    With ``overlay`` (a :class:`repro.stream.overlay.DeltaOverlay` of
    streaming mutations) the candidate universe is the *effective*
    dataset — base entries minus tombstoned/re-inserted keys, plus the
    memtable — and both membership and refutation run over that merged
    set, so a tombstoned object can neither appear as a candidate nor
    refute one.
    """
    if overlay is not None and overlay:
        dataset = LinearIndex(overlay.fold(iter(dataset)))
        if obs.ENABLED:
            obs.incr(names.STREAM_MERGED_QUERIES)
    elif not isinstance(dataset, LinearIndex):
        dataset = LinearIndex(dataset)
    validate_query(query, dataset.dimension)
    if isinstance(criterion, str):
        criterion = get_criterion(criterion)
    event_log = obs_export.current_event_log()
    if explain:
        params = {"criterion": criterion.name, "n": len(dataset)}
        with explain_capture() as capture:
            outcome = _run_rnn(dataset, query, criterion)
            detail = capture.finish("rknn", params, outcome)
        if event_log is not None:
            event_log.emit_outcome("rknn", outcome, detail.duration_s)
        return ExplainedResult(outcome, detail)
    if event_log is None:
        return _run_rnn(dataset, query, criterion)
    started = time.perf_counter()
    outcome = _run_rnn(dataset, query, criterion)
    event_log.emit_outcome("rknn", outcome, time.perf_counter() - started)
    return outcome


def _run_rnn(
    dataset: LinearIndex,
    query: Hypersphere,
    criterion: DominanceCriterion,
) -> "list | PartialResult":
    """The validated query body (see :func:`rnn_candidates`)."""
    budget = current_budget()
    if budget is not None:
        budget.start()

    centers = dataset.centers
    radii = dataset.radii
    keys = dataset.keys
    spheres = dataset.spheres
    # Duck-typed tally of certified-criterion abstentions (see knn.py).
    uncertain_before = int(getattr(criterion, "uncertain_count", 0))
    report = ResilienceReport()
    absorbed = 0
    survivors: list = []
    for b, (key, sphere_b) in enumerate(zip(keys, spheres)):
        if budget is not None and budget.charge_candidate() is not None:
            # Out of budget: an unexamined object cannot be refuted, so
            # it stays a candidate — the answer set only widens.
            report.mark_incomplete(budget.exhausted() or "deadline")
            survivors.extend(keys[b:])
            break
        # Vectorised MinMax pre-filter (correct, so pruning is safe):
        # Sa dominates Sq wrt Sb when MaxDist(Sa, Sb) < MinDist(Sq, Sb).
        gap_qb = float(np.linalg.norm(query.center - sphere_b.center))
        min_dist_q = max(gap_qb - query.radius - sphere_b.radius, 0.0)
        gaps = np.linalg.norm(centers - sphere_b.center, axis=1)
        max_dists = gaps + radii + sphere_b.radius
        max_dists[b] = np.inf  # an object never competes against itself
        if bool(np.any(max_dists < min_dist_q)):
            continue  # refuted already by the pre-filter
        # Exact pass over the plausible competitors only.  Dominance of Sq
        # wrt Sb needs MinDist(Sa, Sb) <= MaxDist(Sq, Sb) (a necessary
        # condition), so anything farther can be skipped safely.
        plausible = np.flatnonzero(
            gaps - radii - sphere_b.radius
            <= gap_qb + query.radius + sphere_b.radius
        )
        refuted = False
        for a in plausible:
            if a == b:
                continue
            try:
                if criterion.dominates(spheres[a], query, sphere_b):
                    refuted = True
                    break
            except ArithmeticError:
                # A broken kernel cannot prove a prune safe: keep the
                # pair unrefuted and count the absorption.
                absorbed += 1
        if not refuted:
            survivors.append(key)
    report.uncertain = (
        int(getattr(criterion, "uncertain_count", 0)) - uncertain_before
    )
    report.absorbed_faults = absorbed
    if obs.ENABLED:
        obs.incr(names.RNN_QUERIES)
        obs.incr(names.RNN_UNCERTAIN_DECISIONS, report.uncertain)
        if absorbed:
            obs.incr(names.RESILIENCE_ABSORBED_FAULTS, absorbed)
    if budget is None:
        return survivors
    if obs.ENABLED:
        if report.degraded:
            obs.incr(names.RESILIENCE_DEGRADED_QUERIES)
        if not report.complete:
            obs.incr(names.RESILIENCE_PARTIAL_QUERIES)
    return PartialResult(survivors, report)
