"""Input validation shared by the query entry points.

Every public query function validates its arguments *before any work
starts* and raises :class:`~repro.exceptions.ValidationError` (a
subclass of the established :class:`~repro.exceptions.QueryError`) on
bad input.  This closes two long-standing gaps:

- ``k`` was only checked with ``k < 1``, which silently accepted
  ``True`` (an ``int`` subclass), and floats like ``2.5`` — both then
  failed much later as an unrelated ``TypeError`` inside list slicing,
  or worse, quietly ran with ``k=1``;
- a query hypersphere whose dimensionality does not match the dataset
  surfaced as a NumPy broadcast error from deep inside a traversal,
  and a query mutated to a non-finite radius after construction
  poisoned every distance bound without a diagnostic.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import GeometryError, ValidationError
from repro.geometry.hypersphere import Hypersphere

__all__ = [
    "validate_deadline_ms",
    "validate_k",
    "validate_mutation",
    "validate_query",
]


def validate_deadline_ms(value: object) -> float:
    """Check a user-supplied ``--deadline-ms`` at the CLI/serve boundary.

    Accepts an actual positive finite number (int or float, not bool)
    and returns it as ``float``.  Everything else — negative, zero,
    NaN, infinities, booleans, strings that don't parse — raises
    :class:`~repro.exceptions.ValidationError` *before* a
    :class:`~repro.resilience.Budget` is ever minted.  Zero is rejected
    here even though :class:`Budget` technically accepts it: a 0 ms
    deadline always yields an empty degraded answer, which at a user
    boundary is virtually always a typo rather than intent.
    """
    if isinstance(value, bool):
        raise ValidationError(
            f"deadline-ms must be a number of milliseconds, got {value!r}"
        )
    if isinstance(value, str):
        try:
            value = float(value)
        except ValueError:
            raise ValidationError(
                f"deadline-ms must be a number of milliseconds, got {value!r}"
            ) from None
    if not isinstance(value, (int, float, np.integer, np.floating)):
        raise ValidationError(
            f"deadline-ms must be a number of milliseconds, "
            f"got {type(value).__name__} ({value!r})"
        )
    deadline_ms = float(value)
    if not math.isfinite(deadline_ms):
        raise ValidationError(
            f"deadline-ms must be finite, got {deadline_ms!r}"
        )
    if deadline_ms <= 0.0:
        raise ValidationError(
            f"deadline-ms must be positive, got {deadline_ms!r}"
        )
    return deadline_ms


def validate_k(k: int, size: int) -> int:
    """Check that *k* is an actual integer in ``[1, size]``.

    Booleans are rejected explicitly: ``True`` satisfies ``k >= 1`` by
    integer promotion but is virtually always a bug at the call site.
    """
    if isinstance(k, bool) or not isinstance(k, (int, np.integer)):
        raise ValidationError(
            f"k must be an integer, got {type(k).__name__} ({k!r})"
        )
    if k < 1:
        raise ValidationError(f"k must be positive, got {k}")
    if k > size:
        raise ValidationError(f"k={k} exceeds the dataset size {size}")
    return int(k)


def validate_mutation(
    payload: object, dimension: "int | None" = None
) -> "tuple[str, object, Hypersphere | None]":
    """Check a streaming-mutation payload at the serve/CLI boundary.

    *payload* is the decoded JSON body of a ``POST /mutate`` request (or
    the equivalent CLI arguments): ``{"op": "insert", "key": ...,
    "center": [...], "radius": ...}`` or ``{"op": "delete", "key":
    ...}``.  Returns ``(op, key, sphere)`` with ``sphere is None`` for
    deletes.  Non-finite centers, negative or non-finite radii, a
    dimensionality mismatch against *dimension* (when given), unknown
    ops and unusable keys all raise
    :class:`~repro.exceptions.ValidationError` *before* any byte hits
    the write-ahead log.
    """
    if not isinstance(payload, dict):
        raise ValidationError(
            f"mutation must be an object, got {type(payload).__name__}"
        )
    op = payload.get("op")
    if op not in ("insert", "delete"):
        raise ValidationError(
            f"mutation op must be 'insert' or 'delete', got {op!r}"
        )
    if "key" not in payload:
        raise ValidationError("mutation must carry a 'key'")
    key = payload["key"]
    if isinstance(key, (dict, list)):
        raise ValidationError(
            f"mutation key must be a scalar, got {type(key).__name__}"
        )
    if op == "delete":
        unexpected = set(payload) - {"op", "key"}
        if unexpected:
            raise ValidationError(
                f"delete mutation has unexpected fields: {sorted(unexpected)}"
            )
        return op, key, None
    if "center" not in payload or "radius" not in payload:
        raise ValidationError("insert mutation must carry 'center' and 'radius'")
    center = payload["center"]
    if not isinstance(center, (list, tuple)) or not center:
        raise ValidationError("mutation center must be a non-empty array")
    radius = payload["radius"]
    if isinstance(radius, bool) or not isinstance(radius, (int, float)):
        raise ValidationError(
            f"mutation radius must be a number, got {type(radius).__name__}"
        )
    try:
        sphere = Hypersphere([float(c) for c in center], float(radius))
    except (GeometryError, TypeError, ValueError) as error:
        raise ValidationError(f"invalid mutation geometry: {error}") from None
    if dimension is not None and sphere.dimension != dimension:
        raise ValidationError(
            f"mutation dimension {sphere.dimension} != index dimension {dimension}"
        )
    return op, key, sphere


def validate_query(query: Hypersphere, dimension: int) -> Hypersphere:
    """Check that *query* is a finite hypersphere of the right dimension.

    The :class:`~repro.geometry.hypersphere.Hypersphere` constructor
    validates finiteness, but attributes are mutable and NumPy arrays
    are shared by reference — this re-check catches post-construction
    poisoning at the query boundary instead of inside a traversal.
    """
    if not isinstance(query, Hypersphere):
        raise ValidationError(
            f"query must be a Hypersphere, got {type(query).__name__}"
        )
    if query.dimension != dimension:
        raise ValidationError(
            f"query dimension {query.dimension} != dataset dimension {dimension}"
        )
    radius = float(query.radius)
    if not (math.isfinite(radius) and radius >= 0.0):
        raise ValidationError(
            f"query radius must be finite and non-negative, got {radius!r}"
        )
    if not np.all(np.isfinite(query.center)):
        raise ValidationError("query center must be finite in every coordinate")
    return query
