"""Distance browsing: incremental nearest-first enumeration.

Hjaltason & Samet's *distance browsing* (the paper's [15]) is the
engine behind the HS traversal: a single priority queue holding both
tree nodes (keyed by their distance lower bound) and data objects
(keyed by their actual ``MinDist``), popped in nondecreasing order.
Objects therefore stream out sorted by ``MinDist`` to the query,
lazily — ideal when the consumer does not know k in advance (the
incremental kNN of the paper's Section 5.3 references).

Works with any of this package's tree indexes (SS-tree, VP-tree,
M-tree) through the shared node interface, and with a
:class:`~repro.index.linear.LinearIndex` via a one-shot sort.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.geometry.distance import min_dist
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.resilience.budget import current as current_budget

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.index.sstree import SSTree
    from repro.index.vptree import VPTree

__all__ = ["browse"]


def browse(
    index: "SSTree | VPTree | LinearIndex",
    query: Hypersphere,
) -> Iterator[tuple[object, Hypersphere, float]]:
    """Yield ``(key, sphere, MinDist)`` in nondecreasing MinDist order.

    Lazy: consuming only the first few results touches only the part of
    the tree their distance bounds require.

    Browsing is metered like every other traversal: when a
    :class:`~repro.resilience.budget.Budget` is in scope, each expanded
    node charges ``charge_node`` and each emitted object charges
    ``charge_candidate``.  On exhaustion the generator simply stops —
    the prefix already yielded is still correct and still sorted, which
    is the honest degraded answer for an incremental enumeration.

    >>> from repro.index import SSTree
    >>> tree = SSTree.bulk_load([("a", Hypersphere([0.0], 0.5)),
    ...                          ("b", Hypersphere([9.0], 0.5))])
    >>> [key for key, _, _ in browse(tree, Hypersphere([1.0], 0.0))]
    ['a', 'b']
    """
    budget = current_budget()
    if isinstance(index, LinearIndex):
        gaps = index.min_dists(query)
        for i in np.argsort(gaps, kind="stable"):
            if budget is not None and budget.charge_candidate() is not None:
                return  # exhausted: the sorted prefix stands
            yield index.keys[i], index.spheres[i], float(gaps[i])
        return

    counter = itertools.count()
    # Heap items: (distance, tiebreak, is_object, payload).  Objects at
    # the same distance as a node must come out only once the node is
    # expanded; the plain distance ordering already guarantees
    # correctness because a node's bound lower-bounds its members.
    heap: list = [(index.root.min_dist(query), next(counter), False, index.root)]
    while heap:
        gap, _, is_object, payload = heapq.heappop(heap)
        if is_object:
            if budget is not None and budget.charge_candidate() is not None:
                return  # exhausted: the sorted prefix stands
            key, sphere = payload
            yield key, sphere, gap
        elif payload.is_leaf:
            if budget is not None and budget.charge_node() is not None:
                return
            for key, sphere in payload.entries:
                heapq.heappush(
                    heap,
                    (min_dist(sphere, query), next(counter), True, (key, sphere)),
                )
        else:
            if budget is not None and budget.charge_node() is not None:
                return
            for child in payload.children:
                heapq.heappush(
                    heap, (child.min_dist(query), next(counter), False, child)
                )
