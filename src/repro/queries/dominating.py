"""Top-k dominating queries over hypersphere databases (extension).

The paper's introduction lists *dominating queries* among the
applications of the spatial dominance operator (citing Yiu & Mamoulis
and Lian & Chen).  Given a query hypersphere ``Sq``, the *dominance
score* of an object ``S`` is the number of other objects it dominates
with respect to ``Sq`` — objects that are *certainly farther* from every
possible query position.  A top-k dominating query returns the k
objects with the highest scores: robust "best answers" under
uncertainty, without a distance threshold.

The implementation evaluates the n x (n-1) pair matrix with the
vectorised batch kernels (one kernel invocation per candidate object),
so scoring stays NumPy-bound rather than Python-bound.  Any registered
criterion works; with a correct-but-unsound criterion the scores are
lower bounds of the true scores (some dominations go uncounted), which
the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.batch import batch_evaluate
from repro.exceptions import QueryError
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex

__all__ = ["DominanceScore", "dominance_scores", "top_k_dominating"]


@dataclass(frozen=True)
class DominanceScore:
    """An object's key and how many other objects it dominates."""

    key: object
    score: int


def dominance_scores(
    dataset: "LinearIndex | Sequence[tuple[object, Hypersphere]]",
    query: Hypersphere,
    *,
    criterion: str = "hyperbola",
) -> list[DominanceScore]:
    """The dominance score of every object, in dataset order."""
    if not isinstance(dataset, LinearIndex):
        dataset = LinearIndex(dataset)
    if query.dimension != dataset.dimension:
        raise QueryError(
            f"query dimension {query.dimension} != dataset dimension "
            f"{dataset.dimension}"
        )
    n = len(dataset)
    centers = dataset.centers
    radii = dataset.radii
    cq = np.broadcast_to(query.center, (n, query.dimension))
    rq = np.full(n, query.radius)

    scores = []
    for i, key in enumerate(dataset.keys):
        ca = np.broadcast_to(centers[i], (n, query.dimension))
        ra = np.full(n, radii[i])
        dominated = batch_evaluate(criterion, ca, centers, cq, ra, radii, rq)
        dominated[i] = False  # self-domination is impossible anyway
        scores.append(DominanceScore(key=key, score=int(np.count_nonzero(dominated))))
    return scores


def top_k_dominating(
    dataset: "LinearIndex | Sequence[tuple[object, Hypersphere]]",
    query: Hypersphere,
    k: int,
    *,
    criterion: str = "hyperbola",
) -> list[DominanceScore]:
    """The k objects with the highest dominance scores (ties by order)."""
    if k < 1:
        raise QueryError(f"k must be positive, got {k}")
    scores = dominance_scores(dataset, query, criterion=criterion)
    if k > len(scores):
        raise QueryError(f"k={k} exceeds the dataset size {len(scores)}")
    ranked = sorted(
        range(len(scores)), key=lambda i: (-scores[i].score, i)
    )
    return [scores[i] for i in ranked[:k]]
