"""Top-k dominating queries over hypersphere databases (extension).

The paper's introduction lists *dominating queries* among the
applications of the spatial dominance operator (citing Yiu & Mamoulis
and Lian & Chen).  Given a query hypersphere ``Sq``, the *dominance
score* of an object ``S`` is the number of other objects it dominates
with respect to ``Sq`` — objects that are *certainly farther* from every
possible query position.  A top-k dominating query returns the k
objects with the highest scores: robust "best answers" under
uncertainty, without a distance threshold.

The implementation evaluates the n x (n-1) pair matrix with the
vectorised batch kernels (one kernel invocation per candidate object),
so scoring stays NumPy-bound rather than Python-bound.  Any registered
criterion works; with a correct-but-unsound criterion the scores are
lower bounds of the true scores (some dominations go uncounted), which
the test suite asserts.

Resilience: scores only ever *undercount* under degradation, which is
the established conservative direction here (unsound criteria already
undercount).  A raising batch kernel falls back to the MinMax batch
kernel for that row (absorbed fault); an exhausted
:class:`repro.resilience.Budget` scores the remaining rows 0 and
returns a :class:`repro.resilience.PartialResult` flagged incomplete.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro import obs
from repro.obs import export as obs_export
from repro.obs import names
from repro.core.batch import batch_evaluate
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.queries.explain import ExplainedResult, explain_capture
from repro.queries.validation import validate_k, validate_query
from repro.resilience.budget import current as current_budget
from repro.resilience.partial import PartialResult, ResilienceReport

if TYPE_CHECKING:
    from repro.stream.overlay import DeltaOverlay

__all__ = ["DominanceScore", "dominance_scores", "top_k_dominating"]


@dataclass(frozen=True)
class DominanceScore:
    """An object's key and how many other objects it dominates."""

    key: object
    score: int


def dominance_scores(
    dataset: "LinearIndex | Sequence[tuple[object, Hypersphere]]",
    query: Hypersphere,
    *,
    criterion: str = "hyperbola",
    overlay: "DeltaOverlay | None" = None,
) -> "list[DominanceScore] | PartialResult":
    """The dominance score of every object, in dataset order.

    Returns a plain list normally; a
    :class:`~repro.resilience.PartialResult` wrapping one when a
    :class:`~repro.resilience.Budget` is active in the current context.
    With ``overlay`` the scores are computed over the effective
    streaming dataset (base minus shadowed keys, plus the memtable).
    """
    if overlay is not None and overlay:
        dataset = LinearIndex(overlay.fold(iter(dataset)))
        if obs.ENABLED:
            obs.incr(names.STREAM_MERGED_QUERIES)
    elif not isinstance(dataset, LinearIndex):
        dataset = LinearIndex(dataset)
    validate_query(query, dataset.dimension)
    budget = current_budget()
    if budget is not None:
        budget.start()
    n = len(dataset)
    centers = dataset.centers
    radii = dataset.radii
    cq = np.broadcast_to(query.center, (n, query.dimension))
    rq = np.full(n, query.radius)

    report = ResilienceReport()
    absorbed = 0
    scores = []
    for i, key in enumerate(dataset.keys):
        if budget is not None and budget.charge_candidate(n) is not None:
            # Out of budget: the remaining rows stay unscored (score 0,
            # the universal lower bound) and the result is flagged.
            report.mark_incomplete(budget.exhausted() or "deadline")
            scores.extend(
                DominanceScore(key=late_key, score=0)
                for late_key in dataset.keys[i:]
            )
            break
        ca = np.broadcast_to(centers[i], (n, query.dimension))
        ra = np.full(n, radii[i])
        try:
            dominated = batch_evaluate(criterion, ca, centers, cq, ra, radii, rq)
        except ArithmeticError:
            # Broken kernel: redo the row with the conservative MinMax
            # batch kernel, which can only undercount dominations.
            absorbed += 1
            report.mark_conservative("row rescored with the MinMax kernel")
            try:
                dominated = batch_evaluate(
                    "minmax", ca, centers, cq, ra, radii, rq
                )
            except ArithmeticError:
                absorbed += 1
                dominated = np.zeros(n, dtype=bool)
        dominated[i] = False  # self-domination is impossible anyway
        scores.append(DominanceScore(key=key, score=int(np.count_nonzero(dominated))))
    report.absorbed_faults = absorbed
    if obs.ENABLED and absorbed:
        obs.incr(names.RESILIENCE_ABSORBED_FAULTS, absorbed)
    if budget is None:
        return scores
    if obs.ENABLED:
        if report.degraded:
            obs.incr(names.RESILIENCE_DEGRADED_QUERIES)
        if not report.complete:
            obs.incr(names.RESILIENCE_PARTIAL_QUERIES)
    return PartialResult(scores, report)


def top_k_dominating(
    dataset: "LinearIndex | Sequence[tuple[object, Hypersphere]]",
    query: Hypersphere,
    k: int,
    *,
    criterion: str = "hyperbola",
    explain: bool = False,
    overlay: "DeltaOverlay | None" = None,
) -> "list[DominanceScore] | PartialResult | ExplainedResult":
    """The k objects with the highest dominance scores (ties by order).

    Returns a plain list normally; a
    :class:`~repro.resilience.PartialResult` wrapping one (and carrying
    the scoring pass's report) when a budget is active; an
    :class:`~repro.queries.explain.ExplainedResult` wrapping either when
    ``explain=True`` (costs a single branch when off).  With ``overlay``
    the ranking runs over the effective streaming dataset (base minus
    shadowed keys, plus the memtable).
    """
    if overlay is not None and overlay:
        dataset = LinearIndex(overlay.fold(iter(dataset)))
        if obs.ENABLED:
            obs.incr(names.STREAM_MERGED_QUERIES)
    elif not isinstance(dataset, LinearIndex):
        dataset = LinearIndex(dataset)
    k = validate_k(k, len(dataset))
    event_log = obs_export.current_event_log()
    if explain:
        params = {"k": k, "criterion": criterion, "n": len(dataset)}
        with explain_capture() as capture:
            outcome = _run_top_k(dataset, query, k, criterion)
            detail = capture.finish("dominating", params, outcome)
        if event_log is not None:
            event_log.emit_outcome("dominating", outcome, detail.duration_s)
        return ExplainedResult(outcome, detail)
    if event_log is None:
        return _run_top_k(dataset, query, k, criterion)
    started = time.perf_counter()
    outcome = _run_top_k(dataset, query, k, criterion)
    event_log.emit_outcome("dominating", outcome, time.perf_counter() - started)
    return outcome


def _run_top_k(
    dataset: LinearIndex,
    query: Hypersphere,
    k: int,
    criterion: str,
) -> "list[DominanceScore] | PartialResult":
    """The validated query body (see :func:`top_k_dominating`)."""
    scored = dominance_scores(dataset, query, criterion=criterion)
    if isinstance(scored, PartialResult):
        scores: "list[DominanceScore]" = scored.value
        report = scored.report
    else:
        scores = scored
        report = None
    ranked = sorted(
        range(len(scores)), key=lambda i: (-scores[i].score, i)
    )
    top = [scores[i] for i in ranked[:k]]
    if report is None:
        return top
    return PartialResult(top, report)
