"""The kNN query on hypersphere databases (Section 6 of the paper).

Definition 2: given a query hypersphere ``Sq`` and a database ``D``,
let ``Sk`` be the object with the k-th smallest ``MaxDist`` to ``Sq``;
the answer is every object of ``D`` **not dominated by** ``Sk`` with
respect to ``Sq``.  (``Sk`` itself is always an answer, since nothing
dominates itself.)

The adapted tree algorithm maintains a best-known list ``L`` sorted by
``MaxDist`` and, for every candidate ``S`` encountered once ``|L| >= k``
(Lemmas 9 and 10), applies the paper's three cases against
``distk`` (the k-th smallest ``MaxDist`` in ``L``):

- Case 1 — ``distmax <= distk``: insert ``S``; with the new ``Sk``,
  evict every list member dominated by ``Sk``.
- Case 2 — ``distmin <= distk < distmax``: keep ``S`` only if ``Sk``
  does *not* dominate it.
- Case 3 — ``distmin > distk``: prune ``S`` outright (Lemma 9 — this
  prune is valid for *any* correct criterion, because it is exactly the
  MinMax criterion, which is correct).

The dominance checks in cases 1 and 2 are delegated to the configured
criterion: with Hyperbola the answer is exact; with a non-sound
criterion some dominated objects survive, which is precisely the
precision loss the paper's Figures 13–16 measure.

Two traversals are provided, as in the paper's experiments:

- ``"df"`` — depth-first (Roussopoulos et al.), children visited in
  ascending ``MinDist`` order, subtrees pruned when their ``MinDist``
  exceeds ``distk``;
- ``"hs"`` — best-first (Hjaltason & Samet), a global priority queue on
  ``MinDist``, terminating when the nearest pending node is prunable.

A semantic note (measured in EXPERIMENTS.md): pruning against the
*current* ``Sk`` is stronger than Definition 2, which only excludes
objects dominated by the *final* ``Sk``.  Three properties still hold
(the test suite asserts them):

- the true ``Sk`` always survives — an anchor can never dominate it,
  because domination implies a strictly larger ``MaxDist``;
- hence the final cleanup filters with the true ``Sk`` and, with the
  exact criterion, the answer is a *subset* of the Definition-2 answer
  (precision 100%, the quantity the paper reports);
- some Definition-2 answers may be pruned by intermediate anchors, so
  coverage can be below 100%.  ``algorithm="two-phase"`` removes that
  gap: it first finds ``Sk`` exactly (a classic best-first top-k by
  ``MaxDist``), then collects every non-dominated object in a second
  pruned traversal — exactly Definition 2 when run with Hyperbola.

Resilience (``repro.resilience``)
---------------------------------

Two orthogonal defences make the query path production-safe:

**Fault absorption (always on).**  Every value that decides a *prune*
— node distance bounds, per-sphere MinDist/MaxDist, the dominance
criterion itself — is guarded: a raising kernel or a non-finite bound
collapses to the no-prune direction (bound 0, MaxDist ``inf``, or a
MinMax fallback decision) and is tallied on
:attr:`KNNResult.absorbed_faults`.  A corrupted value can therefore
widen the answer, never silently narrow it.

**Budgets (opt-in).**  When a :class:`repro.resilience.Budget` is
active (:func:`repro.resilience.scope`), the traversal charges it per
node and per entry.  On exhaustion the traversal stops, remaining
dominance filtering degrades to the conservative MinMax tier, and the
query returns a :class:`repro.resilience.PartialResult` wrapping the
:class:`KNNResult` together with a
:class:`repro.resilience.ResilienceReport` (completeness, achieved
guarantee tier, uncertain and absorbed-fault counts) — it never raises
for running out of time.  Without an active budget the return type and
behaviour are unchanged.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro import obs
from repro.obs import export as obs_export
from repro.obs import names
from repro.core.base import DominanceCriterion, get_criterion
from repro.exceptions import QueryError
from repro.geometry.distance import max_dist, min_dist
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.index.sstree import SSTree, SSTreeNode
from repro.index.vptree import VPTree
from repro.queries.explain import ExplainedResult, explain_capture
from repro.queries.validation import validate_k, validate_query
from repro.resilience.budget import Budget
from repro.resilience.budget import current as current_budget
from repro.resilience.partial import PartialResult, ResilienceReport

if TYPE_CHECKING:
    from repro.stream.overlay import DeltaOverlay

__all__ = ["KNNResult", "knn_query", "knn_reference"]


def _record_traversal(index: object, result: "KNNResult") -> None:
    """Feed one query's tallies to the index stats and the obs registry.

    Duck-typed indexes without the stats mixin are simply skipped.  A
    flat :class:`LinearIndex` scan counts as one node access (the whole
    structure is one "node").
    """
    node_accesses = result.nodes_visited
    if node_accesses == 0 and isinstance(index, LinearIndex):
        node_accesses = 1
    recorder = getattr(index, "record_query", None)
    if recorder is not None:
        recorder(
            node_accesses=node_accesses,
            entries_scanned=result.entries_considered,
        )
    if obs.ENABLED:
        obs.incr(names.KNN_QUERIES)
        obs.incr(names.KNN_NODE_ACCESSES, node_accesses)
        obs.incr(names.KNN_ENTRIES_CONSIDERED, result.entries_considered)
        obs.incr(names.KNN_DOMINANCE_CHECKS, result.dominance_checks)
        obs.incr(names.KNN_PRUNED_CASE3, result.pruned_case3)
        obs.incr(names.KNN_UNCERTAIN_DECISIONS, result.uncertain_decisions)
        obs.observe(names.KNN_ANSWER_SIZE, len(result.keys))
        if result.absorbed_faults:
            obs.incr(names.RESILIENCE_ABSORBED_FAULTS, result.absorbed_faults)


def _jsonable_key(key: object) -> object:
    """Entry keys restricted to JSON scalars (tuples become lists)."""
    if key is None or isinstance(key, (bool, int, float, str)):
        return key
    if isinstance(key, tuple):
        return [_jsonable_key(item) for item in key]
    return str(key)


def _uncertain_count(criterion: object) -> int:
    """Running UNCERTAIN tally of a certified criterion (0 otherwise).

    Duck-typed on the ``uncertain_count`` attribute of
    :class:`~repro.robust.verified.VerifiedHyperbola`, so the query
    layer needs no dependency on :mod:`repro.robust`.
    """
    return int(getattr(criterion, "uncertain_count", 0))


@dataclass
class KNNResult:
    """Answer set and traversal statistics of one kNN query."""

    keys: list
    spheres: list[Hypersphere]
    distk: float
    nodes_visited: int = 0
    entries_considered: int = 0
    dominance_checks: int = 0
    pruned_case3: int = 0
    #: Dominance checks a certified criterion (e.g. ``"verified"``)
    #: answered UNCERTAIN during this query, falling back to its
    #: conservative boolean; always 0 for plain boolean criteria.
    uncertain_decisions: int = 0
    #: Corrupted intermediates (non-finite bounds, raising kernels) the
    #: query layer detected and absorbed by refusing to prune.
    absorbed_faults: int = 0
    #: Dominance filters that ran at the conservative MinMax tier or
    #: were skipped outright because an execution budget ran out.
    degraded_checks: int = 0

    def __len__(self) -> int:
        return len(self.keys)

    def key_set(self) -> set:
        """The answer keys as a set (order is not meaningful)."""
        return set(self.keys)

    def to_dict(self) -> dict:
        """A JSON-friendly form: answer keys, distk and the stat tallies.

        The spheres are deliberately omitted — callers that need the
        geometry have the keys to look it up, and the serialised form is
        what crosses the CLI ``--json`` and HTTP service boundaries.
        """
        return {
            "keys": [_jsonable_key(key) for key in self.keys],
            "distk": self.distk,
            "nodes_visited": self.nodes_visited,
            "entries_considered": self.entries_considered,
            "dominance_checks": self.dominance_checks,
            "pruned_case3": self.pruned_case3,
            "uncertain_decisions": self.uncertain_decisions,
            "absorbed_faults": self.absorbed_faults,
            "degraded_checks": self.degraded_checks,
        }


# ----------------------------------------------------------------------
# Fault-absorbing bound evaluation.  Every helper maps a raising kernel
# or a non-finite value to the *no-prune* direction and tallies it, so
# corruption can only widen an answer.
# ----------------------------------------------------------------------
def _safe_node_min_dist(
    node: object, query: Hypersphere, result: KNNResult
) -> float:
    try:
        value = node.min_dist(query)  # type: ignore[attr-defined]
    except ArithmeticError:
        result.absorbed_faults += 1
        return 0.0
    if not math.isfinite(value):
        result.absorbed_faults += 1
        return 0.0
    return float(value)


def _safe_node_max_dist_lower_bound(
    node: object, query: Hypersphere, result: KNNResult
) -> float:
    try:
        value = node.max_dist_lower_bound(query)  # type: ignore[attr-defined]
    except ArithmeticError:
        result.absorbed_faults += 1
        return 0.0
    if not math.isfinite(value):
        result.absorbed_faults += 1
        return 0.0
    return float(value)


def _safe_sphere_max_dist(
    sphere: Hypersphere, query: Hypersphere, result: KNNResult
) -> float:
    try:
        value = max_dist(sphere, query)
    except ArithmeticError:
        result.absorbed_faults += 1
        return math.inf
    if not math.isfinite(value):
        result.absorbed_faults += 1
        return math.inf
    return float(value)


def _safe_sphere_min_dist(
    sphere: Hypersphere, query: Hypersphere, result: KNNResult
) -> float:
    try:
        value = min_dist(sphere, query)
    except ArithmeticError:
        result.absorbed_faults += 1
        return 0.0
    if not math.isfinite(value):
        result.absorbed_faults += 1
        return 0.0
    return float(value)


class _BestKnownList:
    """The list ``L``: entries sorted by ``MaxDist`` to the query."""

    def __init__(
        self, k: int, query: Hypersphere, criterion: DominanceCriterion
    ) -> None:
        self._k = k
        self._query = query
        self._criterion = criterion
        self._fallback = get_criterion("minmax")
        self._degraded = criterion is self._fallback
        # Parallel, maxdist-sorted storage; the tiebreaker keeps sort
        # stability without ever comparing keys or spheres.
        self._maxdists: list[float] = []
        self._rows: list[tuple[float, int, object, Hypersphere]] = []
        self._tiebreak = itertools.count()
        self.dominance_checks = 0
        self.pruned_case3 = 0
        self.absorbed_faults = 0
        self.degraded_checks = 0

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def distk(self) -> float:
        """The k-th smallest ``MaxDist`` in L (inf while |L| < k)."""
        if len(self._rows) < self._k:
            return float("inf")
        return self._maxdists[self._k - 1]

    def degrade(self) -> None:
        """Drop to the conservative MinMax tier for every later check.

        Called when the execution budget runs out: MinMax is correct
        (never mis-prunes), so all subsequent filtering stays safe while
        costing O(d) instead of a quartic solve per pair.
        """
        self._criterion = self._fallback
        self._degraded = True

    def _kth_sphere(self) -> Hypersphere:
        return self._rows[self._k - 1][3]

    def _insert(self, dist_max: float, key: object, sphere: Hypersphere) -> None:
        row = (dist_max, next(self._tiebreak), key, sphere)
        at = bisect.bisect_left(self._rows, row)
        self._rows.insert(at, row)
        self._maxdists.insert(at, dist_max)

    def _safe_max_dist(self, sphere: Hypersphere) -> float:
        try:
            value = max_dist(sphere, self._query)
        except ArithmeticError:
            self.absorbed_faults += 1
            return math.inf
        if not math.isfinite(value):
            self.absorbed_faults += 1
            return math.inf
        return float(value)

    def _safe_min_dist(self, sphere: Hypersphere) -> float:
        try:
            value = min_dist(sphere, self._query)
        except ArithmeticError:
            self.absorbed_faults += 1
            return 0.0
        if not math.isfinite(value):
            self.absorbed_faults += 1
            return 0.0
        return float(value)

    def _dominates(self, kth: Hypersphere, sphere: Hypersphere) -> bool:
        """One guarded dominance check (the only place pruning can err).

        A raising criterion falls back to MinMax; a raising fallback
        answers ``False`` (keep) — both directions are conservative.
        """
        self.dominance_checks += 1
        if self._degraded:
            self.degraded_checks += 1
        try:
            return bool(self._criterion.dominates(kth, sphere, self._query))
        except ArithmeticError:
            self.absorbed_faults += 1
        try:
            return bool(self._fallback.dominates(kth, sphere, self._query))
        except ArithmeticError:
            self.absorbed_faults += 1
            return False

    def offer(self, key: object, sphere: Hypersphere) -> None:
        """Process one candidate through the paper's three cases."""
        dist_max = self._safe_max_dist(sphere)
        if len(self._rows) < self._k:
            self._insert(dist_max, key, sphere)
            return
        distk = self.distk
        dist_min = self._safe_min_dist(sphere)
        if dist_min > distk:  # Case 3
            self.pruned_case3 += 1
            return
        if dist_max <= distk:  # Case 1
            self._insert(dist_max, key, sphere)
            self._evict_dominated()
            return
        # Case 2: distmin <= distk < distmax.
        if not self._dominates(self._kth_sphere(), sphere):
            self._insert(dist_max, key, sphere)

    def _evict_dominated(self) -> None:
        """Drop every member dominated by the (new) k-th hypersphere."""
        kth = self._kth_sphere()
        survivors = []
        for i, row in enumerate(self._rows):
            if i < self._k:  # the first k define distk; Sk never self-dominates
                survivors.append(row)
                continue
            if not self._dominates(kth, row[3]):
                survivors.append(row)
        if len(survivors) != len(self._rows):
            self._rows = survivors
            self._maxdists = [row[0] for row in survivors]

    def finalize(self) -> tuple[list, list[Hypersphere], float]:
        """Final cleanup pass: re-apply dominance by the final Sk."""
        if len(self._rows) < self._k:
            return (
                [row[2] for row in self._rows],
                [row[3] for row in self._rows],
                float("inf"),
            )
        kth = self._kth_sphere()
        keys, spheres = [], []
        for i, row in enumerate(self._rows):
            if i >= self._k:
                if self._dominates(kth, row[3]):
                    continue
            keys.append(row[2])
            spheres.append(row[3])
        return keys, spheres, self.distk


class _ShadowedOffers:
    """Offer filter that hides overlay-shadowed base entries.

    A streaming overlay (:mod:`repro.stream.overlay`) tombstones or
    re-inserts keys whose base-index copies must not participate in the
    answer.  The traversals only need ``offer`` and ``distk``, so this
    thin proxy drops shadowed candidates before they ever reach the
    best-known list — everything that survives runs through the exact
    same certified cascade.
    """

    __slots__ = ("_best", "_shadowed", "tombstone_hits")

    def __init__(
        self, best: _BestKnownList, shadowed: "frozenset[object]"
    ) -> None:
        self._best = best
        self._shadowed = shadowed
        self.tombstone_hits = 0

    @property
    def distk(self) -> float:
        return self._best.distk

    def offer(self, key: object, sphere: Hypersphere) -> None:
        if key in self._shadowed:
            self.tombstone_hits += 1
            return
        self._best.offer(key, sphere)


def _wrap_partial(result: KNNResult, budget: Budget) -> PartialResult:
    """Assemble the :class:`ResilienceReport` for one budgeted query."""
    report = ResilienceReport()
    reason = budget.exhausted()
    if reason is not None:
        report.mark_incomplete(reason)
    if result.degraded_checks:
        report.mark_conservative(
            "dominance filtering degraded to the MinMax tier"
        )
    report.uncertain = result.uncertain_decisions
    report.absorbed_faults = result.absorbed_faults
    if obs.ENABLED:
        if report.degraded:
            obs.incr(names.RESILIENCE_DEGRADED_QUERIES)
        if not report.complete:
            obs.incr(names.RESILIENCE_PARTIAL_QUERIES)
    return PartialResult(result, report)


def knn_query(
    index: "SSTree | VPTree | LinearIndex",
    query: Hypersphere,
    k: int,
    *,
    criterion: "DominanceCriterion | str" = "hyperbola",
    strategy: str = "hs",
    algorithm: str = "incremental",
    explain: bool = False,
    overlay: "DeltaOverlay | None" = None,
) -> "KNNResult | PartialResult | ExplainedResult":
    """Answer the Definition-2 kNN query over *index*.

    Parameters
    ----------
    index:
        An :class:`~repro.index.sstree.SSTree` or
        :class:`~repro.index.vptree.VPTree` (traversed with pruning), or
        a :class:`~repro.index.linear.LinearIndex` (scanned).  Any tree
        whose nodes expose ``is_leaf`` / ``entries`` / ``children`` /
        ``min_dist`` / ``max_dist_lower_bound`` works.
    query:
        The query hypersphere ``Sq``.
    k:
        Number of neighbours anchoring ``Sk`` (``1 <= k <= |D|``).
    criterion:
        Dominance criterion instance or registry name.  Hyperbola gives
        the exact answer; correct-but-unsound criteria return supersets.
    strategy:
        ``"hs"`` (best-first) or ``"df"`` (depth-first); ignored for a
        linear index.
    algorithm:
        ``"incremental"`` — the paper's single-pass best-known list
        (Section 6), or ``"two-phase"`` — the Definition-2-exact
        variant (find ``Sk`` first, then collect survivors).
    overlay:
        An optional :class:`repro.stream.overlay.DeltaOverlay` of
        streaming mutations to merge at query time.  Base entries whose
        key is tombstoned or re-inserted are excluded; memtable entries
        run through the same certified cascade as base entries.  With
        ``algorithm="two-phase"`` the effective dataset is materialised
        and answered exactly (Definition 2 over base ⊖ shadowed ⊕
        memtable); the incremental path offers memtable entries first
        and shadow-filters the traversal.
    explain:
        When true, run the query under a private enabled obs scope and
        return an :class:`~repro.queries.explain.ExplainedResult`
        carrying the answer plus a structured
        :class:`~repro.queries.explain.QueryExplain` (per-level node
        accesses, cascade tiers, pruning effectiveness, budget use).
        Costs a single branch when off.

    Returns
    -------
    A plain :class:`KNNResult` normally; a
    :class:`~repro.resilience.PartialResult` wrapping one when a
    :class:`~repro.resilience.Budget` is active in the current context
    (see :func:`repro.resilience.scope`); an
    :class:`~repro.queries.explain.ExplainedResult` wrapping either
    when ``explain=True``.
    """
    if overlay is not None and not overlay:
        overlay = None  # an empty overlay merges to the plain query
    if overlay is None:
        k = validate_k(k, len(index))
        validate_query(query, index.dimension)
    elif algorithm == "two-phase":
        validate_query(query, index.dimension)
        # Materialise the effective dataset once: the two-phase path is
        # Definition-2-exact over whatever index it scans, so folding
        # keeps exactness while making the merge trivial.
        folded = overlay.fold(iter(index))
        k = validate_k(k, len(folded))
        index = LinearIndex(folded)
        if obs.ENABLED:
            obs.incr(names.STREAM_MERGED_QUERIES)
        overlay = None
    else:
        validate_query(query, index.dimension)
        shadowed = overlay.shadowed_keys()
        live = sum(1 for key, _ in index if key not in shadowed)
        k = validate_k(k, live + len(overlay))
    if isinstance(criterion, str):
        criterion = get_criterion(criterion)
    event_log = obs_export.current_event_log()
    if explain:
        params = {
            "k": k,
            "criterion": criterion.name,
            "strategy": strategy,
            "algorithm": algorithm,
            "index": type(index).__name__,
        }
        if overlay is not None:
            params["overlay"] = len(overlay)
        with explain_capture() as capture:
            outcome = _run_knn(
                index, query, k, criterion, strategy, algorithm,
                levels=capture.levels, overlay=overlay,
            )
            detail = capture.finish("knn", params, outcome)
        if event_log is not None:
            event_log.emit_outcome("knn", outcome, detail.duration_s)
        return ExplainedResult(outcome, detail)
    if event_log is None:
        return _run_knn(index, query, k, criterion, strategy, algorithm,
                        overlay=overlay)
    started = time.perf_counter()
    outcome = _run_knn(index, query, k, criterion, strategy, algorithm,
                       overlay=overlay)
    event_log.emit_outcome("knn", outcome, time.perf_counter() - started)
    return outcome


def _run_knn(
    index: "SSTree | VPTree | LinearIndex",
    query: Hypersphere,
    k: int,
    criterion: DominanceCriterion,
    strategy: str,
    algorithm: str,
    levels: "dict[int, int] | None" = None,
    overlay: "DeltaOverlay | None" = None,
) -> "KNNResult | PartialResult":
    """The validated query body (see :func:`knn_query` for semantics)."""
    budget = current_budget()
    if budget is not None:
        budget.start()
    if algorithm == "two-phase":
        # knn_query folds an overlay into a LinearIndex before reaching
        # this branch, so the two-phase body never sees one.
        result = _knn_two_phase(
            index, query, k, criterion, strategy, budget, levels
        )
        return result if budget is None else _wrap_partial(result, budget)
    if algorithm != "incremental":
        raise QueryError(
            f"unknown algorithm {algorithm!r}; use 'incremental' or 'two-phase'"
        )

    best = _BestKnownList(k, query, criterion)
    result = KNNResult(keys=[], spheres=[], distk=float("inf"))
    uncertain_before = _uncertain_count(criterion)

    offers: "_BestKnownList | _ShadowedOffers" = best
    if overlay is not None:
        # Memtable entries go first: a deterministic offer order, and
        # distk can only shrink, so every later Case-3 prune stays valid.
        if budget is None:
            for key, sphere in overlay.entries():
                result.entries_considered += 1
                best.offer(key, sphere)
        else:
            for key, sphere in overlay.entries():
                if budget.charge_candidate() is not None:
                    break
                result.entries_considered += 1
                best.offer(key, sphere)
        shadowed = overlay.shadowed_keys()
        if shadowed:
            offers = _ShadowedOffers(best, shadowed)
        if obs.ENABLED:
            obs.incr(names.STREAM_MERGED_QUERIES)

    if isinstance(index, LinearIndex):
        if budget is None:
            for key, sphere in index:
                result.entries_considered += 1
                offers.offer(key, sphere)
        else:
            for key, sphere in index:
                if budget.charge_candidate() is not None:
                    break
                result.entries_considered += 1
                offers.offer(key, sphere)
    elif strategy == "df":
        _depth_first(index.root, query, offers, result, budget, levels=levels)
    elif strategy == "hs":
        _best_first(index.root, query, offers, result, budget, levels=levels)
    else:
        raise QueryError(f"unknown strategy {strategy!r}; use 'df' or 'hs'")

    if isinstance(offers, _ShadowedOffers) and obs.ENABLED:
        if offers.tombstone_hits:
            obs.incr(names.STREAM_TOMBSTONE_HITS, offers.tombstone_hits)

    if budget is not None and budget.exhausted() is not None:
        # Out of budget: the remaining filtering work (the finalize
        # pass) degrades to the conservative MinMax tier.
        best.degrade()
    result.keys, result.spheres, result.distk = best.finalize()
    result.dominance_checks = best.dominance_checks
    result.pruned_case3 = best.pruned_case3
    result.absorbed_faults += best.absorbed_faults
    result.degraded_checks += best.degraded_checks
    result.uncertain_decisions = _uncertain_count(criterion) - uncertain_before
    _record_traversal(index, result)
    if budget is None:
        return result
    return _wrap_partial(result, budget)


def _depth_first(
    node: SSTreeNode,
    query: Hypersphere,
    best: "_BestKnownList | _ShadowedOffers",
    result: KNNResult,
    budget: "Budget | None" = None,
    depth: int = 0,
    levels: "dict[int, int] | None" = None,
) -> bool:
    """Visit *node*; returns ``False`` when the budget ran out (stop)."""
    if budget is not None and budget.charge_node() is not None:
        return False
    result.nodes_visited += 1
    if levels is not None:
        levels[depth] = levels.get(depth, 0) + 1
    if node.is_leaf:
        for key, sphere in node.entries:
            if budget is not None and budget.charge_candidate() is not None:
                return False
            result.entries_considered += 1
            best.offer(key, sphere)
        return True
    ranked = sorted(
        (
            (_safe_node_min_dist(child, query, result), i)
            for i, child in enumerate(node.children)
        ),
    )
    for gap, i in ranked:
        # Subtree version of Case 3: every object below has at least this
        # MinDist, so the whole branch is prunable.
        if gap > best.distk:
            continue
        if not _depth_first(
            node.children[i], query, best, result, budget, depth + 1, levels
        ):
            return False
    return True


def _best_first(
    root: SSTreeNode,
    query: Hypersphere,
    best: "_BestKnownList | _ShadowedOffers",
    result: KNNResult,
    budget: "Budget | None" = None,
    levels: "dict[int, int] | None" = None,
) -> None:
    counter = itertools.count()
    heap: list[tuple[float, int, SSTreeNode, int]] = [
        (_safe_node_min_dist(root, query, result), next(counter), root, 0)
    ]
    while heap:
        lower_bound, _, node, depth = heapq.heappop(heap)
        if lower_bound > best.distk:
            break  # every remaining node is at least this far: all prunable
        if budget is not None and budget.charge_node() is not None:
            break
        result.nodes_visited += 1
        if levels is not None:
            levels[depth] = levels.get(depth, 0) + 1
        if node.is_leaf:
            for key, sphere in node.entries:
                if budget is not None and budget.charge_candidate() is not None:
                    return
                result.entries_considered += 1
                best.offer(key, sphere)
        else:
            for child in node.children:
                gap = _safe_node_min_dist(child, query, result)
                if gap <= best.distk:
                    heapq.heappush(heap, (gap, next(counter), child, depth + 1))


def _knn_two_phase(
    index: "SSTree | VPTree | LinearIndex",
    query: Hypersphere,
    k: int,
    criterion: DominanceCriterion,
    strategy: str,
    budget: "Budget | None" = None,
    levels: "dict[int, int] | None" = None,
) -> KNNResult:
    """The Definition-2-exact variant: find ``Sk`` first, then collect."""
    result = KNNResult(keys=[], spheres=[], distk=float("inf"))
    uncertain_before = _uncertain_count(criterion)

    if isinstance(index, LinearIndex):
        maxdists = index.max_dists(query)
        distk = float(np.partition(maxdists, k - 1)[k - 1])
        anchors = [index.spheres[i] for i in np.flatnonzero(maxdists == distk)]
        result.entries_considered = len(index)
        if budget is not None:
            # The vectorised scan considers every entry in one sweep.
            budget.charge_candidate(len(index))
        candidates = zip(index.keys, index.spheres, maxdists)
        for key, sphere, dist_max in candidates:
            if dist_max <= distk:
                result.keys.append(key)
                result.spheres.append(sphere)
                continue
            if budget is not None and budget.exhausted() is not None:
                # Out of budget: skip the criterion filter and keep the
                # candidate — a conservative superset, never a wrong cut.
                result.degraded_checks += 1
                result.keys.append(key)
                result.spheres.append(sphere)
                continue
            result.dominance_checks += len(anchors)
            if not _any_anchor_dominates(anchors, sphere, query, criterion, result):
                result.keys.append(key)
                result.spheres.append(sphere)
        result.distk = distk
        result.uncertain_decisions = _uncertain_count(criterion) - uncertain_before
        _record_traversal(index, result)
        return result

    if strategy not in ("hs", "df"):
        raise QueryError(f"unknown strategy {strategy!r}; use 'df' or 'hs'")

    # Phase 1: the k-th smallest MaxDist via best-first search on the
    # MaxDist lower bound (exact regardless of the dominance criterion).
    counter = itertools.count()
    heap: list[tuple[float, int, SSTreeNode, int]] = [
        (
            _safe_node_max_dist_lower_bound(index.root, query, result),
            next(counter),
            index.root,
            0,
        )
    ]
    top: list[tuple[float, int, Hypersphere]] = []  # max-heap via negation
    phase1_cut = False
    while heap:
        bound, _, node, depth = heapq.heappop(heap)
        if len(top) == k and bound > -top[0][0]:
            break
        if budget is not None and budget.charge_node() is not None:
            phase1_cut = True
            break
        result.nodes_visited += 1
        if levels is not None:
            levels[depth] = levels.get(depth, 0) + 1
        if node.is_leaf:
            for _, sphere in node.entries:
                if budget is not None and budget.charge_candidate() is not None:
                    phase1_cut = True
                    break
                dist_max = _safe_sphere_max_dist(sphere, query, result)
                if len(top) < k:
                    heapq.heappush(top, (-dist_max, next(counter), sphere))
                elif dist_max < -top[0][0]:
                    heapq.heapreplace(top, (-dist_max, next(counter), sphere))
            if phase1_cut:
                break
        else:
            for child in node.children:
                child_bound = _safe_node_max_dist_lower_bound(child, query, result)
                if len(top) < k or child_bound <= -top[0][0]:
                    heapq.heappush(
                        heap, (child_bound, next(counter), child, depth + 1)
                    )
    if len(top) < k:
        # The budget cut phase 1 before k objects were even seen; with
        # no usable distk nothing can be pruned safely.
        distk = math.inf
        anchors: list[Hypersphere] = []
    else:
        distk = -top[0][0]
        # When phase 1 was cut short the found distk is only an *upper*
        # bound on the true one: Case-3 pruning against it stays safe
        # (MinDist > distk' >= distk), but the found anchors may not be
        # the true Sk, so the criterion filter must be skipped.
        anchors = (
            [] if phase1_cut else [s for neg, _, s in top if -neg == distk]
        )

    # Phase 2: collect every object not dominated by Sk.  A subtree with
    # MinDist > distk is entirely dominated via MinMax (Lemma 9).
    stack: "list[tuple[SSTreeNode, int]]" = [(index.root, 0)]
    stopped = False
    while stack:
        node, depth = stack.pop()
        if stopped or (budget is not None and budget.charge_node() is not None):
            stopped = True
            break
        if _safe_node_min_dist(node, query, result) > distk:
            result.pruned_case3 += 1
            continue
        result.nodes_visited += 1
        if levels is not None:
            levels[depth] = levels.get(depth, 0) + 1
        if node.is_leaf:
            for key, sphere in node.entries:
                if budget is not None and budget.charge_candidate() is not None:
                    stopped = True
                    break
                result.entries_considered += 1
                dist_max = _safe_sphere_max_dist(sphere, query, result)
                if dist_max <= distk:
                    result.keys.append(key)
                    result.spheres.append(sphere)
                    continue
                if _safe_sphere_min_dist(sphere, query, result) > distk:
                    result.pruned_case3 += 1
                    continue
                if not anchors:
                    # No trustworthy Sk (budget cut phase 1): keep — a
                    # conservative superset over the visited region.
                    if phase1_cut:
                        result.degraded_checks += 1
                    result.keys.append(key)
                    result.spheres.append(sphere)
                    continue
                result.dominance_checks += len(anchors)
                if not _any_anchor_dominates(
                    anchors, sphere, query, criterion, result
                ):
                    result.keys.append(key)
                    result.spheres.append(sphere)
            if stopped:
                break
        else:
            stack.extend((child, depth + 1) for child in node.children)
    result.distk = distk
    result.uncertain_decisions = _uncertain_count(criterion) - uncertain_before
    _record_traversal(index, result)
    return result


def _any_anchor_dominates(
    anchors: "list[Hypersphere]",
    sphere: Hypersphere,
    query: Hypersphere,
    criterion: DominanceCriterion,
    result: KNNResult,
) -> bool:
    """Guarded ``any(dominates)`` over the anchors (see _BestKnownList)."""
    fallback = None
    for anchor in anchors:
        try:
            if criterion.dominates(anchor, sphere, query):
                return True
            continue
        except ArithmeticError:
            result.absorbed_faults += 1
        if fallback is None:
            fallback = get_criterion("minmax")
        try:
            if fallback.dominates(anchor, sphere, query):
                return True
        except ArithmeticError:
            result.absorbed_faults += 1
    return False


def knn_reference(
    dataset: "LinearIndex | Sequence[tuple[object, Hypersphere]]",
    query: Hypersphere,
    k: int,
    *,
    criterion: "DominanceCriterion | str" = "hyperbola",
) -> KNNResult:
    """The exact Definition-2 answer, computed by direct evaluation.

    Finds ``distk`` (the k-th smallest ``MaxDist``) vectorised, takes
    every object attaining it as ``Sk`` (the paper keeps all ties), and
    returns the objects not dominated by any ``Sk``.

    When *criterion* is given by name and has a batch kernel, the
    dominance checks run vectorised (the reference is evaluated once
    per query in every kNN experiment, so it is the harness
    bottleneck); a criterion *instance* falls back to per-object calls.

    The reference is deliberately budget-blind: it is the ground truth
    the resilience tests compare degraded answers against.
    """
    if not isinstance(dataset, LinearIndex):
        dataset = LinearIndex(dataset)
    k = validate_k(k, len(dataset))
    validate_query(query, dataset.dimension)
    batch_name = criterion if isinstance(criterion, str) else None
    if isinstance(criterion, str):
        criterion = get_criterion(criterion)

    maxdists = dataset.max_dists(query)
    distk = float(np.partition(maxdists, k - 1)[k - 1])
    anchor_rows = np.flatnonzero(maxdists == distk)
    anchors = [dataset.spheres[i] for i in anchor_rows]

    candidate_rows = np.flatnonzero(maxdists > distk)
    dominated = np.zeros(len(dataset), dtype=bool)
    checks = len(anchors) * int(candidate_rows.size)
    if candidate_rows.size and batch_name is not None:
        from repro.core.batch import batch_evaluate

        n = int(candidate_rows.size)
        cq = np.broadcast_to(query.center, (n, dataset.dimension))
        rq = np.full(n, query.radius)
        cb = dataset.centers[candidate_rows]
        rb = dataset.radii[candidate_rows]
        for anchor_row in anchor_rows:
            ca = np.broadcast_to(dataset.centers[anchor_row], (n, dataset.dimension))
            ra = np.full(n, dataset.radii[anchor_row])
            dominated[candidate_rows] |= batch_evaluate(
                batch_name, ca, cb, cq, ra, rb, rq
            )
    elif candidate_rows.size:
        for i in candidate_rows:
            sphere = dataset.spheres[i]
            dominated[i] = any(
                criterion.dominates(sk, sphere, query) for sk in anchors
            )

    keys, spheres = [], []
    for i, (key, sphere) in enumerate(zip(dataset.keys, dataset.spheres)):
        if not dominated[i]:
            keys.append(key)
            spheres.append(sphere)
    # The reference scan is harness work, not a measured traversal:
    # tally it on the index but under its own obs counter.
    dataset.record_query(node_accesses=1, entries_scanned=len(dataset))
    if obs.ENABLED:
        obs.incr(names.KNN_REFERENCE_QUERIES)
        obs.incr(names.KNN_REFERENCE_DOMINANCE_CHECKS, checks)
    return KNNResult(
        keys=keys,
        spheres=spheres,
        distk=distk,
        entries_considered=len(dataset),
        dominance_checks=checks,
    )
