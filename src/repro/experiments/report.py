"""Plain-text rendering of experiment results.

The paper presents its evaluation as figures; a terminal harness is
better served by aligned tables whose columns are the figure's series
(one row per x-axis value).  :func:`render_table` is deliberately
dependency-free: a list of column names and a list of rows in, an
aligned string out.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_stats", "format_value"]


def format_value(value: object) -> str:
    """Human-friendly scalar formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000.0 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as an aligned monospace table."""
    cells = [[format_value(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(parts: Sequence[str]) -> str:
        return "  ".join(part.ljust(width) for part, width in zip(parts, widths))

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * width for width in widths]))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def render_stats(stats: dict, *, title: str = "instrumentation stats") -> str:
    """Render a :func:`repro.obs.collect` snapshot as an aligned table.

    Counters come first (alphabetically), then timers, then histograms,
    so related ``a.b.c`` metrics group together visually.
    """
    rows: list[tuple] = []
    for name, value in stats.get("counters", {}).items():
        rows.append((name, "counter", value, ""))
    for name, snap in stats.get("timers", {}).items():
        rows.append(
            (
                name,
                "timer",
                snap["count"],
                f"total={snap['total']:.4f}s mean={snap['mean']:.3e}s",
            )
        )
    for name, snap in stats.get("histograms", {}).items():
        rows.append(
            (
                name,
                "histogram",
                snap["count"],
                f"mean={snap['mean']:.2f} std={snap['std']:.2f} "
                f"min={snap['min']:g} max={snap['max']:g}",
            )
        )
    if not rows:
        rows.append(("(no metrics recorded)", "", "", ""))
    return render_table(("metric", "kind", "count", "detail"), rows, title=title)
