"""Parameter settings for the experiments (Table 2 of the paper).

The paper's Table 2 lists the synthetic sweep values; its defaults are
typeset in bold in the original, which plain text loses, so this module
fixes the conventional middle-of-range defaults and documents the
assumption (see EXPERIMENTS.md):

=====================  =======================  ========
parameter              values                   default
=====================  =======================  ========
average radius mu      5, 10, 50, 100           10
dataset size N         20k 60k 100k 140k 180k   100k
dimensionality d       2, 4, 6, 8, 10           6
k (kNN)                1, 10, 20, 30            10
=====================  =======================  ========
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PaperDefaults",
    "DOMINANCE_CRITERIA",
    "KNN_CRITERIA",
    "KNN_STRATEGIES",
]

# Order follows the paper's figures.
DOMINANCE_CRITERIA = ("hyperbola", "minmax", "mbr", "gp", "trigonometric")

# The kNN experiments drop Trigonometric: it is not correct, so kNN
# results based on it could miss true neighbours (Section 7.2).
KNN_CRITERIA = ("hyperbola", "minmax", "mbr", "gp")

KNN_STRATEGIES = ("hs", "df")


@dataclass(frozen=True)
class PaperDefaults:
    """The bold Table-2 defaults plus harness-level knobs."""

    mu: float = 10.0
    n: int = 100_000
    dimension: int = 6
    k: int = 10

    mu_values: tuple[float, ...] = (5.0, 10.0, 50.0, 100.0)
    n_values: tuple[int, ...] = (20_000, 60_000, 100_000, 140_000, 180_000)
    dimension_values: tuple[int, ...] = (2, 4, 6, 8, 10)
    high_dimension_values: tuple[int, ...] = (25, 50, 75, 100)
    k_values: tuple[int, ...] = (1, 10, 20, 30)
    distribution_grid: tuple[tuple[str, str], ...] = (
        ("gaussian", "gaussian"),
        ("gaussian", "uniform"),
        ("uniform", "gaussian"),
        ("uniform", "uniform"),
    )

    workload_size: int = 10_000  # dominance triples per measurement
    repeats: int = 10  # the paper averages 10 runs
    knn_queries: int = 20  # kNN queries averaged per configuration

    def scaled(self, scale: float) -> "PaperDefaults":
        """Shrink dataset/workload sizes by *scale* (shape-preserving)."""
        if scale <= 0.0:
            raise ValueError(f"scale must be positive, got {scale}")

        def shrink(value: int, floor: int) -> int:
            return max(floor, int(round(value * scale)))

        return PaperDefaults(
            mu=self.mu,
            n=shrink(self.n, 200),
            dimension=self.dimension,
            k=self.k,
            mu_values=self.mu_values,
            n_values=tuple(shrink(n, 200) for n in self.n_values),
            dimension_values=self.dimension_values,
            high_dimension_values=self.high_dimension_values,
            k_values=self.k_values,
            distribution_grid=self.distribution_grid,
            workload_size=shrink(self.workload_size, 100),
            repeats=max(1, int(round(self.repeats * min(1.0, scale * 3)))),
            knn_queries=max(3, int(round(self.knn_queries * min(1.0, scale * 5)))),
        )
