"""Registry mapping each paper table/figure to a runnable experiment.

Every runner regenerates the rows of one table or figure from
Section 7.  The paper's x-axis values become table rows; the figure's
plotted series become columns (or one row per series cell, for the kNN
experiments with their eight algorithm combinations).

All runners accept a ``scale`` factor: 1.0 reproduces the paper's
dataset and workload sizes; smaller values shrink them proportionally
(the CLI default is 0.05 so a full ``all`` run finishes on a laptop;
pass ``--scale 1.0`` for the paper-size run).
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.obs import names
from repro.data.real import REAL_DATASET_SPECS, real_dataset
from repro.data.synthetic import synthetic_dataset
from repro.exceptions import ExperimentError
from repro.experiments.config import PaperDefaults
from repro.experiments.dominance import run_dominance_experiment
from repro.experiments.knn import run_knn_experiment
from repro.experiments.report import render_table
from repro.experiments.ablations import run_ablations
from repro.resilience import Budget
from repro.resilience import scope as resilience_scope
from repro.experiments.claims import run_claims
from repro.experiments.table1 import run_table1
from repro.obs.log import get_logger

__all__ = ["ExperimentReport", "EXPERIMENTS", "run_experiment"]

log = get_logger("experiments")

DOMINANCE_HEADERS = ("config", "criterion", "sec/query", "precision %", "recall %")
KNN_HEADERS = ("config", "algorithm", "sec/query", "precision %", "coverage %")


@dataclass
class ExperimentReport:
    """The regenerated rows of one table/figure, ready for rendering."""

    experiment: str
    title: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    # Instrumentation snapshot (see repro.obs); empty without --profile.
    stats: dict = field(default_factory=dict)

    def render(self) -> str:
        """The report as an aligned text table."""
        return render_table(self.headers, self.rows, title=self.title)

    def to_dict(self) -> dict:
        """A JSON-serialisable form of the report."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "stats": self.stats,
        }


def _scaled_real_size(name: str, scale: float) -> int | None:
    if scale >= 1.0:
        return None  # the full dataset
    full = REAL_DATASET_SPECS[name].size
    return max(500, int(round(full * scale)))


def _run_ablations(
    defaults: PaperDefaults, scale: float, seed: int
) -> ExperimentReport:
    report = ExperimentReport(
        experiment="ablations",
        title="Ablations: solver / kernels / cascade / kNN algorithm / index",
        headers=("study", "variant", "seconds", "note"),
    )
    report.rows.extend(run_ablations(scale=scale, seed=seed))
    return report


def _run_claims(defaults: PaperDefaults, scale: float, seed: int) -> ExperimentReport:
    report = ExperimentReport(
        experiment="claims",
        title="Paper claims checklist (lemmas, Table 1, Section 6 guarantees)",
        headers=("source", "claim", "holds"),
    )
    size = max(300, int(round(1500 * min(1.0, scale * 10))))
    for claim in run_claims(workload_size=size, seed=seed):
        report.rows.append(claim.row())
    return report


def _run_table1(defaults: PaperDefaults, scale: float, seed: int) -> ExperimentReport:
    report = ExperimentReport(
        experiment="table1",
        title="Table 1: dominance criteria properties (claimed vs observed)",
        headers=(
            "criterion",
            "claimed correct",
            "observed correct",
            "claimed sound",
            "observed sound",
        ),
    )
    size = max(400, int(round(4000 * min(1.0, scale * 10))))
    for row in run_table1(workload_size=size, dimension=defaults.dimension, seed=seed):
        report.rows.append(row.row())
    return report


def _dominance_figure(
    experiment: str,
    title: str,
    configurations: "list[tuple[str, Callable[[], object]]]",
    defaults: PaperDefaults,
    seed: int,
) -> ExperimentReport:
    report = ExperimentReport(experiment, title, DOMINANCE_HEADERS)
    for label, build in configurations:
        dataset = build()
        for measurement in run_dominance_experiment(
            dataset,
            label=label,
            workload_size=defaults.workload_size,
            repeats=defaults.repeats,
            seed=seed,
        ):
            report.rows.append(measurement.row())
    return report


def _run_fig8(defaults: PaperDefaults, scale: float, seed: int) -> ExperimentReport:
    size = _scaled_real_size("nba", scale)
    configurations = [
        (
            f"mu={mu:g}",
            lambda mu=mu: real_dataset(
                "nba", mu=mu, relative_radii=True, size=size, seed=seed
            ),
        )
        for mu in defaults.mu_values
    ]
    return _dominance_figure(
        "fig8",
        "Figure 8: effect of average radius mu on the dominance problem (NBA)",
        configurations,
        defaults,
        seed,
    )


def _run_fig9(defaults: PaperDefaults, scale: float, seed: int) -> ExperimentReport:
    configurations = [
        (
            f"d={d}",
            lambda d=d: synthetic_dataset(
                defaults.n, d, mu=defaults.mu, seed=seed
            ),
        )
        for d in defaults.dimension_values
    ]
    return _dominance_figure(
        "fig9",
        "Figure 9: effect of dimensionality d on the dominance problem (synthetic)",
        configurations,
        defaults,
        seed,
    )


def _run_fig10(defaults: PaperDefaults, scale: float, seed: int) -> ExperimentReport:
    configurations = [
        (
            name,
            lambda name=name: real_dataset(
                name,
                mu=defaults.mu,
                relative_radii=True,
                size=_scaled_real_size(name, scale),
                seed=seed,
            ),
        )
        for name in ("nba", "forest", "color", "texture")
    ]
    return _dominance_figure(
        "fig10",
        "Figure 10: dominance problem on the four real datasets",
        configurations,
        defaults,
        seed,
    )


def _run_fig11(defaults: PaperDefaults, scale: float, seed: int) -> ExperimentReport:
    configurations = [
        (
            f"d={d}",
            lambda d=d: synthetic_dataset(
                defaults.n, d, mu=defaults.mu, seed=seed
            ),
        )
        for d in defaults.high_dimension_values
    ]
    return _dominance_figure(
        "fig11",
        "Figure 11: dominance execution time in high-dimensional space",
        configurations,
        defaults,
        seed,
    )


def _run_fig12(defaults: PaperDefaults, scale: float, seed: int) -> ExperimentReport:
    labels = {"gaussian": "G", "uniform": "U"}
    configurations = [
        (
            f"{labels[centers]}-{labels[radii]}",
            lambda centers=centers, radii=radii: synthetic_dataset(
                defaults.n,
                defaults.dimension,
                mu=defaults.mu,
                center_distribution=centers,
                radius_distribution=radii,
                seed=seed,
            ),
        )
        for centers, radii in defaults.distribution_grid
    ]
    return _dominance_figure(
        "fig12",
        "Figure 12: dominance execution time under different distributions",
        configurations,
        defaults,
        seed,
    )


def _knn_figure(
    experiment: str,
    title: str,
    configurations: "list[tuple[str, Callable[[], object], int]]",
    defaults: PaperDefaults,
    seed: int,
) -> ExperimentReport:
    report = ExperimentReport(experiment, title, KNN_HEADERS)
    for label, build, k in configurations:
        dataset = build()
        for measurement in run_knn_experiment(
            dataset,
            label=label,
            k=k,
            queries=defaults.knn_queries,
            seed=seed,
        ):
            report.rows.append(measurement.row())
    return report


def _run_fig13(defaults: PaperDefaults, scale: float, seed: int) -> ExperimentReport:
    configurations = [
        (
            f"mu={mu:g}",
            lambda mu=mu: synthetic_dataset(
                defaults.n, defaults.dimension, mu=mu, seed=seed
            ),
            defaults.k,
        )
        for mu in defaults.mu_values
    ]
    return _knn_figure(
        "fig13",
        "Figure 13: effect of average radius mu on kNN queries (synthetic)",
        configurations,
        defaults,
        seed,
    )


def _run_fig14(defaults: PaperDefaults, scale: float, seed: int) -> ExperimentReport:
    configurations = [
        (
            f"k={k}",
            lambda: synthetic_dataset(
                defaults.n, defaults.dimension, mu=defaults.mu, seed=seed
            ),
            k,
        )
        for k in defaults.k_values
    ]
    return _knn_figure(
        "fig14",
        "Figure 14: effect of k on kNN queries (synthetic)",
        configurations,
        defaults,
        seed,
    )


def _run_fig15(defaults: PaperDefaults, scale: float, seed: int) -> ExperimentReport:
    configurations = [
        (
            f"N={n}",
            lambda n=n: synthetic_dataset(
                n, defaults.dimension, mu=defaults.mu, seed=seed
            ),
            defaults.k,
        )
        for n in defaults.n_values
    ]
    return _knn_figure(
        "fig15",
        "Figure 15: effect of data size N on kNN queries (synthetic)",
        configurations,
        defaults,
        seed,
    )


def _run_fig16(defaults: PaperDefaults, scale: float, seed: int) -> ExperimentReport:
    configurations = [
        (
            f"d={d}",
            lambda d=d: synthetic_dataset(
                defaults.n, d, mu=defaults.mu, seed=seed
            ),
            defaults.k,
        )
        for d in defaults.dimension_values
    ]
    return _knn_figure(
        "fig16",
        "Figure 16: effect of dimensionality d on kNN queries (synthetic)",
        configurations,
        defaults,
        seed,
    )


EXPERIMENTS: dict[str, Callable[[PaperDefaults, float, int], ExperimentReport]] = {
    "ablations": _run_ablations,
    "claims": _run_claims,
    "table1": _run_table1,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "fig13": _run_fig13,
    "fig14": _run_fig14,
    "fig15": _run_fig15,
    "fig16": _run_fig16,
}


def run_experiment(
    name: str,
    *,
    scale: float = 1.0,
    seed: int = 0,
    profile: bool = False,
    deadline_ms: "float | None" = None,
) -> ExperimentReport:
    """Regenerate the named table/figure at the given *scale*.

    With ``profile=True`` the run executes under an enabled, private
    :mod:`repro.obs` registry and the collected counters/timers land in
    ``report.stats`` (and thus in the ``"stats"`` key of the JSON form).
    Profiling perturbs the reported timings slightly; leave it off for
    publication-quality numbers.

    With ``deadline_ms`` set, the whole experiment runs under one
    :class:`repro.resilience.Budget`: once the wall-clock deadline
    passes, every remaining query degrades to its conservative partial
    answer instead of running to completion, so the run lands near the
    deadline rather than hanging on an over-sized configuration.  The
    rendered timings then measure *degraded* execution — use deadlines
    for smoke runs and liveness checks, not for publication numbers.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(f"unknown experiment {name!r}; known: {known}") from None
    defaults = PaperDefaults().scaled(scale)
    # nullcontext (not scope(None)) when no deadline was given: scope(None)
    # would shield the run from a budget the caller already activated.
    budget_scope: "contextlib.AbstractContextManager[object]" = (
        contextlib.nullcontext()
        if deadline_ms is None
        else resilience_scope(Budget.from_deadline_ms(deadline_ms))
    )
    if not profile:
        with budget_scope:
            return runner(defaults, scale, seed)
    started = time.perf_counter()
    with obs.enabled_scope(True), obs.scope():
        with obs.trace(names.experiment_span(name)), budget_scope:
            report = runner(defaults, scale, seed)
        report.stats = obs.collect()
    log.debug("profiled %s in %.2fs", name, time.perf_counter() - started)
    return report
