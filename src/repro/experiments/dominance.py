"""The dominance-operator experiments (Section 7.1, Figures 8–12).

Each measurement follows the paper's protocol: build a workload of
random ``(Sa, Sb, Sq)`` triples from the dataset, run every criterion
over the whole workload several times, average the per-query execution
time, and score precision/recall against Hyperbola's answers (the paper
uses Hyperbola as ground truth because it is the only criterion that is
both correct and sound; the test suite independently validates it
against the numerical oracle).

Two timing modes are supported:

- ``"scalar"`` (default) — one Python call per triple, the closest
  analogue of the paper's per-operator measurements;
- ``"batch"`` — the vectorised kernels from :mod:`repro.core.batch`,
  used by the batch-vs-scalar ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.obs import names
from repro.core.base import get_criterion
from repro.core.batch import batch_evaluate
from repro.data.synthetic import Dataset
from repro.data.workload import DominanceWorkload
from repro.exceptions import ExperimentError
from repro.experiments.config import DOMINANCE_CRITERIA
from repro.experiments.metrics import binary_metrics, time_callable_stats
from repro.obs.log import get_logger

log = get_logger("experiments.dominance")

__all__ = ["DominanceMeasurement", "run_dominance_experiment"]

GROUND_TRUTH_CRITERION = "hyperbola"


@dataclass(frozen=True)
class DominanceMeasurement:
    """One (configuration, criterion) cell of a Figure 8–12 series."""

    label: str
    criterion: str
    seconds_per_query: float
    seconds_std: float
    precision: float
    recall: float
    workload_size: int
    # Per-criterion instrumentation deltas (None unless obs is enabled).
    stats: "dict | None" = None

    def row(self) -> tuple:
        """The cell as a report-table row."""
        return (
            self.label,
            self.criterion,
            self.seconds_per_query,
            self.precision,
            self.recall,
        )


def _scalar_predictions(criterion_name: str, workload: DominanceWorkload) -> np.ndarray:
    criterion = get_criterion(criterion_name)
    return np.fromiter(
        (criterion.dominates(sa, sb, sq) for sa, sb, sq in workload.triples()),
        dtype=bool,
        count=len(workload),
    )


def run_dominance_experiment(
    dataset: Dataset,
    *,
    label: str,
    workload_size: int = 10_000,
    repeats: int = 10,
    criteria: tuple[str, ...] = DOMINANCE_CRITERIA,
    timing: str = "scalar",
    seed: int | None = 0,
) -> list[DominanceMeasurement]:
    """Measure every criterion on one dataset configuration.

    Returns one :class:`DominanceMeasurement` per criterion, in the
    order given.  *label* names the configuration (the x-axis value of
    the figure this measurement belongs to).
    """
    if timing not in ("scalar", "batch"):
        raise ExperimentError(f"unknown timing mode {timing!r}")
    log.debug(
        "dominance experiment %s: workload=%d repeats=%d timing=%s",
        label, workload_size, repeats, timing,
    )
    with obs.trace(names.DOMINANCE_WORKLOAD):
        workload = DominanceWorkload.from_dataset(
            dataset, size=workload_size, seed=seed
        )
    truth = batch_evaluate(GROUND_TRUTH_CRITERION, *workload.arrays())

    measurements = []
    for name in criteria:
        before = obs.collect() if obs.ENABLED else None
        with obs.trace(names.dominance_span(name)):
            if timing == "scalar":
                criterion = get_criterion(name)
                triples = list(workload.triples())

                def run_workload() -> None:
                    for sa, sb, sq in triples:
                        criterion.dominates(sa, sb, sq)

                stats = time_callable_stats(
                    run_workload, repeats, calls_per_sample=len(workload)
                )
                predicted = batch_evaluate(name, *workload.arrays())
            else:
                arrays = workload.arrays()

                def run_workload() -> None:
                    batch_evaluate(name, *arrays)

                stats = time_callable_stats(
                    run_workload, repeats, calls_per_sample=len(workload)
                )
                predicted = batch_evaluate(name, *workload.arrays())

        delta = (
            obs.diff(before, obs.collect()) if before is not None else None
        )
        scores = binary_metrics(predicted, truth)
        log.debug(
            "  %-14s %s: %.3es/query precision=%.1f%% recall=%.1f%%",
            name, label, stats.per_call_mean, scores.precision, scores.recall,
        )
        measurements.append(
            DominanceMeasurement(
                label=label,
                criterion=name,
                seconds_per_query=stats.per_call_mean,
                seconds_std=stats.per_call_std,
                precision=scores.precision,
                recall=scores.recall,
                workload_size=len(workload),
                stats=delta,
            )
        )
    return measurements
