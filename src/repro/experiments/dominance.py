"""The dominance-operator experiments (Section 7.1, Figures 8–12).

Each measurement follows the paper's protocol: build a workload of
random ``(Sa, Sb, Sq)`` triples from the dataset, run every criterion
over the whole workload several times, average the per-query execution
time, and score precision/recall against Hyperbola's answers (the paper
uses Hyperbola as ground truth because it is the only criterion that is
both correct and sound; the test suite independently validates it
against the numerical oracle).

Two timing modes are supported:

- ``"scalar"`` (default) — one Python call per triple, the closest
  analogue of the paper's per-operator measurements;
- ``"batch"`` — the vectorised kernels from :mod:`repro.core.batch`,
  used by the batch-vs-scalar ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import get_criterion
from repro.core.batch import batch_evaluate
from repro.data.synthetic import Dataset
from repro.data.workload import DominanceWorkload
from repro.exceptions import ExperimentError
from repro.experiments.config import DOMINANCE_CRITERIA
from repro.experiments.metrics import binary_metrics, mean_and_std, time_callable

__all__ = ["DominanceMeasurement", "run_dominance_experiment"]

GROUND_TRUTH_CRITERION = "hyperbola"


@dataclass(frozen=True)
class DominanceMeasurement:
    """One (configuration, criterion) cell of a Figure 8–12 series."""

    label: str
    criterion: str
    seconds_per_query: float
    seconds_std: float
    precision: float
    recall: float
    workload_size: int

    def row(self) -> tuple:
        """The cell as a report-table row."""
        return (
            self.label,
            self.criterion,
            self.seconds_per_query,
            self.precision,
            self.recall,
        )


def _scalar_predictions(criterion_name: str, workload: DominanceWorkload) -> np.ndarray:
    criterion = get_criterion(criterion_name)
    return np.fromiter(
        (criterion.dominates(sa, sb, sq) for sa, sb, sq in workload.triples()),
        dtype=bool,
        count=len(workload),
    )


def run_dominance_experiment(
    dataset: Dataset,
    *,
    label: str,
    workload_size: int = 10_000,
    repeats: int = 10,
    criteria: tuple[str, ...] = DOMINANCE_CRITERIA,
    timing: str = "scalar",
    seed: int | None = 0,
) -> list[DominanceMeasurement]:
    """Measure every criterion on one dataset configuration.

    Returns one :class:`DominanceMeasurement` per criterion, in the
    order given.  *label* names the configuration (the x-axis value of
    the figure this measurement belongs to).
    """
    if timing not in ("scalar", "batch"):
        raise ExperimentError(f"unknown timing mode {timing!r}")
    workload = DominanceWorkload.from_dataset(
        dataset, size=workload_size, seed=seed
    )
    truth = batch_evaluate(GROUND_TRUTH_CRITERION, *workload.arrays())

    measurements = []
    for name in criteria:
        if timing == "scalar":
            criterion = get_criterion(name)
            triples = list(workload.triples())

            def run_workload() -> None:
                for sa, sb, sq in triples:
                    criterion.dominates(sa, sb, sq)

            samples = time_callable(run_workload, repeats)
            predicted = batch_evaluate(name, *workload.arrays())
        else:
            arrays = workload.arrays()

            def run_workload() -> None:
                batch_evaluate(name, *arrays)

            samples = time_callable(run_workload, repeats)
            predicted = batch_evaluate(name, *workload.arrays())

        mean, std = mean_and_std(samples)
        scores = binary_metrics(predicted, truth)
        measurements.append(
            DominanceMeasurement(
                label=label,
                criterion=name,
                seconds_per_query=mean / len(workload),
                seconds_std=std / len(workload),
                precision=scores.precision,
                recall=scores.recall,
                workload_size=len(workload),
            )
        )
    return measurements
