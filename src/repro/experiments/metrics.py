"""Precision / recall / timing metrics shared by the experiment runners.

Section 7.1 of the paper defines, over a workload of dominance queries
with Hyperbola as ground truth:

- ``precision = TP / (TP + FP)`` — fraction of the criterion's "true"
  answers that are genuinely true (a *correct* criterion scores 100%);
- ``recall = TP / (TP + FN)`` — fraction of the genuinely-true answers
  the criterion finds (a *sound* criterion scores 100%).

Edge convention: when a criterion returns no positives its precision is
reported as 100% (it made no false claims), and when the ground truth
has no positives recall is 100%; this matches how such plots are
conventionally drawn and keeps the figures defined for every sweep
point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

__all__ = [
    "BinaryMetrics",
    "binary_metrics",
    "TimingStats",
    "time_callable",
    "time_callable_stats",
    "mean_and_std",
]


@dataclass(frozen=True)
class BinaryMetrics:
    """Confusion-matrix summary of a criterion against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP), in percent; 100.0 when no positives claimed."""
        claimed = self.true_positives + self.false_positives
        if claimed == 0:
            return 100.0
        return 100.0 * self.true_positives / claimed

    @property
    def recall(self) -> float:
        """TP / (TP + FN), in percent; 100.0 when nothing was true."""
        actual = self.true_positives + self.false_negatives
        if actual == 0:
            return 100.0
        return 100.0 * self.true_positives / actual


def binary_metrics(predicted: np.ndarray, truth: np.ndarray) -> BinaryMetrics:
    """Confusion counts of boolean *predicted* against boolean *truth*."""
    predicted = np.asarray(predicted, dtype=bool)
    truth = np.asarray(truth, dtype=bool)
    if predicted.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: {predicted.shape} vs {truth.shape}"
        )
    return BinaryMetrics(
        true_positives=int(np.count_nonzero(predicted & truth)),
        false_positives=int(np.count_nonzero(predicted & ~truth)),
        false_negatives=int(np.count_nonzero(~predicted & truth)),
        true_negatives=int(np.count_nonzero(~predicted & ~truth)),
    )


def time_callable(fn: Callable[[], object], repeats: int) -> list[float]:
    """Wall-clock seconds for *repeats* invocations of *fn*.

    Uses :func:`time.perf_counter` exclusively — the monotonic
    high-resolution clock.  (``time.time`` is wall-clock and can jump
    under NTP adjustment; an audit found no remaining ``time.time``
    timing call-sites in this repository, and new ones should use
    ``perf_counter`` too.)
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return samples


@dataclass(frozen=True)
class TimingStats:
    """Repeated-timing summary with per-call mean and stddev.

    Each sample times one invocation of the measured callable; when that
    callable internally loops over *calls_per_sample* units of work (a
    whole workload, a batch of queries), the ``per_call_*`` properties
    report the cost of one unit.
    """

    samples: tuple[float, ...]
    calls_per_sample: int = 1

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("no timing samples")
        if self.calls_per_sample < 1:
            raise ValueError(
                f"calls_per_sample must be positive, got {self.calls_per_sample}"
            )

    @property
    def mean(self) -> float:
        """Mean seconds per sample."""
        return mean_and_std(self.samples)[0]

    @property
    def std(self) -> float:
        """Population stddev of the per-sample seconds."""
        return mean_and_std(self.samples)[1]

    @property
    def per_call_mean(self) -> float:
        """Mean seconds per unit of work inside one sample."""
        return self.mean / self.calls_per_sample

    @property
    def per_call_std(self) -> float:
        """Per-unit stddev (sample stddev scaled to one call)."""
        return self.std / self.calls_per_sample


def time_callable_stats(
    fn: Callable[[], object], repeats: int, *, calls_per_sample: int = 1
) -> TimingStats:
    """Time *fn* like :func:`time_callable`, summarised per call."""
    return TimingStats(
        samples=tuple(time_callable(fn, repeats)),
        calls_per_sample=calls_per_sample,
    )


def mean_and_std(samples: Iterable[float]) -> tuple[float, float]:
    """Mean and population standard deviation of *samples*."""
    values = np.asarray(list(samples), dtype=np.float64)
    if values.size == 0:
        raise ValueError("no samples")
    return float(values.mean()), float(values.std())
