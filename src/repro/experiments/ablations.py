"""Ablation studies of this reproduction's own design choices.

``python -m repro ablations`` measures, on one synthetic configuration:

- **quartic solver** — closed-form Ferrari vs companion-matrix
  eigenvalues (both power the Hyperbola decision; DESIGN.md §6);
- **scalar vs batch kernels** — how much whole-workload vectorisation
  buys for each criterion;
- **cascade vs plain Hyperbola** — the filter-and-refine shortcuts;
- **incremental vs two-phase kNN** — the paper's list maintenance vs
  the Definition-2-exact variant (time and coverage);
- **index substrate** — SS-tree vs VP-tree vs M-tree vs linear scan
  under the identical query algorithm.

The pytest-benchmark files under ``benchmarks/`` measure the same axes
with statistical rigour; this runner trades that for a single quick,
dependency-free table.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.core.base import get_criterion
from repro.core.batch import batch_evaluate
from repro.data.synthetic import synthetic_dataset
from repro.data.workload import DominanceWorkload, knn_queries
from repro.geometry.quartic import solve_quartic_real, solve_quartic_real_closed
from repro.index.linear import LinearIndex
from repro.index.mtree import MTree
from repro.index.sstree import SSTree
from repro.index.vptree import VPTree
from repro.queries.knn import KNNResult, knn_query, knn_reference

__all__ = ["run_ablations"]


def _timed(fn: Callable[[], object], repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_ablations(*, scale: float = 1.0, seed: int = 0) -> list[tuple]:
    """Rows of (study, variant, seconds, note) for the report table."""
    rng = np.random.default_rng(seed)
    n = max(300, int(round(2000 * scale * 10)))
    dataset = synthetic_dataset(n, 6, mu=10.0, seed=seed)
    workload = DominanceWorkload.from_dataset(
        dataset, size=max(200, n // 4), seed=seed
    )
    rows: list[tuple] = []

    # Quartic solver.
    coefficients = rng.normal(0.0, 10.0, (256, 5))
    for label, solver in (
        ("ferrari (closed form)", solve_quartic_real_closed),
        ("companion matrix", solve_quartic_real),
    ):
        seconds = _timed(lambda s=solver: [s(row) for row in coefficients])
        rows.append(("quartic", label, seconds, "256 solves"))

    # Scalar vs batch criterion kernels.
    triples = list(workload.triples())
    arrays = workload.arrays()
    for name in ("hyperbola", "minmax", "mbr"):
        criterion = get_criterion(name)
        scalar = _timed(
            lambda c=criterion: [c.dominates(*triple) for triple in triples]
        )
        batch = _timed(lambda nm=name: batch_evaluate(nm, *arrays))
        rows.append(("kernels", f"{name} scalar", scalar, f"{len(triples)} triples"))
        rows.append(("kernels", f"{name} batch", batch, f"{len(triples)} triples"))

    # Cascade vs plain exact decision.
    for name in ("hyperbola", "cascade"):
        criterion = get_criterion(name)
        seconds = _timed(
            lambda c=criterion: [c.dominates(*triple) for triple in triples]
        )
        rows.append(("cascade", name, seconds, f"{len(triples)} triples"))

    # kNN algorithm variants (time + coverage of the exact answer).
    tree = SSTree.bulk_load(dataset.items())
    flat = LinearIndex(dataset.items())
    queries = knn_queries(dataset, count=3, seed=seed)
    truths = [knn_reference(flat, q, 10).key_set() for q in queries]
    for algorithm in ("incremental", "two-phase"):
        def run(algo: str = algorithm) -> "list[KNNResult]":
            return [knn_query(tree, q, 10, algorithm=algo) for q in queries]

        seconds = _timed(run, repeats=1)
        results = run()
        coverage = np.mean(
            [
                100.0 * len(r.key_set() & truth) / len(truth)
                for r, truth in zip(results, truths)
            ]
        )
        rows.append(
            ("knn-algorithm", algorithm, seconds, f"coverage {coverage:.1f}%")
        )

    # Index substrate under the identical (two-phase) query algorithm.
    substrates = {
        "sstree": tree,
        "vptree": VPTree.build(dataset.items()),
        "mtree": MTree.build(dataset.items()),
        "linear": flat,
    }
    for label, index in substrates.items():
        seconds = _timed(
            lambda idx=index: [
                knn_query(idx, q, 10, algorithm="two-phase") for q in queries
            ],
            repeats=1,
        )
        rows.append(("index", label, seconds, f"{len(queries)} queries"))

    return rows
