"""A one-shot verification of every testable claim in the paper.

``python -m repro claims`` runs this checklist: each row is one claim
from the paper (a lemma, a Table-1 property, or a Section-6 guarantee),
the concrete check we run for it, and whether it held.  The test suite
covers all of this (and much more) already; this runner exists so a
reader can see the paper's claims validated in seconds without
installing the dev dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import get_criterion, min_margin, oracle_dominates
from repro.core.batch import batch_evaluate
from repro.data.synthetic import synthetic_dataset
from repro.data.workload import DominanceWorkload
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.index.sstree import SSTree
from repro.queries.knn import knn_query, knn_reference

__all__ = ["Claim", "run_claims"]


@dataclass(frozen=True)
class Claim:
    """One verified statement from the paper."""

    source: str
    statement: str
    holds: bool

    def row(self) -> tuple:
        return (self.source, self.statement, self.holds)


def _criterion_flags(workload_size: int, seed: int) -> list[Claim]:
    """Table 1's correct/sound matrix against the numerical oracle."""
    rng = np.random.default_rng(seed)
    dataset = synthetic_dataset(400, 4, mu=10.0, rng=rng)
    workload = DominanceWorkload.from_dataset(dataset, size=workload_size, rng=rng)
    arrays = workload.arrays()
    # Oracle verdicts on a decisive subset (skip boundary ties).
    verdicts = []
    keep = []
    for i, (sa, sb, sq) in enumerate(workload.triples()):
        margin = min_margin(sa, sb, sq, resolution=512) - (sa.radius + sb.radius)
        if abs(margin) < 1e-6:
            continue
        keep.append(i)
        verdicts.append((not sa.overlaps(sb)) and margin > 0.0)
    keep = np.asarray(keep)
    truth = np.asarray(verdicts)

    claims = []
    for name in ("hyperbola", "minmax", "mbr", "gp", "trigonometric"):
        predicted = batch_evaluate(name, *arrays)[keep]
        criterion = get_criterion(name)
        no_false_positives = not np.any(predicted & ~truth)
        no_false_negatives = not np.any(~predicted & truth)
        claims.append(
            Claim(
                "Table 1",
                f"{name} is {'correct' if criterion.is_correct else 'NOT correct'}",
                no_false_positives == criterion.is_correct,
            )
        )
        claims.append(
            Claim(
                "Table 1",
                f"{name} is {'sound' if criterion.is_sound else 'NOT sound'}",
                no_false_negatives == criterion.is_sound,
            )
        )
    return claims


def _lemma_constructions() -> list[Claim]:
    claims = []

    # Lemma 1: overlap forces non-dominance.
    sa = Hypersphere([0.0, 0.0], 2.0)
    sb = Hypersphere([1.0, 0.0], 2.0)
    sq = Hypersphere([-9.0, 0.0], 0.5)
    claims.append(
        Claim(
            "Lemma 1",
            "overlapping Sa, Sb never dominate",
            not get_criterion("hyperbola").dominates(sa, sb, sq),
        )
    )

    # Lemma 3 / Figure 4: MinMax misses a genuine dominance.
    sa = Hypersphere([0.0, 2.0], 0.0)
    sb = Hypersphere([0.0, -2.0], 0.0)
    sq = Hypersphere([0.0, 6.0], 3.0)
    claims.append(
        Claim(
            "Lemma 3",
            "Figure-4 configuration dominates but MinMax answers false",
            oracle_dominates(sa, sb, sq)
            and get_criterion("hyperbola").dominates(sa, sb, sq)
            and not get_criterion("minmax").dominates(sa, sb, sq),
        )
    )

    # Lemma 5 / Figure 5: MBR misses a genuine dominance.
    diag = np.array([1.0, 1.0]) / np.sqrt(2.0)
    sa = Hypersphere(diag * 4.0, 1.0)
    sb = Hypersphere(diag * 6.05, 1.0)
    sq = Hypersphere([0.0, 0.0], 1.0)
    claims.append(
        Claim(
            "Lemma 5",
            "Figure-5 configuration dominates but MBR answers false",
            oracle_dominates(sa, sb, sq)
            and get_criterion("hyperbola").dominates(sa, sb, sq)
            and not get_criterion("mbr").dominates(sa, sb, sq),
        )
    )

    # Lemma 11 regime: Trigonometric claims a non-existent dominance.
    sa = Hypersphere([10.0, 0.0], 0.5)
    sb = Hypersphere([0.0, 0.0], 0.5)
    sq = Hypersphere([0.0, 1.0], 0.3)
    claims.append(
        Claim(
            "Lemma 11",
            "Trigonometric produces a false positive",
            (not oracle_dominates(sa, sb, sq))
            and get_criterion("trigonometric").dominates(sa, sb, sq),
        )
    )

    # Lemma 10 / Figure 7: the traditional kNN rule cannot prune, yet
    # the object is dominated.
    from repro.geometry.distance import max_dist, min_dist

    sk = Hypersphere([100.0, 0.0], 1.0)
    sq = Hypersphere([0.0, 0.0], 2.0)
    s = Hypersphere([101.01, 0.0], 1e-6)
    claims.append(
        Claim(
            "Lemma 10",
            "distk >= MinDist(S, Sq) yet Sk dominates S",
            max_dist(sk, sq) >= min_dist(s, sq)
            and get_criterion("hyperbola").dominates(sk, s, sq),
        )
    )
    return claims


def _knn_guarantees(seed: int) -> list[Claim]:
    dataset = synthetic_dataset(600, 3, mu=8.0, seed=seed)
    tree = SSTree.bulk_load(dataset.items())
    flat = LinearIndex(dataset.items())
    queries = [dataset.sphere(i) for i in (3, 77, 311)]

    subset_ok = anchor_ok = exact_ok = superset_ok = True
    for query in queries:
        truth = knn_reference(flat, query, 10)
        incremental = knn_query(tree, query, 10)
        two_phase = knn_query(tree, query, 10, algorithm="two-phase")
        loose = knn_query(tree, query, 10, criterion="minmax")
        subset_ok &= incremental.key_set() <= truth.key_set()
        anchor_ok &= abs(incremental.distk - truth.distk) < 1e-9
        exact_ok &= two_phase.key_set() == truth.key_set()
        superset_ok &= incremental.key_set() <= loose.key_set()
    return [
        Claim(
            "Section 6",
            "incremental kNN answers are a subset of Definition 2 "
            "(precision 100% with Hyperbola)",
            subset_ok,
        ),
        Claim(
            "Section 6",
            "the incremental algorithm finds the true anchor distance",
            anchor_ok,
        ),
        Claim(
            "Section 6",
            "the two-phase variant equals Definition 2 exactly",
            exact_ok,
        ),
        Claim(
            "Section 7.2",
            "unsound criteria return kNN supersets (precision <= 100%)",
            superset_ok,
        ),
    ]


def run_claims(*, workload_size: int = 1500, seed: int = 0) -> list[Claim]:
    """Run the whole checklist; every row should report ``holds=True``."""
    claims: list[Claim] = []
    claims.extend(_lemma_constructions())
    claims.extend(_criterion_flags(workload_size, seed))
    claims.extend(_knn_guarantees(seed))
    return claims
