"""The kNN-query experiments (Section 7.2, Figures 13–16).

For each dataset configuration the harness bulk-loads an SS-tree, draws
query hyperspheres from the dataset, and runs the adapted kNN algorithm
under every (traversal strategy x dominance criterion) combination the
paper evaluates — DF/HS x {Hyperbola, MinMax, MBR, GP} (Trigonometric
is excluded exactly as in the paper: it is not correct, so kNN answers
based on it could miss true neighbours).

Reported per combination, averaged over the queries:

- *query time* — wall-clock seconds per query;
- *precision* — |returned ∩ truth| / |returned| with truth the exact
  Definition-2 answer (:func:`repro.queries.knn.knn_reference`);
- *coverage* — |returned ∩ truth| / |truth|.  The paper asserts 100%
  recall by construction of its measurement; coverage quantifies the
  intermediate-anchor pruning discussed in :mod:`repro.queries.knn` and
  is reported alongside for transparency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.obs import names
from repro.data.synthetic import Dataset
from repro.data.workload import knn_queries
from repro.exceptions import ExperimentError
from repro.experiments.config import KNN_CRITERIA, KNN_STRATEGIES
from repro.experiments.metrics import mean_and_std
from repro.index.linear import LinearIndex
from repro.index.sstree import SSTree
from repro.obs.log import get_logger
from repro.queries.knn import knn_query, knn_reference

__all__ = ["KNNMeasurement", "run_knn_experiment"]

log = get_logger("experiments.knn")


@dataclass(frozen=True)
class KNNMeasurement:
    """One (configuration, strategy, criterion) cell of Figures 13–16."""

    label: str
    strategy: str
    criterion: str
    seconds_per_query: float
    # Per-query stddev over the query sample (perf_counter timings).
    seconds_std: float
    precision: float
    coverage: float
    mean_returned: float
    mean_truth_size: float
    queries: int
    # Per-combination instrumentation deltas (None unless obs is enabled).
    stats: "dict | None" = None

    @property
    def algorithm(self) -> str:
        """The paper's series name, e.g. ``"HS(Hyper)"``."""
        pretty = {"hyperbola": "Hyper", "minmax": "MinMax", "mbr": "MBR", "gp": "GP"}
        return f"{self.strategy.upper()}({pretty.get(self.criterion, self.criterion)})"

    def row(self) -> tuple:
        """The cell as a report-table row."""
        return (
            self.label,
            self.algorithm,
            self.seconds_per_query,
            self.precision,
            self.coverage,
        )


def run_knn_experiment(
    dataset: Dataset,
    *,
    label: str,
    k: int = 10,
    queries: int = 20,
    criteria: tuple[str, ...] = KNN_CRITERIA,
    strategies: tuple[str, ...] = KNN_STRATEGIES,
    algorithm: str = "incremental",
    max_entries: int = 16,
    seed: int | None = 0,
) -> list[KNNMeasurement]:
    """Measure every (strategy, criterion) pair on one configuration."""
    if queries < 1:
        raise ExperimentError(f"need at least one query, got {queries}")
    log.debug(
        "knn experiment %s: n=%d k=%d queries=%d", label, len(dataset), k, queries
    )
    rng = np.random.default_rng(seed)
    with obs.trace(names.KNN_BUILD_INDEX):
        tree = SSTree.bulk_load(dataset.items(), max_entries=max_entries)
        flat = LinearIndex(dataset.items())
    query_spheres = knn_queries(dataset, count=queries, rng=rng)
    with obs.trace(names.KNN_REFERENCE):
        truths = [
            knn_reference(flat, query, k, criterion="hyperbola").key_set()
            for query in query_spheres
        ]

    measurements = []
    for strategy in strategies:
        for criterion in criteria:
            before = obs.collect() if obs.ENABLED else None
            samples = []
            precision_sum = 0.0
            coverage_sum = 0.0
            returned_sum = 0
            truth_sum = 0
            with obs.trace(names.knn_span(strategy, criterion)):
                for query, truth in zip(query_spheres, truths):
                    started = time.perf_counter()
                    result = knn_query(
                        tree,
                        query,
                        k,
                        criterion=criterion,
                        strategy=strategy,
                        algorithm=algorithm,
                    )
                    samples.append(time.perf_counter() - started)
                    returned = result.key_set()
                    hits = len(returned & truth)
                    precision_sum += (
                        100.0 * hits / len(returned) if returned else 100.0
                    )
                    coverage_sum += 100.0 * hits / len(truth) if truth else 100.0
                    returned_sum += len(returned)
                    truth_sum += len(truth)
            mean_seconds, std_seconds = mean_and_std(samples)
            delta = (
                obs.diff(before, obs.collect()) if before is not None else None
            )
            measurements.append(
                KNNMeasurement(
                    label=label,
                    strategy=strategy,
                    criterion=criterion,
                    seconds_per_query=mean_seconds,
                    seconds_std=std_seconds,
                    precision=precision_sum / queries,
                    coverage=coverage_sum / queries,
                    mean_returned=returned_sum / queries,
                    mean_truth_size=truth_sum / queries,
                    queries=queries,
                    stats=delta,
                )
            )
    return measurements
