"""Empirical regeneration of Table 1 (criteria properties summary).

Table 1 of the paper states, for each decision criterion, whether it is
correct, sound and efficient.  This runner *measures* the first two
claims on a randomised workload: a criterion is empirically correct
when it produced no false positives against the ground truth, and
empirically sound when it produced no false negatives.  (Efficiency —
the O(d) claim — is demonstrated by the Figure 11 runtime sweep and the
pytest benchmarks instead; a single workload cannot certify a
complexity class.)

The workload is deliberately adversarial: it mixes dataset-drawn
triples with *aligned* triples (Sq placed on the far side of Sa, the
regime of the paper's Figure 4 / Figure 5 counter-examples) so the
unsound criteria actually exhibit their false negatives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import get_criterion
from repro.core.batch import batch_evaluate
from repro.data.synthetic import synthetic_dataset
from repro.data.workload import DominanceWorkload
from repro.experiments.config import DOMINANCE_CRITERIA
from repro.experiments.metrics import binary_metrics

__all__ = ["Table1Row", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One criterion's empirical and theoretical property flags."""

    criterion: str
    claimed_correct: bool
    claimed_sound: bool
    false_positives: int
    false_negatives: int

    @property
    def observed_correct(self) -> bool:
        return self.false_positives == 0

    @property
    def observed_sound(self) -> bool:
        return self.false_negatives == 0

    def row(self) -> tuple:
        return (
            self.criterion,
            self.claimed_correct,
            self.observed_correct,
            self.claimed_sound,
            self.observed_sound,
        )


def _aligned_workload(
    size: int, dimension: int, rng: np.random.Generator
) -> DominanceWorkload:
    """Triples with Sq on Sa's far side — the soundness stress regime."""
    ca = rng.normal(100.0, 25.0, (size, dimension))
    direction = rng.standard_normal((size, dimension))
    direction /= np.linalg.norm(direction, axis=1, keepdims=True)
    ra = np.abs(rng.normal(5.0, 2.0, size))
    rb = np.abs(rng.normal(5.0, 2.0, size))
    rq = np.abs(rng.normal(5.0, 2.0, size))
    gap = ra + rb + rng.uniform(1.0, 40.0, size)
    cb = ca + direction * gap[:, None]
    cq = ca - direction * rng.uniform(0.0, 30.0, size)[:, None]
    return DominanceWorkload(ca=ca, cb=cb, cq=cq, ra=ra, rb=rb, rq=rq)


def run_table1(
    *,
    workload_size: int = 4000,
    dimension: int = 6,
    seed: int = 0,
    criteria: tuple[str, ...] = DOMINANCE_CRITERIA,
) -> list[Table1Row]:
    """Measure the correct/sound flags of every criterion."""
    rng = np.random.default_rng(seed)
    dataset = synthetic_dataset(
        max(workload_size // 4, 100), dimension, mu=10.0, rng=rng
    )
    random_part = DominanceWorkload.from_dataset(
        dataset, size=workload_size // 2, rng=rng
    )
    aligned_part = _aligned_workload(
        workload_size - len(random_part), dimension, rng
    )
    arrays = tuple(
        np.concatenate([a, b], axis=0)
        for a, b in zip(random_part.arrays(), aligned_part.arrays())
    )
    truth = batch_evaluate("hyperbola", *arrays)

    rows = []
    for name in criteria:
        criterion = get_criterion(name)
        predicted = batch_evaluate(name, *arrays)
        scores = binary_metrics(predicted, truth)
        rows.append(
            Table1Row(
                criterion=name,
                claimed_correct=criterion.is_correct,
                claimed_sound=criterion.is_sound,
                false_positives=scores.false_positives,
                false_negatives=scores.false_negatives,
            )
        )
    return rows
