"""Experiment harness regenerating every table and figure of the paper.

Each experiment of Section 7 has a runner keyed by its table/figure
number (``table1``, ``fig8`` … ``fig16``); see
:mod:`repro.experiments.runner` for the registry and
``python -m repro --help`` for the command-line interface.

Scaling: the paper's harness is C++ on a 2.66 GHz server; this one is
CPython.  Every runner accepts a ``scale`` knob that shrinks dataset
and workload sizes proportionally (default 1.0 regenerates the paper's
sizes; the pytest benchmarks use smaller scales so the suite stays
fast).  Shapes — who wins, how curves move with each parameter — are
preserved at any scale; absolute times are not comparable by design.
"""

from repro.experiments.config import (
    DOMINANCE_CRITERIA,
    KNN_CRITERIA,
    PaperDefaults,
)
from repro.experiments.dominance import (
    DominanceMeasurement,
    run_dominance_experiment,
)
from repro.experiments.knn import KNNMeasurement, run_knn_experiment
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.table1 import run_table1

__all__ = [
    "PaperDefaults",
    "DOMINANCE_CRITERIA",
    "KNN_CRITERIA",
    "DominanceMeasurement",
    "run_dominance_experiment",
    "KNNMeasurement",
    "run_knn_experiment",
    "run_table1",
    "EXPERIMENTS",
    "run_experiment",
]
