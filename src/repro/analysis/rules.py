"""The domlint rules: the DOM1xx domain invariants of the dominance stack.

Each rule encodes one way past bugs (or the paper's theorems) say this
codebase must not drift.  See ``docs/static-analysis.md`` for a
violating/compliant example of every rule and for how to add one.  The
dataflow-powered DOM2xx rules live in :mod:`repro.analysis.rules_flow`
and are re-exported here through :data:`ALL_RULES`.

The DOM1xx rules, by suppression key:

``verdict-bool``
    A :class:`~repro.robust.decision.Verdict` is tri-state; truth-
    testing one outside :mod:`repro.robust` silently maps UNCERTAIN to
    an arbitrary branch (``Verdict.__bool__`` raises at runtime, but
    only on the path actually taken).
``criterion-template``
    Criteria must override ``_decide``; overriding ``dominates``
    bypasses the template method's dimensionality validation.
``margin-compare``
    Raw float ``==``/``<=``/``>=`` against a dominance margin belongs
    to the escalation ladder's tolerance policy, not ad-hoc call sites.
``metric-name``
    Every metric key handed to :mod:`repro.obs` must be registered in
    :mod:`repro.obs.names`, so typo'd keys die at lint time.
``paper-ref``
    Docstring citations (``Lemma 7``, ``Eq. (14)``) must exist in
    PAPER.md's reference index.
``unseeded-random``
    Only :mod:`repro.data` may draw randomness, and only through a
    seeded generator; everything else must thread a seed or rng.
``swallowed-arithmetic``
    The numeric kernels may not catch bare/overbroad exceptions: an
    ``except Exception`` swallows :class:`ArithmeticError`, turning
    numerical corruption into a silently wrong answer.
``hot-path-loop``
    The O(d) fast path in :mod:`repro.core.hyperbola` must not grow
    Python-level loops or ``np.linalg`` calls.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.base import (
    FileContext,
    Finding,
    Rule,
    Severity,
    attribute_chain,
    in_packages,
    iter_boolean_contexts,
)
from repro.analysis.paper_refs import extract_citations_with_offsets
from repro.obs import names as _metric_names

__all__ = ["ALL_RULES", "rules_by_name"]


def _terminal_name(node: ast.AST) -> "str | None":
    """The rightmost identifier of a Name/Attribute/Call expression."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _import_aliases(tree: ast.Module) -> "dict[str, str]":
    """Local alias → canonical dotted module for plain imports.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``import random`` → ``{"random": "random"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module is not None:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _canonical_chain(
    node: ast.AST, aliases: "dict[str, str]"
) -> "tuple[str, ...] | None":
    """Attribute chain with its root resolved through import aliases."""
    chain = attribute_chain(node)
    if chain is None:
        return None
    root = aliases.get(chain[0])
    if root is None:
        return chain
    return (*root.split("."), *chain[1:])


class VerdictBoolRule(Rule):
    name = "verdict-bool"
    code = "DOM101"
    description = (
        "tri-state Verdict values must not be truth-tested outside repro.robust"
    )
    rationale = (
        "Verdict is TRUE/FALSE/UNCERTAIN; `if verdict:` silently maps "
        "UNCERTAIN onto whichever branch bool() picks, so an undecided "
        "dominance test becomes a confidently wrong answer."
    )
    invariant = (
        "Outside repro.robust, no identifier containing 'verdict' appears "
        "in a boolean context; use Decision.as_bool() or compare against "
        "Verdict.TRUE/FALSE."
    )
    bad_example = "if verdict:\n    prune(node)\n"
    good_example = "if verdict is Verdict.TRUE:\n    prune(node)\n"

    def applies(self, module: str) -> bool:
        return not in_packages(module, "repro.robust")

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        for expr in iter_boolean_contexts(ctx.tree):
            identifier = _terminal_name(expr)
            if isinstance(expr, ast.Call):
                continue  # decision.as_bool() and friends are the fix
            if identifier is not None and "verdict" in identifier.lower():
                yield self.finding(
                    ctx,
                    expr,
                    f"truth-testing {identifier!r}: a Verdict is tri-state; "
                    "compare against Verdict.TRUE/FALSE or use "
                    "Decision.as_bool()",
                )
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "bool"
                and node.args
            ):
                identifier = _terminal_name(node.args[0])
                if identifier is not None and "verdict" in identifier.lower():
                    yield self.finding(
                        ctx,
                        node,
                        f"bool({identifier}) collapses a tri-state Verdict; "
                        "use Decision.as_bool() for the pruning-safe boolean",
                    )


class CriterionTemplateRule(Rule):
    name = "criterion-template"
    code = "DOM102"
    description = (
        "criteria override _decide, never dominates (the validation template)"
    )
    rationale = (
        "DominanceCriterion.dominates() is a template method that "
        "validates dimensionality before dispatching; overriding it "
        "bypasses the validation for every caller."
    )
    invariant = (
        "Subclasses of DominanceCriterion override _decide only; "
        "dominates stays inherited from repro.core.base."
    )
    bad_example = (
        "class Fast(DominanceCriterion):\n"
        "    def dominates(self, a, b): ...\n"
    )
    good_example = (
        "class Fast(DominanceCriterion):\n"
        "    def _decide(self, a, b): ...\n"
    )

    def applies(self, module: str) -> bool:
        return module != "repro.core.base"

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(
                (base_name := _terminal_name(base)) is not None
                and base_name.endswith("Criterion")
                for base in node.bases
            ):
                continue
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "dominates"
                ):
                    yield self.finding(
                        ctx,
                        item,
                        f"{node.name}.dominates overrides the template "
                        "method and bypasses its dimensionality "
                        "validation; override _decide instead",
                    )


class MarginCompareRule(Rule):
    name = "margin-compare"
    code = "DOM103"
    description = (
        "no raw float ==/<=/>= against dominance margins outside the "
        "ladder's tolerance policy"
    )
    rationale = (
        "Margins near zero are exactly where floating point lies; ad-hoc "
        "comparisons re-implement (and disagree with) the escalation "
        "ladder's tolerance policy, which is the one place allowed to "
        "decide how close is too close."
    )
    invariant = (
        "In repro.core/repro.robust, identifiers containing 'margin' are "
        "never compared with ==/<=/>= outside the ladder and exact "
        "arbiter modules."
    )
    bad_example = "if margin <= 0.0:\n    return False\n"
    good_example = "verdict = ladder.classify(margin)  # tolerance policy\n"

    #: The tolerance policy itself, and the exact (integer) arbiter.
    _EXEMPT = ("repro.robust.ladder", "repro.robust.exact")

    def applies(self, module: str) -> bool:
        return (
            in_packages(module, "repro.core", "repro.robust")
            and module not in self._EXEMPT
        )

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.LtE, ast.GtE)):
                    continue
                for operand in (operands[index], operands[index + 1]):
                    identifier = _terminal_name(operand)
                    if identifier is not None and "margin" in identifier.lower():
                        yield self.finding(
                            ctx,
                            node,
                            f"raw float comparison against {identifier!r}; "
                            "margins near the decision boundary need the "
                            "ladder's certified tolerance policy "
                            "(repro.robust.ladder)",
                        )
                        break


class MetricNameRule(Rule):
    name = "metric-name"
    code = "DOM104"
    description = (
        "obs metric keys must be registered in repro.obs.names "
        "(typo'd keys die at lint time)"
    )
    rationale = (
        "A typo'd metric key creates a new, silently empty counter: "
        "dashboards flatline while the code looks instrumented. "
        "Registering every key in repro.obs.names turns that into a "
        "lint-time error."
    )
    invariant = (
        "Every literal (or f-string family) passed to obs.incr/observe/"
        "trace satisfies names.is_known()."
    )
    bad_example = 'obs.incr("hyperbola.clls")  # typo, never registered\n'
    good_example = "obs.incr(names.HYPERBOLA_CALLS)\n"

    _METRIC_FNS = frozenset({"incr", "observe", "add_time", "trace"})
    _REGISTRY_MODULES = frozenset({"names", "_names"})

    def applies(self, module: str) -> bool:
        return not in_packages(module, "repro.obs")

    def _references_registry(self, node: ast.AST) -> bool:
        chain = attribute_chain(node.func if isinstance(node, ast.Call) else node)
        if chain is None:
            return False
        return any(part in self._REGISTRY_MODULES for part in chain[:-1]) or (
            len(chain) >= 2 and chain[-2] in self._REGISTRY_MODULES
        )

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in self._METRIC_FNS
                and _terminal_name(func.value) == "obs"
            ):
                continue
            if not node.args:
                continue
            key = node.args[0]
            finding = self._check_key(ctx, node, key)
            if finding is not None:
                yield finding

    def _check_key(
        self, ctx: FileContext, call: ast.Call, key: ast.expr
    ) -> "Finding | None":
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            if _metric_names.is_known(key.value):
                return None
            return self.finding(
                ctx,
                call,
                f"metric name {key.value!r} is not registered in "
                "repro.obs.names",
            )
        if isinstance(key, ast.JoinedStr):
            pattern = "".join(
                part.value
                if isinstance(part, ast.Constant) and isinstance(part.value, str)
                else "*"
                for part in key.values
            )
            if _metric_names.is_known(pattern):
                return None
            return self.finding(
                ctx,
                call,
                f"dynamic metric name {pattern!r} matches no family "
                "registered in repro.obs.names",
            )
        if isinstance(key, ast.Name):
            if key.id.isupper():
                return None  # an imported registry constant
            return self.finding(
                ctx,
                call,
                f"metric name {key.id!r} is not statically resolvable; "
                "use a repro.obs.names constant or family helper",
            )
        if isinstance(key, (ast.Attribute, ast.Call)):
            if self._references_registry(key):
                return None
            terminal = _terminal_name(key)
            if terminal is not None and terminal.isupper():
                return None
            return self.finding(
                ctx,
                call,
                "metric name expression does not reference repro.obs.names; "
                "route dynamic names through a registry family helper",
            )
        return self.finding(
            ctx,
            call,
            "metric name is not statically resolvable; use a "
            "repro.obs.names constant or family helper",
        )


class PaperRefRule(Rule):
    name = "paper-ref"
    code = "DOM105"
    description = (
        "docstring citations (Lemma N, Eq. N, Section X.Y) must exist "
        "in PAPER.md"
    )
    rationale = (
        "The code justifies its pruning cases by citing the paper; a "
        "citation that does not resolve against PAPER.md is either a "
        "typo or a claim the paper never made."
    )
    invariant = (
        "Every 'Lemma N' / 'Eq. (N)' / 'Section X.Y' string in a "
        "docstring resolves in the PAPER.md reference index."
    )
    bad_example = '"""Prunes by Lemma 99."""  # PAPER.md has no Lemma 99\n'
    good_example = '"""Prunes by Lemma 7 (minimum distance bound)."""\n'

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        index = ctx.paper_index
        if index is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node,
                (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
            ):
                continue
            docstring = ast.get_docstring(node, clean=False)
            if not docstring:
                continue
            doc_node = node.body[0].value  # type: ignore[union-attr]
            base_line = getattr(doc_node, "lineno", 1)
            for kind, number, offset in extract_citations_with_offsets(
                docstring
            ):
                if (kind, number) in index:
                    continue
                line = base_line + docstring.count("\n", 0, offset)
                anchor = ast.Constant(value=None)
                anchor.lineno = line
                anchor.col_offset = 0
                yield self.finding(
                    ctx,
                    anchor,
                    f"docstring cites {kind} {number}, which does not exist "
                    "in PAPER.md's reference index",
                )


class UnseededRandomRule(Rule):
    name = "unseeded-random"
    code = "DOM106"
    description = (
        "randomness outside repro.data must come from a seeded generator"
    )
    rationale = (
        "This is a reproduction: an unseeded draw anywhere in the "
        "pipeline makes experiment runs non-replayable and benchmark "
        "deltas unattributable."
    )
    invariant = (
        "Outside repro.data, no module-level random/np.random calls; "
        "randomness flows through an explicitly seeded Generator or an "
        "rng/seed parameter."
    )
    bad_example = "jitter = random.random()\n"
    good_example = "jitter = rng.random()  # rng threaded from the caller\n"

    _STDLIB_RANDOM_FNS = frozenset(
        {
            "random",
            "randint",
            "randrange",
            "uniform",
            "choice",
            "choices",
            "shuffle",
            "sample",
            "gauss",
            "normalvariate",
            "betavariate",
            "expovariate",
            "seed",
            "getrandbits",
        }
    )

    def applies(self, module: str) -> bool:
        return not in_packages(module, "repro.data")

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _canonical_chain(node.func, aliases)
            if chain is None:
                continue
            if chain[:2] == ("numpy", "random"):
                if len(chain) == 3 and chain[2] == "default_rng":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node,
                            "np.random.default_rng() without a seed is "
                            "non-reproducible; thread a seed (or an rng) in",
                        )
                elif len(chain) == 3:
                    yield self.finding(
                        ctx,
                        node,
                        f"np.random.{chain[2]} uses the global (unseeded) "
                        "NumPy RNG; use a seeded np.random.default_rng "
                        "generator",
                    )
            elif chain[0] == "random" and aliases.get("random") == "random":
                if len(chain) == 2 and chain[1] in self._STDLIB_RANDOM_FNS:
                    yield self.finding(
                        ctx,
                        node,
                        f"random.{chain[1]} draws from the global stdlib "
                        "RNG; use a seeded np.random.default_rng generator",
                    )
                elif (
                    len(chain) == 2
                    and chain[1] == "Random"
                    and not node.args
                    and not node.keywords
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "random.Random() without a seed is non-reproducible",
                    )


class SwallowedArithmeticRule(Rule):
    name = "swallowed-arithmetic"
    code = "DOM107"
    description = (
        "numeric kernels must not catch bare/overbroad exceptions "
        "(they swallow ArithmeticError)"
    )
    rationale = (
        "The escalation ladder relies on ArithmeticError propagating out "
        "of the kernels; an `except Exception` turns numerical "
        "corruption into a silently wrong dominance verdict."
    )
    invariant = (
        "In repro.core/robust/geometry, no bare except and no handler "
        "catching Exception/BaseException without re-raising."
    )
    bad_example = "try:\n    roots = solve(c)\nexcept Exception:\n    return None\n"
    good_example = "try:\n    roots = solve(c)\nexcept ValueError:\n    raise\n"

    def applies(self, module: str) -> bool:
        return in_packages(
            module, "repro.core", "repro.robust", "repro.geometry"
        )

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' swallows ArithmeticError in a numeric "
                    "kernel; catch the specific numeric/validation "
                    "exceptions",
                )
                continue
            caught = (
                list(node.type.elts)
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for exc in caught:
                identifier = _terminal_name(exc)
                if identifier in ("Exception", "BaseException"):
                    yield self.finding(
                        ctx,
                        node,
                        f"'except {identifier}' swallows ArithmeticError in "
                        "a numeric kernel; catch the specific "
                        "numeric/validation exceptions",
                    )
                    break


class HotPathLoopRule(Rule):
    name = "hot-path-loop"
    code = "DOM108"
    severity = Severity.WARNING
    description = (
        "the O(d) Hyperbola fast path must stay free of Python-level "
        "loops and np.linalg calls"
    )
    rationale = (
        "The paper's Theorem 2 speedup exists because the common cases "
        "cost O(d) scalar arithmetic; one Python loop or LAPACK dispatch "
        "on that path eats the entire constant-factor win."
    )
    invariant = (
        "Functions on repro.core.hyperbola's fast path contain no "
        "for/while over dimensions and no np.linalg.* calls."
    )
    bad_example = "for i in range(d):\n    acc += (p[i] - q[i]) ** 2\n"
    good_example = "acc = float(np.dot(diff, diff))\n"

    def applies(self, module: str) -> bool:
        return module == "repro.core.hyperbola"

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.While)):
                kind = "for" if isinstance(node, ast.For) else "while"
                yield self.finding(
                    ctx,
                    node,
                    f"Python-level '{kind}' loop in the O(d) fast path; "
                    "vectorise, hoist it out of repro.core.hyperbola, or "
                    "justify with a suppression",
                )
            elif isinstance(node, ast.Attribute):
                chain = _canonical_chain(node, aliases)
                # Anchor on the full np.linalg.<fn> chain so the inner
                # `np.linalg` attribute node is not double-counted.
                if (
                    chain is not None
                    and len(chain) == 3
                    and chain[:2] == ("numpy", "linalg")
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "np.linalg call in the O(d) fast path (LAPACK "
                        "dispatch overhead dominates d-dimensional "
                        "arithmetic); use explicit O(d) expressions",
                    )


from repro.analysis.rules_flow import FLOW_RULES  # noqa: E402  (registry tail)

#: Every rule, in reporting order: the DOM1xx AST-pattern rules followed
#: by the DOM2xx dataflow rules from :mod:`repro.analysis.rules_flow`.
ALL_RULES: "tuple[Rule, ...]" = (
    VerdictBoolRule(),
    CriterionTemplateRule(),
    MarginCompareRule(),
    MetricNameRule(),
    PaperRefRule(),
    UnseededRandomRule(),
    SwallowedArithmeticRule(),
    HotPathLoopRule(),
    *FLOW_RULES,
)


def rules_by_name(selection: "Iterable[str] | None" = None) -> "tuple[Rule, ...]":
    """Resolve a rule-name selection (None → all rules).

    Accepts rule names (``metric-name``) and codes (``DOM104``).
    """
    if selection is None:
        return ALL_RULES
    wanted = {token.strip() for token in selection if token.strip()}
    unknown = wanted - {rule.name for rule in ALL_RULES} - {
        rule.code for rule in ALL_RULES
    }
    if unknown:
        known = ", ".join(rule.name for rule in ALL_RULES)
        raise ValueError(
            f"unknown rule(s): {', '.join(sorted(unknown))}; known: {known}"
        )
    return tuple(
        rule for rule in ALL_RULES if rule.name in wanted or rule.code in wanted
    )
