"""``repro lint`` — command-line front end for the domlint engine.

Usage (equivalently ``python -m repro.analysis``)::

    repro lint [PATHS...] [--format=human|json] [--rules a,b]
               [--baseline FILE] [--update-baseline] [--no-cache]
               [--paper FILE] [--list-rules] [--explain RULE]

With no paths the repository's ``src/repro`` tree is linted.  Exit code
0 means no actionable findings; 1 means findings (or parse errors);
2 means usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.base import Rule
from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import LintReport, lint_paths
from repro.analysis.rules import ALL_RULES, rules_by_name

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "domlint: domain-aware static analysis for the dominance stack"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files/directories to lint (default: the repo's src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="NAMES",
        help="comma-separated rule names/codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE_NAME} next to the linted tree "
            "when present)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to exactly the current findings "
            "(new ones are added, fixed ones expire) and exit 0"
        ),
    )
    parser.add_argument(
        "--paper",
        default=None,
        metavar="FILE",
        help="PAPER.md location (default: walk up from the linted paths)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the PAPER.md reference-index cache",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rules and exit",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help=(
            "print a rule's rationale, invariant and a minimal "
            "good/bad example (by name or code, e.g. DOM203) and exit"
        ),
    )
    return parser


def _default_paths() -> "list[Path]":
    """The repo's src/repro tree when run from a checkout, else cwd."""
    here = Path.cwd().resolve()
    for directory in (here, *here.parents):
        candidate = directory / "src" / "repro"
        if candidate.is_dir():
            return [candidate]
    package_dir = Path(__file__).resolve().parent.parent
    return [package_dir]


def _find_baseline(paths: "Sequence[Path]") -> "Path | None":
    """Walk up from the first linted path looking for a baseline file."""
    if not paths:
        return None
    start = paths[0] if paths[0].is_dir() else paths[0].parent
    for directory in (start.resolve(), *start.resolve().parents):
        candidate = directory / DEFAULT_BASELINE_NAME
        if candidate.is_file():
            return candidate
    return None


def _render_human(report: LintReport) -> str:
    lines = []
    for path, message in report.parse_errors:
        lines.append(f"{path}: error[parse] {message}")
    for finding in report.actionable:
        lines.append(finding.render())
    summary = (
        f"domlint: {len(report.actionable)} finding(s) in "
        f"{report.files_checked} file(s)"
    )
    extras = []
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed")
    if report.parse_errors:
        extras.append(f"{len(report.parse_errors)} unparsable")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    return "\n".join(lines)


def _render_explanation(rule: "Rule") -> str:
    """The ``--explain`` card: rationale, invariant, good/bad example."""
    lines = [
        f"{rule.code} ({rule.name}) — {rule.severity.value}",
        "",
        rule.description,
    ]
    if rule.rationale:
        lines += ["", "Why:", f"  {rule.rationale}"]
    if rule.invariant:
        lines += ["", "Invariant:", f"  {rule.invariant}"]
    if rule.bad_example:
        lines += ["", "Violating:"]
        lines += [f"    {line}" for line in rule.bad_example.rstrip().splitlines()]
    if rule.good_example:
        lines += ["", "Compliant:"]
        lines += [f"    {line}" for line in rule.good_example.rstrip().splitlines()]
    lines += [
        "",
        f"Suppress a deliberate exception with: # domlint: ignore[{rule.name}]",
    ]
    return "\n".join(lines)


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name:28s} {rule.description}")
        return 0

    if args.explain is not None:
        try:
            (rule,) = rules_by_name([args.explain])
        except ValueError as exc:
            parser.error(str(exc))
        print(_render_explanation(rule))
        return 0

    try:
        rules = rules_by_name(
            args.rules.split(",") if args.rules is not None else None
        )
    except ValueError as exc:
        parser.error(str(exc))

    paths = (
        [Path(p) for p in args.paths] if args.paths else _default_paths()
    )
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    baseline_path: "Path | None"
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = _find_baseline(paths)

    baseline = Baseline()
    if (
        baseline_path is not None
        and baseline_path.is_file()
        and not args.update_baseline
    ):
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            parser.error(str(exc))

    report = lint_paths(
        paths,
        rules=rules,
        baseline=baseline,
        paper=Path(args.paper) if args.paper is not None else None,
        cache=not args.no_cache,
    )

    if args.update_baseline:
        if baseline_path is None:
            start = paths[0] if paths[0].is_dir() else paths[0].parent
            baseline_path = start / DEFAULT_BASELINE_NAME
        Baseline.from_findings(report.all_findings).save(baseline_path)
        print(
            f"domlint: baseline updated ({len(report.all_findings)} "
            f"finding(s) grandfathered) -> {baseline_path}"
        )
        return 0

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(_render_human(report))
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
