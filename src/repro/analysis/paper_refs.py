"""Extraction and indexing of paper references (the paper-ref rule).

Docstrings across the reproduction cite the source paper constantly —
``Lemma 1``, ``Equation (14)``, ``Section 4.3.2`` — and nothing used to
stop a refactor from leaving a citation pointing at a lemma that never
existed.  This module parses both sides of that contract:

- :func:`extract_citations` pulls ``(kind, number)`` citations out of
  free text, understanding plurals, lists and ranges ("Lemmas 2-3",
  "Eqs. 1, 3 and 4", "Sections 7.1-7.2", "§5.1");
- :class:`PaperIndex` holds the set of references that actually exist
  in PAPER.md (whose *Reference index* appendix enumerates the paper's
  structure) and answers membership queries.

Building the index costs one pass over PAPER.md; a small JSON cache
keyed by the file's SHA-256 makes repeat lint runs (and the CI job)
skip even that.

>>> sorted(extract_citations("By Lemmas 2-3 and Eq. (14)."))
[('equation', '14'), ('lemma', '2'), ('lemma', '3')]
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

__all__ = [
    "Citation",
    "extract_citations",
    "PaperIndex",
    "find_paper",
    "CACHE_DIR_NAME",
]

#: A citation is a (kind, number) pair; kinds are singular lowercase.
Citation = tuple[str, str]

CACHE_DIR_NAME = ".domlint_cache"

# Keyword → canonical kind.  Plural forms introduce lists/ranges.
_KIND_WORDS = {
    "lemma": "lemma",
    "lemmas": "lemma",
    "theorem": "theorem",
    "theorems": "theorem",
    "definition": "definition",
    "definitions": "definition",
    "eq": "equation",
    "eqs": "equation",
    "equation": "equation",
    "equations": "equation",
    "section": "section",
    "sections": "section",
    "algorithm": "algorithm",
    "algorithms": "algorithm",
    "table": "table",
    "tables": "table",
    "figure": "figure",
    "figures": "figure",
    "fig": "figure",
    "figs": "figure",
}

_NUMBER = r"\(?(\d+(?:\.\d+)*)\)?"
_HEAD_RE = re.compile(
    r"\b(?P<kind>" + "|".join(_KIND_WORDS) + r")\.?\s*" + _NUMBER,
    re.IGNORECASE,
)
_SECTION_SIGN_RE = re.compile(r"§\s*" + _NUMBER)
# Continuations after the head number: ", 3", " and 4", "-5", "–7" ...
# (matched with .match(text, pos), which anchors at pos).
_CONT_RE = re.compile(
    r"\s*(?P<sep>,|and\b|&|–|—|-)\s*" + _NUMBER,
    re.IGNORECASE,
)
_DASHES = {"-", "–", "—", "–", "—"}
_MAX_RANGE_SPAN = 50


def _expand_range(start: str, end: str) -> "list[str]":
    """Numbers covered by a cited range, e.g. ``2-5`` or ``7.1-7.2``.

    Dotted endpoints expand over their last component when the prefixes
    agree; anything irregular degrades to just the two endpoints.
    """
    s_parts, e_parts = start.split("."), end.split(".")
    if len(s_parts) != len(e_parts) or s_parts[:-1] != e_parts[:-1]:
        return [start, end]
    try:
        lo, hi = int(s_parts[-1]), int(e_parts[-1])
    except ValueError:  # pragma: no cover - regex only admits digits
        return [start, end]
    if lo > hi or hi - lo > _MAX_RANGE_SPAN:
        return [start, end]
    prefix = ".".join(s_parts[:-1])
    return [
        (prefix + "." if prefix else "") + str(i) for i in range(lo, hi + 1)
    ]


def _iter_matches(text: str) -> "Iterator[tuple[str, list[str], int]]":
    """Yield (kind, numbers, offset) for each citation group in *text*."""
    for match in _HEAD_RE.finditer(text):
        keyword = match.group("kind").lower()
        kind = _KIND_WORDS[keyword]
        plural = keyword.endswith("s")
        numbers = [match.group(2)]
        pos = match.end()
        while True:
            cont = _CONT_RE.match(text, pos)
            if cont is None:
                break
            dash = cont.group("sep") in _DASHES
            # A comma/"and" list after a singular keyword is prose, not
            # a citation list ("Lemma 1, 2014 ..." cites only Lemma 1);
            # ranges read naturally after either form.
            if not dash and not plural:
                break
            if dash:
                numbers = numbers[:-1] + _expand_range(
                    numbers[-1], cont.group(2)
                )
            else:
                numbers.append(cont.group(2))
            pos = cont.end()
        yield kind, numbers, match.start()
    for match in _SECTION_SIGN_RE.finditer(text):
        yield "section", [match.group(1)], match.start()


def extract_citations(text: str) -> "set[tuple[str, str]]":
    """All distinct ``(kind, number)`` citations in *text*."""
    found: set[tuple[str, str]] = set()
    for kind, numbers, _ in _iter_matches(text):
        found.update((kind, number) for number in numbers)
    return found


def extract_citations_with_offsets(
    text: str,
) -> "Iterator[tuple[str, str, int]]":
    """Yield ``(kind, number, character_offset)`` for every citation."""
    for kind, numbers, offset in _iter_matches(text):
        for number in numbers:
            yield kind, number, offset


def find_paper(start: "Path | None" = None) -> "Path | None":
    """Locate PAPER.md by walking up from *start* (default: cwd)."""
    here = (start if start is not None else Path.cwd()).resolve()
    for directory in (here, *here.parents):
        candidate = directory / "PAPER.md"
        if candidate.is_file():
            return candidate
    return None


@dataclass(frozen=True)
class PaperIndex:
    """The set of references that exist in the paper (per PAPER.md)."""

    references: "frozenset[tuple[str, str]]"
    source: "Path | None" = None

    def __contains__(self, citation: "tuple[str, str]") -> bool:
        return citation in self.references

    @classmethod
    def from_text(cls, text: str, source: "Path | None" = None) -> "PaperIndex":
        return cls(references=frozenset(extract_citations(text)), source=source)

    @classmethod
    def load(cls, paper: Path, cache: bool = True) -> "PaperIndex":
        """Build the index from *paper*, via the JSON cache when valid.

        The cache lives in ``.domlint_cache/paper_refs.json`` next to
        the paper and is keyed by the paper's SHA-256, so editing
        PAPER.md invalidates it automatically.  Cache IO failures are
        never fatal — the index is simply rebuilt in memory.
        """
        text = paper.read_text(encoding="utf-8")
        if not cache:
            return cls.from_text(text, source=paper)
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        cache_path = paper.parent / CACHE_DIR_NAME / "paper_refs.json"
        try:
            payload = json.loads(cache_path.read_text(encoding="utf-8"))
            if payload.get("sha256") == digest:
                references = frozenset(
                    (str(kind), str(number))
                    for kind, number in payload.get("references", [])
                )
                return cls(references=references, source=paper)
        except (OSError, ValueError):
            pass
        index = cls.from_text(text, source=paper)
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            cache_path.write_text(
                json.dumps(
                    {
                        "sha256": digest,
                        "references": sorted(index.references),
                    },
                    indent=2,
                ),
                encoding="utf-8",
            )
        except OSError:  # pragma: no cover - read-only checkouts
            pass
        return index
