"""Grandfathering: the domlint baseline file.

A baseline lets a new rule land with existing violations acknowledged
but frozen: baselined findings don't fail the run, *new* ones do, and
fixing a baselined finding retires its entry the next time the baseline
is updated (``repro lint --update-baseline``) — grandfathered debt can
only shrink.

Entries are matched by a *fingerprint* of ``(rule, path, normalized
line content)`` rather than line numbers, so unrelated edits that shift
a file don't churn the baseline.  Identical lines hash identically, so
matching is a multiset: two baselined copies of a finding absorb at
most two occurrences.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.base import Finding

__all__ = ["Baseline", "fingerprint", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".domlint-baseline.json"

_FORMAT_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding across line-number drift."""
    normalized = " ".join(finding.snippet.split())
    payload = f"{finding.rule}\x1f{finding.path}\x1f{normalized}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


@dataclass
class Baseline:
    """The set of grandfathered findings (a multiset of fingerprints)."""

    entries: "Counter[str]" = field(default_factory=Counter)
    #: Human-readable context kept alongside each fingerprint.
    details: "dict[str, dict[str, str]]" = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file (a missing file is an empty baseline)."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        except (OSError, ValueError) as exc:
            raise ValueError(f"unreadable baseline {path}: {exc}") from exc
        entries: Counter[str] = Counter()
        details: dict[str, dict[str, str]] = {}
        for entry in payload.get("findings", []):
            fp = str(entry["fingerprint"])
            entries[fp] += int(entry.get("count", 1))
            details[fp] = {
                "rule": str(entry.get("rule", "")),
                "path": str(entry.get("path", "")),
                "snippet": str(entry.get("snippet", "")),
            }
        return cls(entries=entries, details=details)

    @classmethod
    def from_findings(cls, findings: "Iterable[Finding]") -> "Baseline":
        """A baseline grandfathering exactly *findings*."""
        baseline = cls()
        for finding in findings:
            fp = fingerprint(finding)
            baseline.entries[fp] += 1
            baseline.details[fp] = {
                "rule": finding.rule,
                "path": finding.path,
                "snippet": " ".join(finding.snippet.split()),
            }
        return baseline

    def split(
        self, findings: "Iterable[Finding]"
    ) -> "tuple[list[Finding], list[Finding]]":
        """Partition *findings* into (actionable, baselined).

        Multiset semantics: each baseline entry absorbs at most its
        recorded count of matching findings; the excess is actionable.
        """
        remaining = Counter(self.entries)
        actionable: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            fp = fingerprint(finding)
            if remaining[fp] > 0:
                remaining[fp] -= 1
                baselined.append(finding)
            else:
                actionable.append(finding)
        return actionable, baselined

    def save(self, path: Path) -> None:
        """Write the baseline, sorted for stable diffs."""
        records = []
        for fp, count in sorted(self.entries.items()):
            detail = self.details.get(fp, {})
            records.append(
                {
                    "fingerprint": fp,
                    "count": count,
                    "rule": detail.get("rule", ""),
                    "path": detail.get("path", ""),
                    "snippet": detail.get("snippet", ""),
                }
            )
        records.sort(key=lambda r: (r["path"], r["rule"], r["fingerprint"]))
        path.write_text(
            json.dumps(
                {"version": _FORMAT_VERSION, "findings": records}, indent=2
            )
            + "\n",
            encoding="utf-8",
        )
