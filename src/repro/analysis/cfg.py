"""Per-function control-flow graphs for the domlint dataflow rules.

PR 3's rules are single-node AST patterns; the DOM2xx family
(:mod:`repro.analysis.rules_flow`) needs *ordering*: "every ack path
after a WAL append passes an fsync", "this loop runs only on the
budget-is-None path".  This module builds the statement-level CFG those
queries run on.

Granularity
-----------

A :class:`Block` holds a straight-line run of :class:`Unit` objects.  A
unit is *one evaluation step*: a simple statement evaluates all of
itself, an ``if``/``while`` header evaluates only its test, a ``for``
header only its iterable, a ``with`` header only its context
expressions.  Compound statements therefore contribute a header unit to
the enclosing block plus separate blocks for their bodies — so "a call
inside the ``if`` test" and "a call inside the ``if`` body" occupy
different CFG positions, which is exactly the distinction the
durability and budget rules need.

Nested ``def``/``async def``/``class`` bodies are *opaque*: they
execute on their own activation, so they appear as a single definition
unit and their bodies get their own CFGs (via :func:`function_cfgs`).

Edges
-----

Edges are labelled ``"normal"`` or ``"exception"``.  Exception edges
are deliberately coarse — every block inside a ``try`` body may jump to
every handler — because the rules that traverse normal edges only
(e.g. durability ordering, which must not demand an fsync on a path
that *raises* instead of acking) still need dominance to be computed
soundly over all edges.

Dominance
---------

:meth:`CFG.dominates` answers unit-level dominance: block-level
dominators (the standard iterative fixpoint over all edges) refined by
intra-block position.  ``a`` dominates ``b`` when every path from the
function entry to ``b`` executes ``a`` first.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = ["Block", "CFG", "Unit", "build_cfg", "function_cfgs"]

#: Statement types that open a new scope and are therefore opaque here.
_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass
class Unit:
    """One evaluation step inside a block.

    ``exprs`` is what actually evaluates at this point (for an ``if``
    header, the test; for a simple statement, the statement itself);
    event classifiers should walk ``exprs``, never ``node`` — walking
    the owning compound statement would leak body events into the
    header.
    """

    node: ast.stmt
    exprs: "tuple[ast.AST, ...]"
    kind: str  # "stmt" | "test" | "iter" | "with" | "return" | "raise"
    block: "Block" = field(repr=False, default=None)  # type: ignore[assignment]
    pos: int = -1

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)

    def walk(self) -> "Iterator[ast.AST]":
        """Every AST node evaluated at this unit."""
        for expr in self.exprs:
            yield from ast.walk(expr)


@dataclass
class Block:
    """A straight-line run of units plus its labelled edges."""

    id: int
    units: "list[Unit]" = field(default_factory=list)
    succ: "list[tuple[Block, str]]" = field(default_factory=list)
    pred: "list[tuple[Block, str]]" = field(default_factory=list)
    #: When the block ends in a conditional branch: the test expression
    #: and the successors taken when it is true / false.  Dataflow
    #: passes use this to refine facts like ``budget is None``.
    test: "ast.expr | None" = None
    true_succ: "Block | None" = None
    false_succ: "Block | None" = None

    def add_edge(self, other: "Block", kind: str = "normal") -> None:
        if (other, kind) not in self.succ:
            self.succ.append((other, kind))
            other.pred.append((self, kind))

    def normal_succ(self) -> "list[Block]":
        return [b for b, kind in self.succ if kind == "normal"]

    def __hash__(self) -> int:
        return self.id

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [unit.lineno for unit in self.units]
        succ = [(b.id, kind) for b, kind in self.succ]
        return f"Block(id={self.id}, lines={lines}, succ={succ})"


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self.fn = fn
        self.blocks: "list[Block]" = []
        self.entry = self._new_block()
        self.exit = self._new_block()
        self._dominators: "dict[Block, set[Block]] | None" = None

    # ------------------------------------------------------------------
    # Construction helpers (used by the builder)
    # ------------------------------------------------------------------
    def _new_block(self) -> Block:
        block = Block(id=len(self.blocks))
        self.blocks.append(block)
        return block

    def _seal(self) -> None:
        """Index units and drop unreachable empty blocks from queries."""
        for block in self.blocks:
            for pos, unit in enumerate(block.units):
                unit.block = block
                unit.pos = pos
        self._dominators = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def units(self) -> "Iterator[Unit]":
        for block in self.blocks:
            yield from block.units

    def loop_headers(self) -> "Iterator[Unit]":
        """Every ``for``/``while`` header unit."""
        for unit in self.units():
            if unit.kind in ("iter", "test") and isinstance(
                unit.node, (ast.For, ast.AsyncFor, ast.While)
            ):
                yield unit

    def dominators(self) -> "dict[Block, set[Block]]":
        """Block-level dominator sets (entry dominates everything)."""
        if self._dominators is not None:
            return self._dominators
        all_blocks = set(self.blocks)
        dom: "dict[Block, set[Block]]" = {
            block: set(all_blocks) for block in self.blocks
        }
        dom[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for block in self.blocks:
                if block is self.entry:
                    continue
                preds = [p for p, _ in block.pred]
                if preds:
                    new = set.intersection(*(dom[p] for p in preds))
                else:
                    # Unreachable: dominated by everything (vacuous).
                    new = set(all_blocks)
                new.add(block)
                if new != dom[block]:
                    dom[block] = new
                    changed = True
        self._dominators = dom
        return dom

    def dominates(self, a: Unit, b: Unit) -> bool:
        """Whether every entry→``b`` path executes ``a`` first."""
        if a.block is b.block:
            return a.pos < b.pos
        return a.block in self.dominators()[b.block]

    def reachable_exits_avoiding(
        self, start: Unit, avoid: "Callable[[Unit], bool]"
    ) -> "list[Unit | None]":
        """Normal-path exits reachable from after *start* without *avoid*.

        Walks forward from the unit following *start* along **normal**
        edges only, refusing to step past any unit satisfying *avoid*.
        Returns the ``return`` units reached this way, with ``None``
        standing in for the implicit fall-off-the-end exit.  Exception
        edges are excluded on purpose: a path that raises never acks,
        so (for example) the durability rule must not demand an fsync
        on it.
        """
        exits: "list[Unit | None]" = []
        seen: "set[tuple[int, int]]" = set()
        work: "list[tuple[Block, int]]" = [(start.block, start.pos + 1)]
        while work:
            block, pos = work.pop()
            if (block.id, pos) in seen:
                continue
            seen.add((block.id, pos))
            blocked = False
            for unit in block.units[pos:]:
                if avoid(unit):
                    blocked = True
                    break
                if unit.kind == "return":
                    exits.append(unit)
                    blocked = True
                    break
                if unit.kind == "raise":
                    blocked = True  # the exception path never acks
                    break
            if blocked:
                continue
            if block is self.exit:
                exits.append(None)
                continue
            successors = block.normal_succ()
            if not successors and block is not self.exit:
                exits.append(None)
            for succ in successors:
                work.append((succ, 0))
        return exits


class _Builder:
    """Recursive-descent CFG construction for one function body."""

    def __init__(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self.cfg = CFG(fn)
        self.current = self.cfg.entry
        #: (loop header block, loop exit block) innermost-last.
        self.loops: "list[tuple[Block, Block]]" = []
        #: Innermost-last stacks of exception targets (handler entries).
        self.handlers: "list[list[Block]]" = []

    # -- plumbing ------------------------------------------------------
    def _start_block(self) -> Block:
        block = self.cfg._new_block()
        self.current = block
        return block

    def _exception_targets(self) -> "list[Block]":
        return self.handlers[-1] if self.handlers else []

    def _add_unit(
        self, node: ast.stmt, exprs: "tuple[ast.AST, ...]", kind: str
    ) -> Unit:
        unit = Unit(node=node, exprs=exprs, kind=kind)
        self.current.units.append(unit)
        for target in self._exception_targets():
            self.current.add_edge(target, "exception")
        return unit

    # -- statement dispatch --------------------------------------------
    def build(self) -> CFG:
        self._body(self.cfg.fn.body)
        self.current.add_edge(self.cfg.exit)
        self.cfg._seal()
        return self.cfg

    def _body(self, statements: "list[ast.stmt]") -> None:
        for statement in statements:
            self._statement(statement)

    def _statement(self, node: ast.stmt) -> None:
        if isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, (ast.While,)):
            self._while(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._for(node)
        elif isinstance(node, ast.Try):
            self._try(node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._with(node)
        elif isinstance(node, ast.Return):
            exprs = (node.value,) if node.value is not None else ()
            self._add_unit(node, exprs, "return")
            self.current.add_edge(self.cfg.exit)
            self._start_block()
        elif isinstance(node, ast.Raise):
            exprs = tuple(e for e in (node.exc, node.cause) if e is not None)
            self._add_unit(node, exprs, "raise")
            targets = self._exception_targets()
            for target in targets:
                self.current.add_edge(target, "exception")
            if not targets:
                self.current.add_edge(self.cfg.exit, "exception")
            self._start_block()
        elif isinstance(node, ast.Break):
            self._add_unit(node, (), "stmt")
            if self.loops:
                self.current.add_edge(self.loops[-1][1])
            self._start_block()
        elif isinstance(node, ast.Continue):
            self._add_unit(node, (), "stmt")
            if self.loops:
                self.current.add_edge(self.loops[-1][0])
            self._start_block()
        elif isinstance(node, _OPAQUE):
            # A nested definition runs on its own activation; only the
            # decorators and defaults evaluate here.
            exprs: "tuple[ast.AST, ...]" = tuple(node.decorator_list)
            self._add_unit(node, exprs, "stmt")
        elif isinstance(node, ast.Match):
            self._match(node)
        else:
            self._add_unit(node, (node,), "stmt")

    def _if(self, node: ast.If) -> None:
        self._add_unit(node, (node.test,), "test")
        header = self.current
        true_block = self._start_block()
        self._body(node.body)
        true_end = self.current
        false_block = self.cfg._new_block()
        self.current = false_block
        self._body(node.orelse)
        false_end = self.current
        join = self._start_block()
        header.add_edge(true_block)
        header.add_edge(false_block)
        header.test = node.test
        header.true_succ = true_block
        header.false_succ = false_block
        true_end.add_edge(join)
        false_end.add_edge(join)
        self.current = join

    def _while(self, node: ast.While) -> None:
        before = self.current
        header = self._start_block()
        before.add_edge(header)
        self._add_unit(node, (node.test,), "test")
        exit_block = self.cfg._new_block()
        body_block = self.cfg._new_block()
        header.add_edge(body_block)
        header.test = node.test
        header.true_succ = body_block
        header.false_succ = exit_block
        self.loops.append((header, exit_block))
        self.current = body_block
        self._body(node.body)
        self.current.add_edge(header)
        self.loops.pop()
        # The else clause runs on normal loop exit (not via break);
        # modelling it on the header's false edge is close enough.
        self.current = exit_block
        header.add_edge(exit_block)
        if node.orelse:
            self._body(node.orelse)

    def _for(self, node: "ast.For | ast.AsyncFor") -> None:
        before = self.current
        header = self._start_block()
        before.add_edge(header)
        self._add_unit(node, (node.iter,), "iter")
        exit_block = self.cfg._new_block()
        body_block = self.cfg._new_block()
        header.add_edge(body_block)
        self.loops.append((header, exit_block))
        self.current = body_block
        self._body(node.body)
        self.current.add_edge(header)
        self.loops.pop()
        self.current = exit_block
        header.add_edge(exit_block)
        if node.orelse:
            self._body(node.orelse)

    def _try(self, node: ast.Try) -> None:
        handler_entries = [self.cfg._new_block() for _ in node.handlers]
        join = self.cfg._new_block()
        before = self.current
        body_entry = self._start_block()
        before.add_edge(body_entry)
        if handler_entries:
            self.handlers.append(handler_entries)
        self._body(node.body)
        if node.orelse:
            self._body(node.orelse)
        body_end = self.current
        if handler_entries:
            self.handlers.pop()
        body_end.add_edge(join)
        for entry, handler in zip(handler_entries, node.handlers):
            self.current = entry
            if handler.type is not None:
                self._add_unit(
                    _anchor_stmt(handler), (handler.type,), "stmt"
                )
            self._body(handler.body)
            self.current.add_edge(join)
        self.current = join
        if node.finalbody:
            self._body(node.finalbody)

    def _with(self, node: "ast.With | ast.AsyncWith") -> None:
        exprs = tuple(item.context_expr for item in node.items)
        self._add_unit(node, exprs, "with")
        self._body(node.body)

    def _match(self, node: ast.Match) -> None:
        header = self.current
        self._add_unit(node, (node.subject,), "stmt")
        header = self.current
        join = self.cfg._new_block()
        for case in node.cases:
            case_block = self.cfg._new_block()
            header.add_edge(case_block)
            self.current = case_block
            self._body(case.body)
            self.current.add_edge(join)
        header.add_edge(join)  # no case matched
        self.current = join

    # _start_block leaves the previous block dangling on purpose for
    # return/raise/break/continue; every other caller wires the edge.


def _anchor_stmt(handler: ast.ExceptHandler) -> ast.stmt:
    """A synthetic statement anchoring a handler's type test."""
    anchor = ast.Pass()
    anchor.lineno = handler.lineno
    anchor.col_offset = handler.col_offset
    return anchor


def build_cfg(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> CFG:
    """Build the statement-level CFG of *fn*'s body."""
    return _Builder(fn).build()


def function_cfgs(
    tree: ast.Module,
) -> "Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, CFG]]":
    """Yield ``(function node, CFG)`` for every def in *tree* (nested too)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, build_cfg(node)
