"""Forward dataflow over :mod:`repro.analysis.cfg` graphs.

The only analysis the DOM2xx rules currently need is deliberately
small: a path-sensitive "budget obligation" pass for DOM206.  The
property it computes per program point is a single boolean,

    ok  =  "on every path reaching here, either the budget variable is
           definitely ``None`` (unbudgeted fallback) or a charge call
           has already executed"

which is exactly the precondition under which a candidate-iteration
loop may run without charging inside its body: the bulk-charge pattern
(``if budget is not None: budget.charge_candidate(len(index))`` before
the loop) and the paired-branch pattern (``if budget is None:``
fallback loop) both discharge the obligation, while a loop reached with
a possibly-live, uncharged budget does not.

The lattice is {unreached ⊑ ok, not-ok}; merge is logical *and* over
reaching paths.  Branch refinement understands ``x is None`` /
``x is not None`` tests and short-circuit ``and`` chains whose
conjuncts themselves contain charge calls — the repo's canonical

    if budget is not None and budget.charge_candidate() is not None:
        return partial

idiom leaves the fall-through edge *ok* because every way of falsifying
the conjunction either proves the budget is ``None`` or has already
executed the charge.
"""

from __future__ import annotations

import ast

from .base import attribute_chain
from .cfg import CFG, Block, Unit

__all__ = ["BudgetFlow", "CHARGE_METHODS"]

#: Methods on ``repro.resilience.Budget`` that consume budget.
CHARGE_METHODS = frozenset(
    {"charge_candidate", "charge_node", "charge_escalation"}
)

#: Calls that (re)bind a possibly-live budget.
_BUDGET_SOURCES = frozenset({"current_budget"})


def _terminal(node: ast.AST) -> "str | None":
    chain = attribute_chain(node)
    return chain[-1] if chain else None


def is_charge_call(node: ast.AST, charging: "frozenset[str]") -> bool:
    """Whether *node* is a call that charges budget, directly or via a
    helper known (from the symbol index) to charge transitively."""
    if not isinstance(node, ast.Call):
        return False
    name = _terminal(node.func)
    return name in CHARGE_METHODS or name in charging


class BudgetFlow:
    """Computes the *ok* fact at every block entry of one function."""

    def __init__(
        self,
        cfg: CFG,
        budget_names: "frozenset[str]",
        charging: "frozenset[str]" = frozenset(),
    ) -> None:
        self.cfg = cfg
        self.budget_names = budget_names
        self.charging = charging
        self._in: "dict[Block, bool | None]" = {}
        self._solve()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def ok_at(self, unit: Unit) -> bool:
        """Whether the obligation is discharged when *unit* executes."""
        state = self._in.get(unit.block)
        if state is None:
            return True  # unreached code has no obligation
        for prior in unit.block.units[: unit.pos]:
            state = self._transfer_unit(prior, state)
        return state

    # ------------------------------------------------------------------
    # Fixpoint
    # ------------------------------------------------------------------
    def _solve(self) -> None:
        entry_ok = not any(
            arg.arg in self.budget_names for arg in self._all_args()
        )
        self._in = {self.cfg.entry: entry_ok}
        work = [self.cfg.entry]
        while work:
            block = work.pop()
            state = self._in.get(block)
            if state is None:
                continue
            for unit in block.units:
                state = self._transfer_unit(unit, state)
            for succ, kind in block.succ:
                out = state
                if kind == "normal" and self._refine(block, succ):
                    out = True
                merged = out if self._in.get(succ) is None else (
                    self._in[succ] and out
                )
                if merged != self._in.get(succ):
                    self._in[succ] = merged
                    work.append(succ)

    def _all_args(self) -> "list[ast.arg]":
        args = self.cfg.fn.args
        return [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]

    # ------------------------------------------------------------------
    # Transfer functions
    # ------------------------------------------------------------------
    def _transfer_unit(self, unit: Unit, state: bool) -> bool:
        # Rebinding the budget variable resets the obligation.
        if isinstance(unit.node, (ast.Assign, ast.AnnAssign)):
            targets = (
                unit.node.targets
                if isinstance(unit.node, ast.Assign)
                else [unit.node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in self.budget_names
                ):
                    value = unit.node.value
                    if isinstance(value, ast.Constant) and value.value is None:
                        state = True
                    else:
                        state = False
        if unit.kind == "test":
            # Charges inside a test are conditional on short-circuit
            # order; the edge refinement accounts for them instead.
            return state
        for node in unit.walk():
            if is_charge_call(node, self.charging):
                return True
        return state

    def _refine(self, block: Block, succ: Block) -> "bool | None":
        """Edge refinement: ``True`` if taking this edge proves *ok*."""
        if block.test is None:
            return None
        if succ is block.true_succ:
            return self._test_outcome(block.test, when_true=True)
        if succ is block.false_succ:
            return self._test_outcome(block.test, when_true=False)
        return None

    def _test_outcome(self, test: ast.expr, *, when_true: bool) -> "bool | None":
        """Whether the branch outcome proves the obligation discharged."""
        if self._atom_outcome(test, when_true=when_true):
            return True
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._test_outcome(test.operand, when_true=not when_true)
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            return self._and_outcome(test.values, when_true=when_true)
        return None

    def _and_outcome(
        self, conjuncts: "list[ast.expr]", *, when_true: bool
    ) -> "bool | None":
        charged = [self._contains_charge(c) for c in conjuncts]
        proves_true = [
            self._atom_outcome(c, when_true=True) for c in conjuncts
        ]
        proves_false = [
            self._atom_outcome(c, when_true=False) for c in conjuncts
        ]
        if when_true:
            # All conjuncts held, so every charge in the chain ran.
            if any(charged) or any(proves_true):
                return True
            return None
        # Short-circuit scenarios: conjunct i failed after 1..i-1 held.
        for i in range(len(conjuncts)):
            scenario_ok = (
                proves_false[i]
                or any(charged[: i + 1])
                or any(proves_true[:i])
            )
            if not scenario_ok:
                return None
        return True

    def _atom_outcome(self, test: ast.expr, *, when_true: bool) -> bool:
        """``x is None`` / ``x is not None`` refinement for budget vars."""
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return False
        left, (op,), (right,) = test.left, test.ops, test.comparators
        if not (
            isinstance(left, ast.Name) and left.id in self.budget_names
        ):
            return False
        if not (isinstance(right, ast.Constant) and right.value is None):
            return False
        if isinstance(op, ast.Is):
            return when_true  # "budget is None" true => unbudgeted path
        if isinstance(op, ast.IsNot):
            return not when_true  # false => budget is None
        return False

    def _contains_charge(self, node: ast.AST) -> bool:
        return any(
            is_charge_call(sub, self.charging) for sub in ast.walk(node)
        )


def budget_variables(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> "frozenset[str]":
    """Names in *fn* bound to a budget: parameters named ``budget`` and
    variables assigned from ``current_budget()``."""
    names = set()
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == "budget":
            names.add(arg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _terminal(node.value.func) in _BUDGET_SOURCES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return frozenset(names)
