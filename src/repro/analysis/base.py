"""The domlint rule framework: findings, file contexts, suppressions.

A *rule* is a small AST pass that knows one domain invariant of the
dominance stack (see :mod:`repro.analysis.rules`).  The framework keeps
every rule to the same shape:

- rules receive a :class:`FileContext` — parsed tree, source lines,
  dotted module name and per-line suppressions — and yield
  :class:`Finding` objects;
- a finding carries the rule name, position, message and severity;
- ``# domlint: ignore[rule-name]`` on the offending line suppresses
  that rule there (``# domlint: ignore`` suppresses every rule on the
  line; several rules separate with commas).

Suppression comments are discovered with :mod:`tokenize`, so a
``domlint:`` marker inside a string literal is never mistaken for one.
"""

from __future__ import annotations

import ast
import enum
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.paper_refs import PaperIndex
    from repro.analysis.symbols import SymbolIndex

__all__ = [
    "Severity",
    "Finding",
    "FileContext",
    "Rule",
    "SUPPRESS_ALL",
    "parse_suppressions",
    "dotted_module",
]

#: Marker stored for a bare ``# domlint: ignore`` (no rule list).
SUPPRESS_ALL = "*"

_SUPPRESS_RE = re.compile(
    r"#\s*domlint:\s*ignore(?:\[(?P<rules>[^\]]*)\])?"
)


class Severity(enum.Enum):
    """How bad a finding is; any finding fails the lint run."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source position."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity
    snippet: str = ""

    def render(self) -> str:
        """The conventional one-line human form (clickable in editors)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value}[{self.rule}] {self.message}"
        )

    def to_dict(self) -> "dict[str, object]":
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity.value,
            "snippet": self.snippet,
        }


def parse_suppressions(source: str) -> "dict[int, frozenset[str]]":
    """Per-line suppressed rule names from ``# domlint: ignore`` comments.

    Only genuine comment tokens count; the marker inside a string does
    nothing.  An unreadable file (tokenize errors on malformed source)
    yields no suppressions — the parse error is reported elsewhere.

    >>> parse_suppressions("x = 1  # domlint: ignore[metric-name]\\n")
    {1: frozenset({'metric-name'})}
    """
    suppressions: dict[int, frozenset[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            names = frozenset((SUPPRESS_ALL,))
        else:
            names = frozenset(
                name.strip() for name in rules.split(",") if name.strip()
            )
            if not names:
                names = frozenset((SUPPRESS_ALL,))
        line = token.start[0]
        previous = suppressions.get(line, frozenset())
        suppressions[line] = previous | names
    return suppressions


def dotted_module(path: Path) -> str:
    """The dotted module name of *path* within the ``repro`` package.

    Resolution anchors at the last path component named ``repro`` so
    both the installed tree (``src/repro/core/hyperbola.py``) and
    fixture trees in tests (``/tmp/.../repro/core/hyperbola.py``) map
    to ``repro.core.hyperbola``.  Files outside any ``repro`` directory
    fall back to their stem.

    >>> dotted_module(Path("src/repro/core/hyperbola.py"))
    'repro.core.hyperbola'
    >>> dotted_module(Path("src/repro/core/__init__.py"))
    'repro.core'
    """
    parts = [part for part in path.parts]
    try:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return path.stem
    dotted = list(parts[anchor:])
    dotted[-1] = Path(dotted[-1]).stem
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


@dataclass
class FileContext:
    """Everything a rule needs about one source file."""

    path: Path
    display_path: str
    module: str
    source: str
    tree: ast.Module
    lines: "list[str]" = field(default_factory=list)
    suppressions: "dict[int, frozenset[str]]" = field(default_factory=dict)
    #: The PAPER.md reference index (None when no PAPER.md was found).
    paper_index: "PaperIndex | None" = None
    #: Cross-module facts for the dataflow rules (None when a rule is
    #: invoked outside a full engine run; rules must degrade gracefully).
    symbols: "SymbolIndex | None" = None

    @classmethod
    def load(
        cls,
        path: Path,
        display_path: "str | None" = None,
        paper_index: "PaperIndex | None" = None,
    ) -> "FileContext":
        """Parse *path* into a context (raises ``SyntaxError`` on bad source)."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            display_path=display_path if display_path is not None else str(path),
            module=dotted_module(path),
            source=source,
            tree=tree,
            lines=source.splitlines(),
            suppressions=parse_suppressions(source),
            paper_index=paper_index,
        )

    def line(self, lineno: int) -> str:
        """The 1-indexed source line ('' when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def is_suppressed(self, rule: str, lineno: int) -> bool:
        names = self.suppressions.get(lineno)
        if not names:
            return False
        return SUPPRESS_ALL in names or rule in names


class Rule:
    """Base class for one domain invariant check.

    Subclasses set :attr:`name` (the suppression/selection key),
    :attr:`code` (stable short id for machine output), a
    :attr:`severity` and one-line :attr:`description`, then implement
    :meth:`check`.
    """

    name: str = ""
    code: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: ``repro lint --explain`` material: why the invariant exists, what
    #: exactly must hold, and a minimal violating/compliant pair.
    rationale: str = ""
    invariant: str = ""
    bad_example: str = ""
    good_example: str = ""

    def applies(self, module: str) -> bool:
        """Whether the rule runs on *module* (dotted name); default: all."""
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield findings for *ctx*; the engine applies suppressions."""
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        severity: "Severity | None" = None,
    ) -> Finding:
        """Build a finding anchored at *node*."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.name,
            path=ctx.display_path,
            line=line,
            col=col + 1,
            message=message,
            severity=severity if severity is not None else self.severity,
            snippet=ctx.line(line).strip(),
        )


def in_packages(module: str, *packages: str) -> bool:
    """Whether dotted *module* lives in any of the dotted *packages*."""
    return any(
        module == package or module.startswith(package + ".")
        for package in packages
    )


def attribute_chain(node: ast.AST) -> "tuple[str, ...] | None":
    """The dotted parts of a Name/Attribute chain, or None if dynamic.

    ``np.random.default_rng`` → ``("np", "random", "default_rng")``.
    Chains through calls or subscripts are not static: returns None.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def iter_boolean_contexts(tree: ast.Module) -> "Iterator[ast.expr]":
    """Every expression evaluated for truthiness in *tree*.

    Covers ``if``/``while``/ternary tests, ``assert`` conditions,
    ``and``/``or`` operands, ``not`` operands and comprehension filters.
    """
    for node in ast.walk(tree):
        if isinstance(node, (ast.If, ast.While, ast.IfExp)):
            yield node.test
        elif isinstance(node, ast.Assert):
            yield node.test
        elif isinstance(node, ast.BoolOp):
            yield from node.values
        elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            yield node.operand
        elif isinstance(node, ast.comprehension):
            yield from node.ifs
