"""The DOM2xx dataflow rules: concurrency, durability and coverage.

PR 3's DOM1xx rules are single-node AST patterns; the seven rules here
check *ordering and propagation* invariants using the per-function CFG
(:mod:`repro.analysis.cfg`), the budget dataflow pass
(:mod:`repro.analysis.dataflow`) and the cross-module symbol index
(:mod:`repro.analysis.symbols`):

``async-blocking-call`` (DOM201)
    ``async def`` bodies in :mod:`repro.serve` must not call blocking
    primitives (``time.sleep``, ``os.fsync``, ``open``, sockets, …);
    offload to the executor instead.
``executor-context-propagation`` (DOM202)
    Executor/thread submissions in :mod:`repro.serve` must route the
    callable through ``contextvars.copy_context().run`` so budget and
    deadline contextvars survive the thread hop.
``wal-fsync-before-ack`` (DOM203)
    In :mod:`repro.stream`, every normal return path after a raw WAL
    write (``_io_write``) must pass an fsync barrier first.
``unlocked-shared-state`` (DOM204)
    Instance attributes mutated from both the event loop and executor
    threads must only be mutated under a lock.
``fault-seam-coverage`` (DOM205)
    Every seam registered in ``robust/faults.py`` must be exercised by
    at least one fault-injecting test.
``budget-charge-coverage`` (DOM206)
    Candidate-iteration loops in :mod:`repro.queries` must charge the
    ``Budget`` on every budgeted path reaching them.
``signal-handler-safety`` (DOM207)
    Signal handlers registered in :mod:`repro.serve` may only set
    flags or hand off via ``call_soon_threadsafe`` — no blocking I/O,
    no logging, no lock acquisition.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import (
    FileContext,
    Finding,
    Rule,
    attribute_chain,
    in_packages,
)
from repro.analysis.cfg import Unit, function_cfgs
from repro.analysis.dataflow import (
    BudgetFlow,
    budget_variables,
    is_charge_call,
)

__all__ = ["FLOW_RULES"]


def _terminal(node: ast.AST) -> "str | None":
    """The rightmost identifier of a Name/Attribute/Call expression."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _import_aliases(tree: ast.Module) -> "dict[str, str]":
    """Local alias → canonical dotted module (mirrors rules.py; kept
    local to avoid a circular import with the rule registry)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module is not None:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _canonical_chain(
    node: ast.AST, aliases: "dict[str, str]"
) -> "tuple[str, ...] | None":
    chain = attribute_chain(node)
    if chain is None:
        return None
    root = aliases.get(chain[0])
    if root is None:
        return chain
    return (*root.split("."), *chain[1:])


def _own_nodes(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> "Iterator[ast.AST]":
    """Every node in *fn*'s own body, excluding nested ``def`` bodies
    (which run on their own activation — typically in the executor)."""
    stack: "list[ast.AST]" = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class AsyncBlockingCallRule(Rule):
    name = "async-blocking-call"
    code = "DOM201"
    description = (
        "async handlers in repro.serve must not call blocking primitives "
        "on the event loop"
    )
    rationale = (
        "A blocking call inside an async handler stalls the entire event "
        "loop: every in-flight request, the admission controller and the "
        "health endpoint all freeze for its duration. The serve layer's "
        "tail-latency guarantees assume the loop only ever awaits."
    )
    invariant = (
        "No call to time.sleep, os.fsync/rename/replace, open(), socket, "
        "subprocess or shutil primitives is syntactically reachable inside "
        "an `async def` in repro.serve, outside nested sync functions "
        "(which run in the executor)."
    )
    bad_example = (
        "async def handler(self):\n"
        "    time.sleep(0.1)          # stalls the whole event loop\n"
    )
    good_example = (
        "async def handler(self):\n"
        "    def work():\n"
        "        time.sleep(0.1)      # runs on an executor thread\n"
        "    ctx = contextvars.copy_context()\n"
        "    await loop.run_in_executor(self._executor, ctx.run, work)\n"
    )

    _EXACT = frozenset(
        {
            ("time", "sleep"),
            ("os", "fsync"),
            ("os", "fdatasync"),
            ("os", "rename"),
            ("os", "replace"),
            ("os", "remove"),
            ("os", "unlink"),
            ("os", "makedirs"),
            ("open",),
            ("urllib", "request", "urlopen"),
        }
    )
    _ROOTS = frozenset({"socket", "subprocess", "shutil"})

    def applies(self, module: str) -> bool:
        return in_packages(module, "repro.serve")

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for sub in _own_nodes(node):
                if not isinstance(sub, ast.Call):
                    continue
                chain = _canonical_chain(sub.func, aliases)
                if chain is None:
                    continue
                blocked = chain in self._EXACT or (
                    len(chain) > 1 and chain[0] in self._ROOTS
                )
                if blocked:
                    yield self.finding(
                        ctx,
                        sub,
                        f"blocking call {'.'.join(chain)}() inside async "
                        f"def {node.name}; offload to the executor "
                        "(run_in_executor) instead of stalling the loop",
                    )


class ExecutorContextRule(Rule):
    name = "executor-context-propagation"
    code = "DOM202"
    description = (
        "executor submissions must route through contextvars.copy_context"
    )
    rationale = (
        "Budget, deadline and fault-scope travel in contextvars. A thread "
        "hop that does not copy the context silently detaches the worker "
        "from its request's budget: charges vanish, deadlines never fire, "
        "and degraded-mode accounting under-reports."
    )
    invariant = (
        "Every run_in_executor/submit call in repro.serve passes a "
        "callable of the form `ctx.run` where `ctx` came from "
        "contextvars.copy_context()."
    )
    bad_example = (
        "await loop.run_in_executor(self._executor, work)  # loses budget\n"
    )
    good_example = (
        "ctx = contextvars.copy_context()\n"
        "await loop.run_in_executor(self._executor, ctx.run, work)\n"
    )

    def applies(self, module: str) -> bool:
        return in_packages(module, "repro.serve")

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._submitted_callable(node)
            if target is None:
                continue
            chain = attribute_chain(target)
            if chain is not None and chain[-1] == "run":
                continue  # context.run(fn, ...) — propagated
            yield self.finding(
                ctx,
                node,
                "executor submission does not propagate contextvars; "
                "wrap the callable as copy_context().run so budget and "
                "deadline survive the thread hop",
            )

    @staticmethod
    def _submitted_callable(call: ast.Call) -> "ast.expr | None":
        name = _terminal(call.func)
        if name == "run_in_executor" and len(call.args) >= 2:
            return call.args[1]
        if name == "submit" and call.args:
            owner = (
                attribute_chain(call.func.value)
                if isinstance(call.func, ast.Attribute)
                else None
            )
            if owner and any(
                "executor" in part.lower() or "pool" in part.lower()
                for part in owner
            ):
                return call.args[0]
        return None


class WalFsyncBeforeAckRule(Rule):
    name = "wal-fsync-before-ack"
    code = "DOM203"
    description = (
        "in repro.stream, return paths after a WAL append must cross fsync"
    )
    rationale = (
        "The WAL's durability contract (and the paper's certified-verdict "
        "discipline) is fsync-before-ack: once control returns to the "
        "caller, the record must already be on stable storage. An ack "
        "path that skips the fsync turns a crash into silent data loss "
        "that recovery cannot even detect."
    )
    invariant = (
        "For every function in repro.stream, every normal-edge CFG path "
        "from an _io_write() call to a return (or fall-off-the-end exit) "
        "passes an fsync/fdatasync barrier. Exception paths are exempt — "
        "a raise never acknowledges."
    )
    bad_example = (
        "_io_write(handle, framed)\n"
        "return sequence            # ack before durability\n"
    )
    good_example = (
        "_io_write(handle, framed)\n"
        "handle.flush()\n"
        "_fsync(handle.fileno())    # barrier dominates the ack\n"
        "return sequence\n"
    )

    _APPENDS = frozenset({"_io_write"})
    _BARRIERS = frozenset({"_fsync", "fsync", "fdatasync"})
    #: Seam wrappers themselves are below the invariant.
    _EXEMPT_FUNCTIONS = frozenset({"_io_write", "_io_read", "_fsync"})

    def applies(self, module: str) -> bool:
        return in_packages(module, "repro.stream")

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        for fn, cfg in function_cfgs(ctx.tree):
            if fn.name in self._EXEMPT_FUNCTIONS:
                continue
            for unit in cfg.units():
                append_call = self._event_call(unit, self._APPENDS)
                if append_call is None:
                    continue
                exits = cfg.reachable_exits_avoiding(
                    unit, lambda u: self._event_call(u, self._BARRIERS)
                    is not None,
                )
                if exits:
                    yield self.finding(
                        ctx,
                        append_call,
                        f"WAL append in {fn.name}() can reach a return "
                        "without an intervening fsync (ack before "
                        "durability); fsync must dominate every ack path",
                    )

    @staticmethod
    def _event_call(unit: Unit, names: "frozenset[str]") -> "ast.Call | None":
        for node in unit.walk():
            if isinstance(node, ast.Call) and _terminal(node) in names:
                return node
        return None


class UnlockedSharedStateRule(Rule):
    name = "unlocked-shared-state"
    code = "DOM204"
    description = (
        "state mutated from both the event loop and executor threads "
        "must be lock-protected"
    )
    rationale = (
        "The serve layer runs handlers on the loop and heavy work on "
        "executor threads; the streaming engine mixes ingest threads and "
        "readers. An attribute mutated from both sides without a lock is "
        "a data race: torn updates surface as rare, unreproducible "
        "corruption under load."
    )
    invariant = (
        "Within a class, any instance attribute mutated both from async "
        "code and from thread-context code (nested sync defs inside "
        "async methods, or methods submitted to executors/threads) is "
        "only ever mutated inside `with <lock>:` blocks."
    )
    bad_example = (
        "async def handler(self):\n"
        "    self.count += 1        # loop side\n"
        "    def work():\n"
        "        self.count += 1    # thread side, no lock\n"
    )
    good_example = (
        "def work():\n"
        "    with self._lock:\n"
        "        self.count += 1\n"
    )

    def applies(self, module: str) -> bool:
        return in_packages(module, "repro.serve", "repro.stream")

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> "Iterator[Finding]":
        # (attr → [(node, locked)]) per execution context.
        async_mut: "dict[str, list[tuple[ast.AST, bool]]]" = {}
        thread_mut: "dict[str, list[tuple[ast.AST, bool]]]" = {}
        thread_entries = self._thread_entry_methods(cls)
        for method in cls.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if isinstance(method, ast.AsyncFunctionDef):
                self._collect(method.body, async_mut, locked=False)
                for nested in self._nested_sync_defs(method):
                    self._collect(nested.body, thread_mut, locked=False)
            elif method.name in thread_entries:
                self._collect(method.body, thread_mut, locked=False)
        for attr in sorted(set(async_mut) & set(thread_mut)):
            sites = async_mut[attr] + thread_mut[attr]
            unlocked = [node for node, locked in sites if not locked]
            if unlocked:
                anchor = min(
                    unlocked, key=lambda n: getattr(n, "lineno", 1)
                )
                yield self.finding(
                    ctx,
                    anchor,
                    f"self.{attr} is mutated from both the event loop and "
                    "executor threads; every mutation must hold a lock "
                    "(torn updates under load otherwise)",
                )

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _nested_sync_defs(
        method: ast.AsyncFunctionDef,
    ) -> "list[ast.FunctionDef]":
        return [
            node
            for node in ast.walk(method)
            if isinstance(node, ast.FunctionDef)
        ]

    @staticmethod
    def _thread_entry_methods(cls: ast.ClassDef) -> "set[str]":
        """Sync methods handed to executors or threads as callables."""
        entries: set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal(node.func)
            candidates: "list[ast.expr]" = []
            if name in ("run_in_executor", "submit"):
                candidates = list(node.args)
            elif name == "Thread":
                candidates = [
                    kw.value for kw in node.keywords if kw.arg == "target"
                ]
            for arg in candidates:
                chain = attribute_chain(arg)
                if chain and len(chain) == 2 and chain[0] == "self":
                    entries.add(chain[1])
        return entries

    def _collect(
        self,
        body: "list[ast.stmt]",
        out: "dict[str, list[tuple[ast.AST, bool]]]",
        locked: bool,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # separate activation, classified elsewhere
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                holds = locked or any(
                    self._is_lock(item.context_expr) for item in stmt.items
                )
                self._collect(stmt.body, out, holds)
                continue
            for attr, node in self._mutations(stmt):
                out.setdefault(attr, []).append((node, locked))
            # Recurse into compound statements' bodies.
            for field_name in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, field_name, None)
                if isinstance(nested, list):
                    self._collect(
                        [s for s in nested if isinstance(s, ast.stmt)],
                        out,
                        locked,
                    )
            for handler in getattr(stmt, "handlers", []) or []:
                self._collect(handler.body, out, locked)

    @staticmethod
    def _is_lock(expr: ast.expr) -> bool:
        chain = attribute_chain(
            expr.func if isinstance(expr, ast.Call) else expr
        )
        return chain is not None and any(
            "lock" in part.lower() for part in chain
        )

    @staticmethod
    def _mutations(stmt: ast.stmt) -> "Iterator[tuple[str, ast.AST]]":
        targets: "list[ast.expr]" = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            node: ast.expr = target
            if isinstance(node, ast.Subscript):
                node = node.value
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                yield node.attr, stmt


class FaultSeamCoverageRule(Rule):
    name = "fault-seam-coverage"
    code = "DOM205"
    description = (
        "every seam registered in robust/faults.py must appear in a "
        "fault-injecting test"
    )
    rationale = (
        "A fault seam that no chaos test exercises is a degradation path "
        "that has never run: the first time it executes is in production, "
        "during the fault it was meant to survive. Registration must "
        "imply coverage."
    )
    invariant = (
        "Each string in the SEAMS tuple of robust/faults.py occurs as a "
        "string literal in at least one test file that calls inject()."
    )
    bad_example = (
        'SEAMS = ("quartic", "snapshot")   # "snapshot" never injected\n'
    )
    good_example = (
        "# tests/test_chaos.py\n"
        'with faults.inject("snapshot", mode="raise"):\n'
        "    ...\n"
    )

    def applies(self, module: str) -> bool:
        return module == "repro.robust.faults"

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        symbols = ctx.symbols
        if symbols is None or symbols.tests_dir is None:
            return  # no coverage evidence available; stay silent
        for element in self._seam_elements(ctx.tree):
            if element.value not in symbols.covered_seams:
                yield self.finding(
                    ctx,
                    element,
                    f"fault seam '{element.value}' is registered but never "
                    "exercised by any fault-injecting test under "
                    f"{symbols.tests_dir.name}/",
                )

    @staticmethod
    def _seam_elements(tree: ast.Module) -> "Iterator[ast.Constant]":
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "SEAMS"
                for t in node.targets
            ):
                continue
            if isinstance(node.value, (ast.Tuple, ast.List)):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        yield element


class BudgetChargeCoverageRule(Rule):
    name = "budget-charge-coverage"
    code = "DOM206"
    description = (
        "candidate-iteration loops in repro.queries must charge the "
        "Budget on the path"
    )
    rationale = (
        "Graceful degradation only works if every unit of traversal work "
        "is metered: a loop that enumerates candidates without charging "
        "makes the budget a fiction — exhaustion fires late or never, and "
        "partial results stop being honest about how much work ran."
    )
    invariant = (
        "Every loop over candidate sources (entries/candidates/heaps/…) "
        "either charges the budget in its body (directly or through a "
        "helper the symbol index knows charges transitively), or runs at "
        "a program point where dataflow proves the budget is None or "
        "already charged on every path."
    )
    bad_example = (
        "def browse(index):\n"
        "    for key, sphere in payload.entries:   # unmetered traversal\n"
        "        yield key\n"
    )
    good_example = (
        "budget = current_budget()\n"
        "for key, sphere in payload.entries:\n"
        "    if budget is not None and budget.charge_candidate() is not None:\n"
        "        return partial\n"
    )

    _SOURCES = frozenset(
        {"entries", "candidates", "plausible", "children", "neighbors",
         "ranked"}
    )
    _WORKLISTS = frozenset(
        {"heap", "stack", "queue", "frontier", "worklist"}
    )

    def applies(self, module: str) -> bool:
        return in_packages(module, "repro.queries")

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        charging = (
            ctx.symbols.charging if ctx.symbols is not None else frozenset()
        )
        for fn, cfg in function_cfgs(ctx.tree):
            budget_names = budget_variables(fn)
            flow = BudgetFlow(cfg, budget_names, charging)
            for header in cfg.loop_headers():
                loop = header.node
                if not self._is_candidate_loop(loop):
                    continue
                if self._body_charges(loop, charging):
                    continue
                if budget_names and flow.ok_at(header):
                    continue
                if budget_names:
                    message = (
                        f"candidate loop in {fn.name}() runs with a "
                        "possibly-live, uncharged budget; charge per "
                        "iteration or prove the unbudgeted path"
                    )
                else:
                    message = (
                        f"candidate loop in {fn.name}() never consults the "
                        "budget; traversal work must be metered via "
                        "current_budget()/charge_*"
                    )
                yield self.finding(ctx, loop, message)

    def _is_candidate_loop(self, node: ast.stmt) -> bool:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.iter):
                if isinstance(sub, (ast.Name, ast.Attribute)):
                    name = _terminal(sub)
                    if name in self._SOURCES or name in self._WORKLISTS:
                        return True
        elif isinstance(node, ast.While):
            for sub in ast.walk(node.test):
                if isinstance(sub, ast.Name) and sub.id in self._WORKLISTS:
                    return True
        return False

    @staticmethod
    def _body_charges(node: ast.stmt, charging: "frozenset[str]") -> bool:
        body = getattr(node, "body", [])
        stack: "list[ast.AST]" = list(body)
        while stack:
            sub = stack.pop()
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if is_charge_call(sub, charging):
                return True
            stack.extend(ast.iter_child_nodes(sub))
        return False


class SignalHandlerSafetyRule(Rule):
    name = "signal-handler-safety"
    code = "DOM207"
    description = (
        "signal handlers may only set flags or hand off via "
        "call_soon_threadsafe"
    )
    rationale = (
        "A signal handler interrupts the process at an arbitrary "
        "bytecode boundary: blocking I/O stalls the drain it was meant "
        "to start, logging re-enters non-reentrant machinery, and taking "
        "a lock the interrupted frame already holds deadlocks the "
        "process at shutdown — the one moment it must stay responsive. "
        "The only async-signal-safe moves are setting a flag and "
        "call_soon_threadsafe."
    )
    invariant = (
        "Every function registered via signal.signal() or "
        "loop.add_signal_handler() in repro.serve contains no blocking "
        "I/O (time.sleep, os.fsync/rename/..., open, print, sockets, "
        "subprocess, shutil), no logging calls, and no lock acquisition "
        "(`with <lock>` or .acquire()); flag assignments, Event.set and "
        "loop.call_soon_threadsafe are the allowed vocabulary."
    )
    bad_example = (
        "def on_term(signum, frame):\n"
        "    logging.info('draining')   # re-enters non-reentrant state\n"
        "    time.sleep(0.1)            # blocks inside the handler\n"
        "signal.signal(signal.SIGTERM, on_term)\n"
    )
    good_example = (
        "def on_term():\n"
        "    self._draining = True      # flag only\n"
        "    self._drain_event.set()\n"
        "loop.add_signal_handler(signal.SIGTERM, on_term)\n"
    )

    _BLOCKING = AsyncBlockingCallRule._EXACT | frozenset({("print",)})
    _BLOCKING_ROOTS = AsyncBlockingCallRule._ROOTS

    def applies(self, module: str) -> bool:
        return in_packages(module, "repro.serve")

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        aliases = _import_aliases(ctx.tree)
        functions: "dict[str, ast.FunctionDef | ast.AsyncFunctionDef]" = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, node)
        seen: "set[str]" = set()
        for name in sorted(self._handler_names(ctx.tree, aliases)):
            fn = functions.get(name)
            if fn is None or name in seen:
                continue  # e.g. event.set — not a locally defined body
            seen.add(name)
            yield from self._check_handler(ctx, fn, aliases)

    def _handler_names(
        self, tree: ast.Module, aliases: "dict[str, str]"
    ) -> "set[str]":
        """Names of functions registered as signal handlers."""
        names: "set[str]" = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or len(node.args) < 2:
                continue
            chain = _canonical_chain(node.func, aliases)
            if chain is None:
                continue
            registers = chain == ("signal", "signal") or (
                chain[-1] == "add_signal_handler"
            )
            if not registers:
                continue
            target = attribute_chain(node.args[1])
            if target is not None:
                names.add(target[-1])
        return names

    def _check_handler(
        self,
        ctx: FileContext,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        aliases: "dict[str, str]",
    ) -> "Iterator[Finding]":
        for node in _own_nodes(fn):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if UnlockedSharedStateRule._is_lock(item.context_expr):
                        yield self.finding(
                            ctx,
                            node,
                            f"signal handler {fn.name}() acquires a lock; "
                            "the interrupted frame may already hold it — "
                            "set a flag and let the loop do the work",
                        )
                continue
            if not isinstance(node, ast.Call):
                continue
            chain = _canonical_chain(node.func, aliases)
            if chain is None:
                continue
            if chain in self._BLOCKING or (
                len(chain) > 1 and chain[0] in self._BLOCKING_ROOTS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"signal handler {fn.name}() performs blocking I/O "
                    f"({'.'.join(chain)}); handlers may only set flags "
                    "or call_soon_threadsafe",
                )
            elif chain[0] == "logging":
                yield self.finding(
                    ctx,
                    node,
                    f"signal handler {fn.name}() calls logging; the "
                    "logging machinery is not async-signal-safe — set a "
                    "flag and log from the loop",
                )
            elif chain[-1] == "acquire":
                yield self.finding(
                    ctx,
                    node,
                    f"signal handler {fn.name}() acquires a lock; the "
                    "interrupted frame may already hold it — set a flag "
                    "and let the loop do the work",
                )


#: The dataflow rules, in reporting order (appended to ALL_RULES).
FLOW_RULES: "tuple[Rule, ...]" = (
    AsyncBlockingCallRule(),
    ExecutorContextRule(),
    WalFsyncBeforeAckRule(),
    UnlockedSharedStateRule(),
    FaultSeamCoverageRule(),
    BudgetChargeCoverageRule(),
    SignalHandlerSafetyRule(),
)
