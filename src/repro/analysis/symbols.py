"""Cross-module facts for dataflow rules: the domlint symbol index.

Per-file AST passes cannot answer two questions the DOM2xx rules need:

- *does this helper charge the budget, possibly transitively?*
  (``_depth_first`` recursion charges per node even though the
  recursive call site itself mentions no ``Budget``), and
- *is this fault seam exercised by any chaos test?*  (the seam registry
  lives in ``robust/faults.py``; the coverage evidence lives under
  ``tests/``).

The :class:`SymbolIndex` is built once per lint run over every
collected file plus the nearest ``tests/`` directory, then handed to
each rule via ``FileContext.symbols``.  Resolution is by *bare function
name* — intentionally coarse: name collisions merge call edges, which
over-approximates "charges budget" and therefore only ever relaxes
DOM206 (fewer false positives, never a crash on dynamic dispatch).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.analysis.base import attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.base import FileContext

__all__ = ["FunctionInfo", "SymbolIndex", "discover_tests_dir"]

#: Budget methods that terminate the "charges transitively" fixpoint.
CHARGE_TERMINALS = frozenset(
    {"charge_candidate", "charge_node", "charge_escalation"}
)


@dataclass(frozen=True)
class FunctionInfo:
    """One function definition somewhere in the linted tree."""

    module: str
    name: str
    is_async: bool
    #: Terminal names of every call made directly in the body
    #: (nested ``def`` bodies excluded — they run on their own
    #: activation and have their own entry).
    calls: "frozenset[str]"

    @property
    def charges_directly(self) -> bool:
        return bool(self.calls & CHARGE_TERMINALS)


def _direct_calls(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> "frozenset[str]":
    """Terminal call names in *fn*'s own body, excluding nested defs."""
    names: set[str] = set()
    stack: "list[ast.AST]" = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # separate activation
        if isinstance(node, ast.Call):
            chain = attribute_chain(node.func)
            if chain:
                names.add(chain[-1])
        stack.extend(ast.iter_child_nodes(node))
    return frozenset(names)


def discover_tests_dir(start: Path) -> "Path | None":
    """The nearest ``tests/`` directory at or above *start* that holds
    ``test_*.py`` files, or None.  Fixture trees in ``/tmp`` therefore
    never pick up the real repository's tests."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        tests = candidate / "tests"
        if tests.is_dir() and any(tests.glob("test_*.py")):
            return tests
    return None


def _covered_seams(tests_dir: Path) -> "tuple[frozenset[str], int]":
    """String constants appearing in test files that call ``inject``.

    A seam is considered chaos-covered when its name occurs as a string
    literal (directly in an ``inject(...)`` call, or in a seam tuple a
    parametrised test feeds into one) in any test file that performs
    fault injection.  Files that never call ``inject`` contribute
    nothing, so an unrelated docstring cannot launder coverage.
    """
    covered: set[str] = set()
    scanned = 0
    for test_path in sorted(tests_dir.rglob("test_*.py")):
        try:
            tree = ast.parse(
                test_path.read_text(encoding="utf-8"), filename=str(test_path)
            )
        except (SyntaxError, UnicodeDecodeError, OSError):
            continue
        injects = any(
            isinstance(node, ast.Call)
            and (chain := attribute_chain(node.func)) is not None
            and chain[-1] == "inject"
            for node in ast.walk(tree)
        )
        if not injects:
            continue
        scanned += 1
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                covered.add(node.value)
    return frozenset(covered), scanned


@dataclass
class SymbolIndex:
    """Whole-run facts shared by every rule invocation."""

    functions: "list[FunctionInfo]" = field(default_factory=list)
    #: Bare names of functions that charge budget, transitively.
    charging: "frozenset[str]" = frozenset()
    #: Strings found in fault-injecting test files (see DOM205).
    covered_seams: "frozenset[str]" = frozenset()
    #: Where coverage evidence was looked for; None disables DOM205.
    tests_dir: "Path | None" = None
    #: Number of injecting test files scanned for seam strings.
    test_files_scanned: int = 0

    @classmethod
    def build(
        cls,
        contexts: "Sequence[FileContext]",
        tests_dir: "Path | None" = None,
    ) -> "SymbolIndex":
        functions: "list[FunctionInfo]" = []
        for ctx in contexts:
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.append(
                        FunctionInfo(
                            module=ctx.module,
                            name=node.name,
                            is_async=isinstance(node, ast.AsyncFunctionDef),
                            calls=_direct_calls(node),
                        )
                    )
        charging = _charging_fixpoint(functions)
        covered: "frozenset[str]" = frozenset()
        scanned = 0
        if tests_dir is not None:
            covered, scanned = _covered_seams(tests_dir)
        return cls(
            functions=functions,
            charging=charging,
            covered_seams=covered,
            tests_dir=tests_dir,
            test_files_scanned=scanned,
        )

    def functions_named(self, name: str) -> "Iterator[FunctionInfo]":
        for info in self.functions:
            if info.name == name:
                yield info


def _charging_fixpoint(
    functions: "Sequence[FunctionInfo]",
) -> "frozenset[str]":
    """Bare names whose calls reach a ``Budget.charge_*`` method."""
    calls_by_name: "dict[str, set[str]]" = {}
    for info in functions:
        calls_by_name.setdefault(info.name, set()).update(info.calls)
    charging: set[str] = {
        name
        for name, calls in calls_by_name.items()
        if calls & CHARGE_TERMINALS
    }
    changed = True
    while changed:
        changed = False
        for name, calls in calls_by_name.items():
            if name not in charging and calls & charging:
                charging.add(name)
                changed = True
    return frozenset(charging)
