"""domlint — domain-aware static analysis for the dominance stack.

Eight AST-based rules encode invariants that ordinary linters cannot
see: tri-state :class:`~repro.robust.decision.Verdict` discipline, the
criterion template method, margin-comparison tolerance policy, the
:mod:`repro.obs.names` metric registry, paper-citation validity,
seeded randomness, narrow exception handling in numeric kernels, and
the O(d) fast-path guard.  Run as ``repro lint`` or
``python -m repro.analysis``; see ``docs/static-analysis.md``.
"""

from repro.analysis.base import (
    FileContext,
    Finding,
    Rule,
    Severity,
    parse_suppressions,
)
from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.engine import LintReport, lint_paths
from repro.analysis.paper_refs import PaperIndex, extract_citations, find_paper
from repro.analysis.rules import ALL_RULES, rules_by_name

__all__ = [
    "ALL_RULES",
    "Baseline",
    "FileContext",
    "Finding",
    "LintReport",
    "PaperIndex",
    "Rule",
    "Severity",
    "extract_citations",
    "find_paper",
    "fingerprint",
    "lint_paths",
    "parse_suppressions",
    "rules_by_name",
]
