"""The domlint engine: walk files, run rules, apply suppressions.

The engine runs in two passes: first collect and parse every Python
file into a :class:`~repro.analysis.base.FileContext` (sharing one
:class:`~repro.analysis.paper_refs.PaperIndex`) and build the
cross-module :class:`~repro.analysis.symbols.SymbolIndex` over the
whole tree, then run every applicable rule per file, drop suppressed
findings (counting them), and let the baseline partition what's left
into actionable vs. grandfathered.  Each run is also published through
:mod:`repro.obs` so ``repro stats`` can report lint activity alongside
the numeric kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro import obs
from repro.analysis.base import FileContext, Finding, Rule, Severity
from repro.analysis.baseline import Baseline
from repro.analysis.paper_refs import PaperIndex, find_paper
from repro.analysis.rules import ALL_RULES
from repro.analysis.symbols import SymbolIndex, discover_tests_dir
from repro.obs import names

__all__ = ["LintReport", "collect_files", "lint_paths", "run_rules"]

_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".domlint_cache", ".pytest_cache", "node_modules"}
)


@dataclass
class LintReport:
    """Everything one lint run produced."""

    actionable: "list[Finding]" = field(default_factory=list)
    baselined: "list[Finding]" = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    #: Number of (rule, file) pairs actually evaluated.
    rule_evaluations: int = 0
    #: Files that failed to parse, as (path, message) pairs.
    parse_errors: "list[tuple[str, str]]" = field(default_factory=list)

    @property
    def all_findings(self) -> "list[Finding]":
        return self.actionable + self.baselined

    @property
    def exit_code(self) -> int:
        """Non-zero when anything actionable (or unparsable) remains."""
        return 1 if self.actionable or self.parse_errors else 0

    def to_dict(self) -> "dict[str, object]":
        return {
            "files_checked": self.files_checked,
            "rule_evaluations": self.rule_evaluations,
            "suppressed": self.suppressed,
            "baselined": len(self.baselined),
            "parse_errors": [
                {"path": path, "message": message}
                for path, message in self.parse_errors
            ],
            "findings": [finding.to_dict() for finding in self.actionable],
            "exit_code": self.exit_code,
        }


def collect_files(paths: "Sequence[Path]") -> "list[Path]":
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    seen.add(candidate)
        elif path.suffix == ".py":
            seen.add(path)
    return sorted(seen)


def run_rules(
    ctx: FileContext, rules: "Sequence[Rule]"
) -> "Iterator[tuple[Finding, bool]]":
    """Yield (finding, suppressed) for every applicable rule on *ctx*."""
    for rule in rules:
        if not rule.applies(ctx.module):
            continue
        for finding in rule.check(ctx):
            yield finding, ctx.is_suppressed(finding.rule, finding.line)


def lint_paths(
    paths: "Sequence[Path]",
    rules: "Sequence[Rule] | None" = None,
    baseline: "Baseline | None" = None,
    paper: "Path | None" = None,
    root: "Path | None" = None,
    cache: bool = True,
) -> LintReport:
    """Lint *paths* and return the report.

    Parameters
    ----------
    paths:
        Files and/or directories to lint (directories recurse).
    rules:
        Rule instances to run (default: all of :data:`ALL_RULES`).
    baseline:
        Grandfathered findings (default: empty — everything actionable).
    paper:
        PAPER.md location; default: walk up from the first path.  When
        none is found the paper-ref rule silently passes.
    root:
        Paths are reported relative to this directory when possible
        (default: cwd), keeping output and baselines machine-portable.
    cache:
        Whether :meth:`PaperIndex.load` may use its JSON cache.
    """
    active_rules: Sequence[Rule] = ALL_RULES if rules is None else rules
    active_baseline = baseline if baseline is not None else Baseline()
    display_root = (root if root is not None else Path.cwd()).resolve()

    paper_path = paper
    if paper_path is None and paths:
        paper_path = find_paper(
            paths[0] if paths[0].is_dir() else paths[0].parent
        )
    paper_index: "PaperIndex | None" = None
    if paper_path is not None and paper_path.is_file():
        paper_index = PaperIndex.load(paper_path, cache=cache)

    report = LintReport()

    # Pass 1: parse every file, so cross-module rules see the whole tree.
    contexts: "list[FileContext]" = []
    for file_path in collect_files(paths):
        resolved = file_path.resolve()
        try:
            display = str(resolved.relative_to(display_root))
        except ValueError:
            display = str(file_path)
        try:
            ctx = FileContext.load(
                file_path, display_path=display, paper_index=paper_index
            )
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.parse_errors.append((display, str(exc)))
            continue
        contexts.append(ctx)
    report.files_checked = len(contexts)

    # Cross-module facts (charge fixpoint, seam coverage) shared by the
    # dataflow rules; the tests/ directory is discovered next to the
    # linted tree so fixture runs never see the repository's own tests.
    tests_dir = discover_tests_dir(paths[0]) if paths else None
    symbol_index = SymbolIndex.build(contexts, tests_dir=tests_dir)
    for ctx in contexts:
        ctx.symbols = symbol_index

    # Pass 2: run the rules.
    findings: list[Finding] = []
    for ctx in contexts:
        for finding, suppressed in run_rules(ctx, active_rules):
            if suppressed:
                report.suppressed += 1
            else:
                findings.append(finding)
        report.rule_evaluations += sum(
            1 for rule in active_rules if rule.applies(ctx.module)
        )

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.actionable, report.baselined = active_baseline.split(findings)
    _record_run(report)
    return report


def _record_run(report: LintReport) -> None:
    """Publish one lint run through the obs layer (lint-as-telemetry)."""
    obs.incr(names.ANALYSIS_RUNS)
    obs.incr(names.ANALYSIS_FILES, report.files_checked)
    obs.incr(names.ANALYSIS_RULE_EVALUATIONS, report.rule_evaluations)
    obs.incr(names.ANALYSIS_SUPPRESSED, report.suppressed)
    obs.incr(names.ANALYSIS_BASELINED, len(report.baselined))
    obs.incr(names.ANALYSIS_PARSE_ERRORS, len(report.parse_errors))
    for finding in report.actionable:
        obs.incr(names.ANALYSIS_FINDINGS)
        obs.incr(names.analysis_rule(finding.rule))
