"""``VerifiedHyperbola`` — the certified tri-state dominance criterion.

A drop-in :class:`~repro.core.hyperbola.HyperbolaCriterion` whose
answers come from the adaptive-precision escalation ladder
(:mod:`repro.robust.ladder`).  Two entry points:

- :meth:`VerifiedHyperbola.decide` returns the full
  :class:`~repro.robust.decision.Decision` (verdict, margin, bound,
  deciding stage, conservative fallback);
- the inherited boolean :meth:`~repro.core.base.DominanceCriterion.dominates`
  collapses that decision with :meth:`Decision.as_bool`.

With the default full ladder every verdict is certified (the exact
arbiter never abstains), so ``dominates`` is simply the exact answer.
``UNCERTAIN`` arises only when the ladder is truncated (e.g. latency
budgets that cannot afford the exact stage) or when injected faults
knock out every rung; the decision then carries a *conservative*
fallback produced by provably-correct criteria — GP first, MinMax if GP
itself fails — so ``True`` still implies genuine dominance and pruning
stays safe.  If even the fallbacks fail, the fallback is ``False``
("keep the candidate"), the harmless direction for every query in
:mod:`repro.queries`.

Construct with ``strict=False`` to bypass the ladder entirely on the
boolean path and behave exactly like the plain float64 Hyperbola kernel
(for hot loops that opt out of certification); :meth:`decide` always
certifies regardless of the flag.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro import obs
from repro.core.base import register_criterion
from repro.core.gp import GPCriterion
from repro.core.hyperbola import HyperbolaCriterion
from repro.core.minmax import MinMaxCriterion
from repro.exceptions import DimensionalityMismatchError, GeometryError
from repro.geometry.hypersphere import Hypersphere
from repro.obs import names
from repro.robust import ladder as _ladder
from repro.robust.decision import Decision, Verdict

__all__ = ["VerifiedHyperbola"]

# A fallback criterion may only fail for the reasons a ladder stage may
# fail: numerical corruption (injected or genuine) or input validation.
# Anything else — a typo'd attribute, a broken registry entry — is a
# programming error that must propagate, not be silently absorbed into
# a "keep the candidate" answer.
_FALLBACK_FAILURES = (
    ArithmeticError,
    ValueError,
    GeometryError,
    np.linalg.LinAlgError,
)


@register_criterion
class VerifiedHyperbola(HyperbolaCriterion):
    """Hyperbola with certified verdicts and graceful degradation.

    Parameters
    ----------
    strict:
        When true (default) the boolean :meth:`dominates` runs the
        escalation ladder; when false it uses the inherited float64
        fast path and only :meth:`decide` certifies.
    ladder:
        The stage sequence to run (default
        :data:`repro.robust.ladder.DEFAULT_LADDER`); pass
        :data:`~repro.robust.ladder.FLOAT_LADDER` to cap the cost at
        extended precision and accept ``UNCERTAIN`` outcomes.
    """

    name = "verified"
    is_correct = True
    is_sound = True

    def __init__(
        self,
        strict: bool = True,
        ladder: "tuple" = _ladder.DEFAULT_LADDER,
    ) -> None:
        self.strict = strict
        self._ladder = ladder
        #: Number of UNCERTAIN decisions this instance has produced.
        self.uncertain_count = 0
        self._fallbacks = (GPCriterion(), MinMaxCriterion())

    def decide(self, sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> Decision:
        """Certified tri-state decision for ``Dom(Sa, Sb, Sq)``."""
        dimension = sa.dimension
        if sb.dimension != dimension:
            raise DimensionalityMismatchError(dimension, sb.dimension)
        if sq.dimension != dimension:
            raise DimensionalityMismatchError(dimension, sq.dimension)
        decision = _ladder.decide(sa, sb, sq, self._ladder)
        if decision.verdict is Verdict.UNCERTAIN:
            self.uncertain_count += 1
            decision = replace(decision, fallback=self._fallback(sa, sb, sq))
        return decision

    def _decide(self, sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> bool:
        if not self.strict:
            return super()._decide(sa, sb, sq)
        return self.decide(sa, sb, sq).as_bool()

    def _fallback(self, sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> bool:
        """A pruning-safe boolean for an uncertain configuration.

        Both fallback criteria are *correct* (a ``True`` is never a
        false positive), so answering ``True`` here cannot cause a
        wrong prune; their missing soundness only costs pruning power,
        which is the price of uncertainty.
        """
        for criterion in self._fallbacks:
            try:
                result = bool(criterion.dominates(sa, sb, sq))
            except _FALLBACK_FAILURES:
                # Swallowing is deliberate *and audited*: the next
                # fallback (or the conservative False) takes over, and
                # the counter keeps the swallowed failure visible.
                if obs.ENABLED:
                    obs.incr(names.verified_fallback_failed(criterion.name))
                continue
            if obs.ENABLED:
                obs.incr(names.verified_fallback(criterion.name))
            return result
        if obs.ENABLED:
            obs.incr(names.VERIFIED_FALLBACK_NONE)
        return False
