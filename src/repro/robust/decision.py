"""The tri-state certified dominance verdict.

The paper's Hyperbola criterion is *optimal* — correct and sound — in
exact real arithmetic, but the float64 kernel decides through a quartic
whose coefficients contain powers up to ``rab^4``; near the decision
boundary a rounding error can silently turn the optimal criterion into
one that is neither correct nor sound.  The :mod:`repro.robust`
subsystem therefore never collapses a borderline configuration into a
bare boolean: every decision is a :class:`Decision` carrying

- a :class:`Verdict` — ``TRUE`` / ``FALSE`` when some precision stage
  certified the sign of its decision margin against that stage's error
  bound, ``UNCERTAIN`` when the whole escalation ladder was exhausted;
- the ``margin`` the deciding stage observed (``Dom`` holds iff the
  exact margin is positive) and the ``bound`` it certified against;
- the name of the ``stage`` that produced the verdict;
- for ``UNCERTAIN`` verdicts, a conservative ``fallback`` boolean that
  downstream pruning can use without risking a wrong prune.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

__all__ = ["Verdict", "Decision"]


class Verdict(enum.Enum):
    """Certified outcome of a dominance decision."""

    TRUE = "true"
    FALSE = "false"
    UNCERTAIN = "uncertain"

    def __bool__(self) -> bool:  # pragma: no cover - guard, never hit in tests
        raise TypeError(
            "a Verdict is tri-state; compare against Verdict.TRUE/FALSE "
            "explicitly or use Decision.as_bool()"
        )


@dataclass(frozen=True)
class Decision:
    """One certified dominance decision.

    Attributes
    ----------
    verdict:
        The tri-state outcome.
    margin:
        The decision margin observed by the certifying stage (positive
        means dominance); ``nan`` when no stage got far enough to
        measure one.
    bound:
        The error bound the margin was certified against (0 for the
        exact arbiter, ``inf`` when nothing was certified).
    stage:
        Name of the ladder stage that produced the verdict (for
        ``UNCERTAIN``: the last stage attempted).
    fallback:
        Conservative boolean attached to ``UNCERTAIN`` verdicts by
        :class:`~repro.robust.verified.VerifiedHyperbola` (``None``
        otherwise): ``True`` only when a *correct* criterion proved the
        pruning safe, ``False`` meaning "keep — cannot certify".
    """

    verdict: Verdict
    margin: float = math.nan
    bound: float = math.inf
    stage: str = ""
    fallback: "bool | None" = None

    @property
    def certified(self) -> bool:
        """Whether the verdict is a certified TRUE or FALSE."""
        return self.verdict is not Verdict.UNCERTAIN

    def as_bool(self) -> bool:
        """Collapse to a pruning-safe boolean.

        Certified verdicts map to themselves; ``UNCERTAIN`` maps to the
        conservative ``fallback`` (or ``False`` — "keep" — when no
        fallback was computed).
        """
        if self.verdict is Verdict.TRUE:
            return True
        if self.verdict is Verdict.FALSE:
            return False
        return bool(self.fallback)

    def __repr__(self) -> str:
        tail = "" if self.fallback is None else f", fallback={self.fallback}"
        return (
            f"Decision({self.verdict.name}, margin={self.margin:.3g}, "
            f"bound={self.bound:.3g}, stage={self.stage!r}{tail})"
        )
