"""Certified tri-state dominance with adaptive-precision escalation.

The float64 Hyperbola kernel is optimal in exact arithmetic, but near
the decision boundary rounding can silently flip a verdict.  This
subsystem never lets that happen unnoticed:

- :mod:`repro.robust.decision` — the tri-state
  :class:`~repro.robust.decision.Decision` / ``Verdict`` vocabulary;
- :mod:`repro.robust.ladder` — the escalation ladder (float64
  closed-form → companion matrix → ``np.longdouble`` → exact rational);
- :mod:`repro.robust.exact` — the :class:`fractions.Fraction` arbiter
  settling borderline signs with integer arithmetic;
- :mod:`repro.robust.verified` — the registered ``"verified"``
  criterion wrapping the ladder with conservative fallbacks;
- :mod:`repro.robust.faults` — deterministic fault injection at the
  numerical seams, for testing graceful degradation.

See ``docs/robustness.md`` for the tolerance policy and usage.
"""

from repro.robust.decision import Decision, Verdict
from repro.robust.exact import exact_dominates
from repro.robust.ladder import DEFAULT_LADDER, FLOAT_LADDER, decide
from repro.robust.verified import VerifiedHyperbola

__all__ = [
    "Decision",
    "Verdict",
    "exact_dominates",
    "decide",
    "DEFAULT_LADDER",
    "FLOAT_LADDER",
    "VerifiedHyperbola",
]
