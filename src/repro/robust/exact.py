"""The exact dominance arbiter: integer arithmetic, no rounding error.

Final stage of the escalation ladder (see :mod:`repro.robust.ladder`).
Every float input is a dyadic rational, so the whole decision can be
settled in :class:`fractions.Fraction` arithmetic; this module does so
**without ever taking a square root**, which makes the verdict exact —
the stage cannot be wrong, only slow.

Decision structure (mirrors the paper's Algorithm Hyperbola):

1. *Overlap* (Lemma 1): ``Dist(ca, cb) <= ra + rb`` compares the
   rational ``gap^2`` against ``(ra + rb)^2``.
2. *Center side*: the sign of ``Dist(cb, cq) - Dist(ca, cq) - s`` with
   ``s = ra + rb`` is decided by the classic two-squaring trick on
   ``sqrt(B2) - sqrt(A2) - s`` (both radicands rational).
3. *Boundary clearance*: ``Dom`` holds iff the closed query disk stays
   strictly inside ``Ra``, i.e. iff the circle of radius ``rq`` around
   the reduced query point ``(t, rho)`` does **not** meet the quadric

       B2 * x^2 - A2 * y^2 = A2 * B2,
       A2 = (s/2)^2,  B2 = (gap^2 - s^2)/4.

   (The hyperbola branches are unbounded, so a disk that contains a
   quadric point must have its bounding circle cross the quadric, and
   the near branch — the actual boundary of ``Ra`` — is always the
   closer one when ``cq`` lies inside ``Ra``.)

   Parametrising the circle by ``(x, y) = (t + rq*cos(theta),
   rho + rq*sin(theta))`` and substituting ``w = g*cos(theta)`` with
   ``g = Dist(ca, cb)`` turns the intersection condition into a quartic
   ``Phi(w) = R(w)^2 + (N^2/G)*w^2 - N^2`` with *rational* coefficients
   (``t^2``, ``rho^2``, ``t*g`` and ``G = g^2`` are all rational even
   though ``t``, ``rho`` and ``g`` are not).  The circle meets the
   quadric iff ``Phi`` has a real root in ``[-g, +g]`` — decided
   exactly by a Sturm chain whose members are evaluated at ``±sqrt(G)``
   via even/odd coefficient splitting.

The arbiter deliberately shares *no* code with the float kernel: no
NumPy, no :class:`~repro.geometry.transform.FocalFrame`, no quartic
solver — so the fault-injection harness cannot corrupt it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.geometry.hypersphere import Hypersphere

__all__ = ["exact_dominates"]


# ----------------------------------------------------------------------
# Sign arithmetic on quadratic surds
# ----------------------------------------------------------------------
def _sign(x: Fraction) -> int:
    return (x > 0) - (x < 0)


def _sign_with_sqrt(e: Fraction, o: Fraction, g_sq: Fraction) -> int:
    """Sign of ``e + o * sqrt(g_sq)`` with every argument rational."""
    if o == 0:
        return _sign(e)
    if e == 0:
        return _sign(o)
    if (e > 0) == (o > 0):
        return _sign(e)
    lhs = e * e
    rhs = o * o * g_sq
    if lhs == rhs:
        return 0
    return _sign(e) if lhs > rhs else _sign(o)


def _margin_sign(a_sq: Fraction, b_sq: Fraction, s: Fraction) -> int:
    """Sign of ``sqrt(b_sq) - sqrt(a_sq) - s`` for ``s >= 0``."""
    ell = b_sq - a_sq - s * s
    if ell < 0:
        return -1
    lhs = ell * ell
    rhs = 4 * a_sq * s * s
    if lhs == rhs:
        return 0
    return 1 if lhs > rhs else -1


# ----------------------------------------------------------------------
# Fraction polynomials (ascending coefficient lists)
# ----------------------------------------------------------------------
def _trim(p: list[Fraction]) -> list[Fraction]:
    while len(p) > 1 and p[-1] == 0:
        p = p[:-1]
    return p


def _mul(p: Sequence[Fraction], q: Sequence[Fraction]) -> list[Fraction]:
    out = [Fraction(0)] * (len(p) + len(q) - 1)
    for i, a in enumerate(p):
        if a == 0:
            continue
        for j, b in enumerate(q):
            out[i + j] += a * b
    return out


def _deriv(p: Sequence[Fraction]) -> list[Fraction]:
    return [i * a for i, a in enumerate(p)][1:] or [Fraction(0)]


def _rem(num: Sequence[Fraction], den: Sequence[Fraction]) -> list[Fraction]:
    """Remainder of polynomial division ``num / den`` (den non-zero)."""
    num = list(num)
    d = len(den) - 1
    lead = den[-1]
    while len(num) - 1 >= d and any(c != 0 for c in num):
        num = _trim(num)
        if len(num) - 1 < d:
            break
        factor = num[-1] / lead
        shift = len(num) - 1 - d
        for i, b in enumerate(den):
            num[shift + i] -= factor * b
        num = num[:-1]
    return _trim(num) if num else [Fraction(0)]


def _sturm_chain(p: list[Fraction]) -> list[list[Fraction]]:
    chain = [_trim(p), _trim(_deriv(p))]
    while len(chain[-1]) > 1 or chain[-1][0] != 0:
        remainder = _rem(chain[-2], chain[-1])
        if len(remainder) == 1 and remainder[0] == 0:
            break
        chain.append([-c for c in remainder])
        if len(chain[-1]) == 1:
            break
    return chain


def _variations(signs: Sequence[int]) -> int:
    count = 0
    previous = 0
    for sign in signs:
        if sign == 0:
            continue
        if previous != 0 and sign != previous:
            count += 1
        previous = sign
    return count


def _eval_sign_at_sqrt(p: Sequence[Fraction], g_sq: Fraction, positive: bool) -> int:
    """Sign of ``p(+-sqrt(g_sq))`` via even/odd coefficient splitting."""
    even = Fraction(0)
    odd = Fraction(0)
    for i, a in enumerate(p):
        if i % 2 == 0:
            even += a * g_sq ** (i // 2)
        else:
            odd += a * g_sq ** ((i - 1) // 2)
    return _sign_with_sqrt(even, odd if positive else -odd, g_sq)


def _has_root_within_sqrt(p: list[Fraction], g_sq: Fraction) -> bool:
    """Whether ``p`` has a real root in the closed ``[-sqrt(g_sq), +sqrt(g_sq)]``."""
    p = _trim(p)
    if len(p) == 1:
        return p[0] == 0
    if (
        _eval_sign_at_sqrt(p, g_sq, positive=False) == 0
        or _eval_sign_at_sqrt(p, g_sq, positive=True) == 0
    ):
        return True
    chain = _sturm_chain(p)
    at_lo = _variations([_eval_sign_at_sqrt(q, g_sq, positive=False) for q in chain])
    at_hi = _variations([_eval_sign_at_sqrt(q, g_sq, positive=True) for q in chain])
    return at_lo - at_hi > 0


# ----------------------------------------------------------------------
# The arbiter
# ----------------------------------------------------------------------
def _rationalise(sphere: Hypersphere) -> tuple[tuple[Fraction, ...], Fraction]:
    center = tuple(Fraction(float(c)) for c in sphere.center)
    return center, Fraction(float(sphere.radius))


def exact_dominates(sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> bool:
    """Exact ``Dom(Sa, Sb, Sq)`` over the rationalised float inputs.

    Treats every float coordinate/radius as the exact rational it is and
    settles all signs with integer arithmetic, so the answer matches the
    real-arithmetic Definition 1 for those rational inputs.  Orders of
    magnitude slower than the float kernel — reserve it for borderline
    configurations (which is exactly what the escalation ladder does).
    """
    ca, ra = _rationalise(sa)
    cb, rb = _rationalise(sb)
    cq, rq = _rationalise(sq)
    s = ra + rb

    axis = tuple(b - a for a, b in zip(ca, cb))
    g_sq = sum(x * x for x in axis)
    # Lemma 1: overlapping (or concentric) spheres never dominate.
    if g_sq <= s * s:
        return False

    a_sq = sum((q - a) * (q - a) for q, a in zip(cq, ca))
    b_sq = sum((q - b) * (q - b) for q, b in zip(cq, cb))
    # The query center must lie strictly inside Ra.
    if _margin_sign(a_sq, b_sq, s) <= 0:
        return False
    if rq == 0:
        return True

    # Reduced coordinates: t*g and rho^2 are rational even though the
    # frame change itself involves sqrt(g_sq).
    offset = tuple(q - (a + b) / 2 for q, a, b in zip(cq, ca, cb))
    t_times_g = sum(o * x for o, x in zip(offset, axis))
    offset_sq = sum(o * o for o in offset)
    t_sq = t_times_g * t_times_g / g_sq
    rho_sq = offset_sq - t_sq

    if len(ca) == 1:
        # 1-D: the boundary of Ra is the vertex point t = -s/2.
        g = abs(axis[0])  # sqrt(g_sq) is rational in one dimension
        v = t_times_g / g + s / 2
        return v * v > rq * rq

    if s == 0:
        # Degenerate hyperbola: the perpendicular bisector hyperplane.
        return t_sq > rq * rq

    # Quadric B2*x^2 - A2*y^2 = A2*B2 in the reduced half-plane.
    a2 = s * s / 4
    b2 = (g_sq - s * s) / 4
    # Substitute the circle (t + rq*cos, rho + rq*sin) with w = g*cos:
    # the quadric residual is R(w) - N*sin(theta) with N^2 rational.
    k = b2 * t_sq - a2 * rho_sq - a2 * b2 - a2 * rq * rq
    r_poly = [
        k,
        2 * rq * b2 * t_times_g / g_sq,
        (a2 + b2) * rq * rq / g_sq,
    ]
    n_sq = 4 * rq * rq * a2 * a2 * rho_sq
    phi = _mul(r_poly, r_poly)
    phi[2] += n_sq / g_sq
    phi[0] -= n_sq
    # Dom holds iff the circle misses the quadric entirely (dmin > rq).
    return not _has_root_within_sqrt(phi, g_sq)
