"""The adaptive-precision escalation ladder behind certified decisions.

A dominance verdict is *certified* when some precision stage measured
its decision margin and found it clear of that stage's error bound.
The ladder runs cheap stages first and escalates only when a stage
either **fails** (non-finite intermediate, solver exception — e.g.
under injected faults) or comes back **undecided** (margin inside the
stage's error bound):

``closed``
    Float64 kernel with the Ferrari closed-form quartic solver — the
    paper's O(1) root extraction, cheapest and least accurate.
``companion``
    Float64 kernel with the companion-matrix solver (the repository's
    default production solver).
``longdouble``
    Full recomputation in :class:`numpy.longdouble` (80-bit extended on
    x86), seeded with companion-matrix roots polished by Newton steps
    in extended precision.
``exact``
    The :mod:`repro.robust.exact` rational arbiter: error bound zero,
    cannot fail, cannot be reached by the fault-injection seams.

Stage error bounds are *engineering* tolerances — deliberately
conservative multiples of the relevant length scale, validated
empirically by the boundary-fuzz suite (a certified float verdict must
always agree with the exact arbiter).  Certification is therefore
sound-by-construction at the ``exact`` rung and sound-by-measurement at
the float rungs.

The float stages resolve their numerical kernels (distance, focal
reduction, quartic roots) through module attributes at call time, so
the fault-injection harness in :mod:`repro.robust.faults` can intercept
them; the exact stage shares none of those seams.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

import numpy as np

from repro import obs
from repro.obs import names
from repro.core import hyperbola as _hyperbola
from repro.exceptions import GeometryError, ReproError
from repro.geometry import distance as _distance
from repro.geometry import quartic as _quartic
from repro.geometry import transform as _transform
from repro.geometry.hypersphere import Hypersphere
from repro.resilience.budget import current as _current_budget
from repro.robust.decision import Decision, Verdict
from repro.robust.exact import exact_dominates

__all__ = ["decide", "DEFAULT_LADDER", "FLOAT_LADDER", "StageOutcome"]

#: Result of a successful stage: (dominates, margin, certified bound).
StageOutcome = "tuple[bool, float, float]"

# Relative error budgets per stage.  The closed-form Ferrari cascade
# loses more digits than the companion matrix (resolvent + two nested
# square roots), hence the wider bound.
_CLOSED_REL = 1e-9
_COMPANION_REL = 1e-10
# On platforms where longdouble is a float64 alias the extended stage
# can only certify what plain float64 can.
_LONGDOUBLE_REL = 1e-13 if float(np.finfo(np.longdouble).eps) < 1e-17 else 1e-11

# Exceptions that mark a stage as *failed* (as opposed to undecided).
_STAGE_FAILURES = (ArithmeticError, ValueError, GeometryError, np.linalg.LinAlgError)


class _Undecided(ReproError):
    """A stage measured a margin inside its own error bound."""

    def __init__(self, margin: float, bound: float) -> None:
        super().__init__(f"margin {margin:.3g} within bound {bound:.3g}")
        self.margin = float(margin)
        self.bound = float(bound)


def _require_finite(*values: float) -> None:
    for value in values:
        if not math.isfinite(value):
            raise ArithmeticError(f"non-finite intermediate value {value!r}")


def _classify(margin: float, bound: float) -> bool:
    """Map a measured margin to a certified boolean, or escalate."""
    _require_finite(margin)
    if margin > bound:
        return True
    if margin < -bound:
        return False
    raise _Undecided(margin, bound)


# ----------------------------------------------------------------------
# Float64 stages (closed-form and companion-matrix quartic solvers)
# ----------------------------------------------------------------------
def _float64_stage(
    sa: Hypersphere,
    sb: Hypersphere,
    sq: Hypersphere,
    solver: Callable[[Sequence[float]], np.ndarray],
    rel: float,
) -> "tuple[bool, float, float]":
    dist = _distance.dist  # resolved at call time: fault-injection seam
    rab = float(sa.radius) + float(sb.radius)
    gap = dist(sa.center, sb.center)
    _require_finite(gap)
    margin = gap - rab
    bound = rel * (gap + rab)
    if not _classify(margin, bound):
        return False, margin, bound  # Lemma 1: overlapping spheres

    to_ca = dist(sa.center, sq.center)
    to_cb = dist(sb.center, sq.center)
    _require_finite(to_ca, to_cb)
    margin = to_cb - to_ca - rab
    bound = rel * (to_ca + to_cb + rab)
    if not _classify(margin, bound):
        return False, margin, bound  # query center outside Ra

    rq = float(sq.radius)
    if rq == 0.0:
        return True, margin, bound

    frame = _transform.FocalFrame(sa.center, sb.center)
    t, rho = frame.reduce(sq.center)  # FocalFrame.reduce: injection seam
    alpha = float(frame.alpha)
    _require_finite(t, rho, alpha)
    extra = 0.0
    if sa.dimension == 1:
        dmin = abs(t + rab / 2.0)
    elif rab <= _hyperbola._BISECTOR_THRESHOLD * alpha:
        # The bisector shortcut approximates the hyperbola by its
        # asymptotic hyperplane; the vertex sits rab/2 away from it, so
        # widen the certification bound by the full approximation error.
        dmin = abs(t)
        extra = rab
    else:
        dmin = _hyperbola._distance_to_hyperbola_2d(t, rho, alpha, rab, solver=solver)
    _require_finite(dmin)
    margin = dmin - rq
    bound = rel * (alpha + abs(t) + rho + dmin + rq) + extra
    return _classify(margin, bound), margin, bound


def _stage_closed(
    sa: Hypersphere, sb: Hypersphere, sq: Hypersphere
) -> "tuple[bool, float, float]":
    return _float64_stage(
        sa, sb, sq, lambda c: _quartic.solve_quartic_real_closed(c), _CLOSED_REL
    )


def _stage_companion(
    sa: Hypersphere, sb: Hypersphere, sq: Hypersphere
) -> "tuple[bool, float, float]":
    return _float64_stage(
        sa, sb, sq, lambda c: _quartic.solve_quartic_real(c), _COMPANION_REL
    )


# ----------------------------------------------------------------------
# Extended-precision stage
# ----------------------------------------------------------------------
def _stage_longdouble(
    sa: Hypersphere, sb: Hypersphere, sq: Hypersphere
) -> "tuple[bool, float, float]":
    """Recompute the whole decision in ``np.longdouble``.

    Distances and the focal reduction are recomputed from scratch in
    extended precision (bypassing the float64 kernels and their seams);
    quartic roots are seeded from the float64 companion solver and
    polished with Newton iterations in extended precision, alongside
    the closed-form vertex and ring candidates.
    """
    ld = np.longdouble
    rel = _LONGDOUBLE_REL
    ca = np.asarray(sa.center, dtype=ld)
    cb = np.asarray(sb.center, dtype=ld)
    cq = np.asarray(sq.center, dtype=ld)
    rab = ld(float(sa.radius)) + ld(float(sb.radius))
    rq = ld(float(sq.radius))

    gap = np.sqrt(np.sum((cb - ca) ** 2))
    margin = float(gap - rab)
    bound = rel * float(gap + rab)
    if not _classify(margin, bound):
        return False, margin, bound

    to_ca = np.sqrt(np.sum((cq - ca) ** 2))
    to_cb = np.sqrt(np.sum((cq - cb) ** 2))
    margin = float(to_cb - to_ca - rab)
    bound = rel * float(to_ca + to_cb + rab)
    if not _classify(margin, bound):
        return False, margin, bound
    if rq == 0.0:
        return True, margin, bound

    # Focal reduction in extended precision.
    alpha = gap / ld(2.0)
    axis = (cb - ca) / gap
    offset = cq - (ca + cb) / ld(2.0)
    t = np.sum(offset * axis)
    rho_sq = np.sum(offset * offset) - t * t
    rho = np.sqrt(rho_sq) if rho_sq > 0.0 else ld(0.0)

    extra = 0.0
    if sa.dimension == 1:
        dmin = abs(t + rab / ld(2.0))
    elif float(rab) <= _hyperbola._BISECTOR_THRESHOLD * float(alpha):
        dmin = abs(t)
        extra = float(rab)
    else:
        dmin = _longdouble_dmin(t, rho, alpha, rab)
    _require_finite(float(dmin))
    margin = float(dmin - rq)
    bound = rel * float(alpha + abs(t) + rho + dmin + rq) + extra
    return _classify(margin, bound), margin, bound


def _longdouble_dmin(
    t: "np.floating[Any]",
    rho: "np.floating[Any]",
    alpha: "np.floating[Any]",
    rab: "np.floating[Any]",
) -> "np.floating[Any]":
    """Extended-precision variant of the kernel's candidate search."""
    ld = np.longdouble
    rab_sq = rab * rab
    alpha_sq = alpha * alpha
    a1 = (ld(16.0) * alpha_sq - ld(4.0) * rab_sq) * t * t
    a2 = rab_sq * rab_sq - ld(4.0) * rab_sq * alpha_sq
    a3 = ld(4.0) * rab_sq * rho * rho
    a4 = ld(4.0) * rab_sq
    a5 = ld(4.0) * rab_sq - ld(16.0) * alpha_sq

    coeffs = (
        a2 * a4 * a4 * a5 * a5,
        ld(2.0) * a2 * a4 * a4 * a5 + ld(2.0) * a2 * a4 * a5 * a5,
        a1 * a4 * a4 + a2 * a4 * a4 + ld(4.0) * a2 * a4 * a5 + a2 * a5 * a5 - a3 * a5 * a5,
        ld(2.0) * a1 * a4 + ld(2.0) * a2 * a4 + ld(2.0) * a2 * a5 - ld(2.0) * a3 * a5,
        a1 + a2 - a3,
    )

    def quadric_y_sq(x: "np.floating[Any]") -> "np.floating[Any]":
        return (
            (ld(16.0) * alpha_sq - ld(4.0) * rab_sq) * x * x / (ld(4.0) * rab_sq)
            - alpha_sq
            + rab_sq / ld(4.0)
        )

    best_sq = ld(np.inf)

    def consider(x: "np.floating[Any]", y: "np.floating[Any]") -> None:
        nonlocal best_sq
        dx = t - x
        dy = rho - y
        candidate = dx * dx + dy * dy
        if candidate < best_sq:
            best_sq = candidate

    half_rab = rab / ld(2.0)
    consider(half_rab, ld(0.0))
    consider(-half_rab, ld(0.0))
    x_ring = t * rab_sq / (ld(4.0) * alpha_sq)
    y_ring_sq = quadric_y_sq(x_ring)
    if y_ring_sq >= 0.0:
        consider(x_ring, np.sqrt(y_ring_sq))

    # Seed roots from the float64 companion solver (a fault-injection
    # seam: corrupted roots either fail the finiteness guard here or
    # polish back onto the true quartic), then Newton-polish them in
    # extended precision.
    seeds = _quartic.solve_quartic_real(tuple(float(c) for c in coeffs))
    derivative = tuple(ld(4 - i) * c for i, c in enumerate(coeffs[:4]))
    for seed in seeds:
        lam = ld(float(seed))
        if not np.isfinite(lam):
            raise ArithmeticError("quartic solver produced a non-finite root")
        for _ in range(4):
            value = ((((coeffs[0] * lam + coeffs[1]) * lam) + coeffs[2]) * lam + coeffs[3]) * lam + coeffs[4]
            slope = (((derivative[0] * lam + derivative[1]) * lam) + derivative[2]) * lam + derivative[3]
            if slope == 0.0:
                break
            step = value / slope
            lam = lam - step
            if not np.isfinite(lam):
                raise ArithmeticError("Newton polishing diverged")
        denom_x = ld(1.0) + a5 * lam
        if abs(float(denom_x)) < _hyperbola._DENOM_EPS:
            continue
        x = t / denom_x
        y_sq = quadric_y_sq(x)
        if y_sq < 0.0:
            continue
        consider(x, np.sqrt(y_sq))

    if not np.isfinite(best_sq):
        raise ArithmeticError("non-finite inputs to the boundary-distance search")
    return np.sqrt(best_sq)


# ----------------------------------------------------------------------
# Exact stage and the driver
# ----------------------------------------------------------------------
def _stage_exact(
    sa: Hypersphere, sb: Hypersphere, sq: Hypersphere
) -> "tuple[bool, float, float]":
    # No numeric margin to report: the sign is settled by integer
    # arithmetic with error bound zero.
    return exact_dominates(sa, sb, sq), math.nan, 0.0


#: The full ladder, cheapest stage first.
DEFAULT_LADDER: "tuple[tuple[str, Callable], ...]" = (
    ("closed", _stage_closed),
    ("companion", _stage_companion),
    ("longdouble", _stage_longdouble),
    ("exact", _stage_exact),
)

#: The ladder truncated before the exact arbiter — every rung fallible.
FLOAT_LADDER = DEFAULT_LADDER[:-1]


def decide(
    sa: Hypersphere,
    sb: Hypersphere,
    sq: Hypersphere,
    ladder: "Sequence[tuple[str, Callable]]" = DEFAULT_LADDER,
) -> Decision:
    """Run *ladder* until a stage certifies a verdict.

    Returns an ``UNCERTAIN`` :class:`Decision` (carrying the last
    measured margin/bound) when every stage fails or comes back
    undecided — only possible with a truncated ladder, under injected
    faults, or when an exhausted execution budget denies escalation,
    since the exact arbiter always terminates with a verdict.

    Escalation is a budget seam: when a
    :class:`repro.resilience.Budget` is active, every stage beyond the
    first charges :meth:`~repro.resilience.Budget.charge_escalation`; a
    denied charge abandons the climb and the decision comes back
    ``UNCERTAIN``, collapsing to the caller's conservative fallback —
    degraded, never wrong.
    """
    last_margin = math.nan
    last_bound = math.inf
    last_stage = ""
    budget = _current_budget()
    for stage_index, (name, stage) in enumerate(ladder):
        if (
            stage_index > 0
            and budget is not None
            and budget.charge_escalation() is not None
        ):
            break
        if obs.ENABLED:
            obs.incr(names.verified_stage(name))
        try:
            dominates, margin, bound = stage(sa, sb, sq)
        except _Undecided as undecided:
            last_margin, last_bound, last_stage = undecided.margin, undecided.bound, name
            if obs.ENABLED:
                obs.incr(names.verified_stage_undecided(name))
            continue
        except _STAGE_FAILURES:
            last_stage = name
            if obs.ENABLED:
                obs.incr(names.verified_stage_failed(name))
            continue
        verdict = Verdict.TRUE if dominates else Verdict.FALSE
        return Decision(verdict, margin=margin, bound=bound, stage=name)
    if obs.ENABLED:
        obs.incr(names.VERIFIED_UNCERTAIN)
    return Decision(
        Verdict.UNCERTAIN, margin=last_margin, bound=last_bound, stage=last_stage
    )
