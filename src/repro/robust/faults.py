"""Deterministic fault injection for the numerical dominance kernels.

The escalation ladder's claim is *graceful degradation*: whatever a
numerical kernel does — return garbage, overflow, blow up — a certified
verdict is either right or honestly ``UNCERTAIN``.  This module makes
that claim testable by corrupting the kernels at their seams:

``"quartic"``
    The three root solvers in :mod:`repro.geometry.quartic`
    (:func:`~repro.geometry.quartic.solve_quartic_real`, its
    closed-form and batch variants).
``"frame"``
    :meth:`repro.geometry.transform.FocalFrame.reduce`, the O(d)
    reduction feeding ``(t, rho)`` into the 2-D kernel.
``"distance"``
    :func:`repro.geometry.distance.dist`, used by the overlap and
    center-side fast paths.
``"index"``
    The node distance bounds (``min_dist`` and
    ``max_dist_lower_bound``) of all three tree indexes — the values a
    kNN traversal prunes on.  The query layer must absorb a corrupted
    bound by refusing to prune, never by dropping a subtree.
``"snapshot"``
    The raw byte I/O of :mod:`repro.index.snapshot` (``_io_write`` /
    ``_io_read``) — what a flaky disk or a crash mid-write does.  The
    CRC framing must turn every corruption into a typed
    :class:`~repro.exceptions.SnapshotCorruptionError`.
``"clock"``
    The monotonic clock behind :class:`repro.resilience.budget.Budget`
    deadlines.  A skewed or broken clock must degrade a budgeted query
    conservatively (reason ``"clock"``), never disarm its deadline.
    The serving layer's admission control and circuit breakers read
    the same attribute, so this seam skews the whole serving stack.
``"handler"``
    The request-handler hook of the serving front end
    (:func:`repro.serve.app._handler_hook`).  Scalar modes inject a
    *delay* (``nan`` ≈ 50 ms, ``overflow`` ≈ 250 ms, ``perturb`` a
    magnitude-scaled pause) that burns the request's budget; ``raise``
    explodes mid-request.  The server must answer 206 (absorbed,
    conservative) — never 5xx.
``"queue"``
    The admission queue-overflow probe
    (:func:`repro.serve.admission._overflow_probe`).  Every mode forces
    the overflow verdict (``raise`` by exploding inside the probe,
    which admission absorbs); the server must shed with 429 +
    Retry-After.
``"wal_append"``
    The raw write of :mod:`repro.stream.wal` (``_io_write``) — a torn
    or corrupted append.  Recovery must keep the good prefix and
    truncate at the first bad frame, never replay garbage.
``"wal_fsync"``
    The durability barrier of the write-ahead log (``_fsync``).
    ``raise`` explodes (the ack must not happen); scalar modes *skip*
    the sync — the lying-disk case the crash matrix pairs with a kill.
``"wal_read"``
    The raw read of the WAL replay path (``_io_read``).  Corrupt bytes
    must surface as a truncated (prefix-preserving) recovery, never as
    silently wrong mutations.
``"compact_rename"``
    The atomic commit point of :mod:`repro.stream.compact`
    (``_rename``).  Every mode raises: a failed rename must leave the
    old snapshot + WAL fully intact (typed
    :class:`~repro.exceptions.CompactionError`, no partial state).
``"worker_spawn"``
    The supervisor's pre-spawn hook
    (:func:`repro.serve.supervisor._spawn_probe`).  Every mode raises:
    a failed fork/exec must land in the backoff respawn path, and a
    persistently failing slot must hit the flap cap instead of crash
    looping.
``"worker_heartbeat"``
    The supervisor's health verdict
    (:func:`repro.serve.supervisor._heartbeat_probe`).  ``raise``
    explodes inside the check, scalar modes report the worker dead;
    either way the supervisor must count a miss, SIGKILL the worker,
    and respawn it — a flaky health checker may cost a healthy worker,
    never an answer.
``"worker_kill"``
    The supervisor's pre-dispatch chaos hook
    (:func:`repro.serve.supervisor._kill_probe`).  ``raise`` and
    scalar modes SIGKILL the chosen worker right before its request is
    written — the worst moment — so the dispatch must fail over to a
    survivor (queries) or re-ack through the WAL seq hint (mutations).

and four corruption modes (seam-appropriate where outputs are not
scalars — see each patcher):

``"nan"``     outputs poisoned with ``nan`` (snapshot: bytes zeroed);
``"overflow"``  outputs replaced by ``inf`` (snapshot: bytes truncated);
``"perturb"``   outputs scaled by ``1 + magnitude`` (default 1e-12 —
                within the float stages' certification bounds, so a
                robust decision absorbs it silently; snapshot: one bit
                flipped);
``"raise"``     the seam raises :class:`FaultInjected`.

Injection is **deterministic**: the seam fires on every ``every``-th
call (counted from the first), so a failing test replays exactly.  Use
as a context manager::

    with faults.inject("quartic", "nan"):
        decision = criterion.decide(sa, sb, sq)

Fault activations are counted per seam/mode through :mod:`repro.obs`
(``faults.<seam>.<mode>``) and on the returned handle's ``hits``.

The exact arbiter (:mod:`repro.robust.exact`) deliberately uses none of
these seams, which is what lets the full ladder terminate correctly no
matter what is injected.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field
from typing import BinaryIO, Callable, Iterator, Sequence

import numpy as np

from repro import obs
from repro.obs import names
from repro.exceptions import ReproError
from repro.geometry import distance as _distance
from repro.geometry import quartic as _quartic
from repro.geometry.transform import FocalFrame

__all__ = ["FaultInjected", "InjectedFault", "inject", "SEAMS", "MODES"]

SEAMS = (
    "quartic",
    "frame",
    "distance",
    "index",
    "snapshot",
    "clock",
    "handler",
    "queue",
    "wal_append",
    "wal_fsync",
    "wal_read",
    "compact_rename",
    "worker_spawn",
    "worker_heartbeat",
    "worker_kill",
)
MODES = ("nan", "overflow", "perturb", "raise")


class FaultInjected(ArithmeticError):
    """Raised by a seam operating in ``"raise"`` mode.

    Subclasses :class:`ArithmeticError` so the escalation ladder treats
    an injected explosion exactly like a genuine numerical failure.
    """


@dataclass
class InjectedFault:
    """Handle describing one active injection (returned by :func:`inject`)."""

    seam: str
    mode: str
    every: int = 1
    magnitude: float = 1e-12
    calls: int = field(default=0, init=False)
    hits: int = field(default=0, init=False)

    def fires(self) -> bool:
        """Advance the call counter; report whether this call is corrupted."""
        self.calls += 1
        if (self.calls - 1) % self.every != 0:
            return False
        self.hits += 1
        if obs.ENABLED:
            obs.incr(names.fault(self.seam, self.mode))
        return True

    def corrupt_scalar(self, value: float) -> float:
        if self.mode == "nan":
            return math.nan
        if self.mode == "overflow":
            return math.inf
        return value * (1.0 + self.magnitude)

    def corrupt_pair(self, pair: "tuple[float, float]") -> "tuple[float, float]":
        return (self.corrupt_scalar(pair[0]), self.corrupt_scalar(pair[1]))

    def corrupt_roots(self, roots: np.ndarray) -> np.ndarray:
        if self.mode == "nan":
            # Append a nan rather than blanking the array: the sharper
            # failure mode is a poisoned value *alongside* real roots,
            # which float comparisons would silently drop.
            return np.append(roots, np.nan)
        if self.mode == "overflow":
            return np.append(roots, np.inf)
        return roots * (1.0 + self.magnitude)

    def corrupt_bytes(self, data: bytes) -> bytes:
        """Byte-level corruption for the snapshot seam.

        ``nan`` zeroes the buffer (a page of unwritten sectors),
        ``overflow`` truncates it (a crash mid-write), ``perturb``
        flips a single bit (a decayed sector).
        """
        if not data:
            return data
        if self.mode == "nan":
            return bytes(len(data))
        if self.mode == "overflow":
            return data[: max(len(data) - 1, 0)]
        flipped = bytearray(data)
        flipped[len(flipped) // 2] ^= 0x01
        return bytes(flipped)


def _check(seam: str, mode: str, every: int) -> None:
    if seam not in SEAMS:
        raise ReproError(f"unknown fault seam {seam!r}; expected one of {SEAMS}")
    if mode not in MODES:
        raise ReproError(f"unknown fault mode {mode!r}; expected one of {MODES}")
    if every < 1:
        raise ReproError(f"'every' must be a positive integer, got {every}")


# ----------------------------------------------------------------------
# Per-seam patchers.  Each one swaps the seam's callables for corrupted
# wrappers for the duration of the ``with`` block and restores the
# originals in ``finally`` — injection can never leak out of the block.
# ----------------------------------------------------------------------
@contextlib.contextmanager
def _patch_quartic(fault: InjectedFault) -> "Iterator[None]":
    originals = {
        "solve_quartic_real": _quartic.solve_quartic_real,
        "solve_quartic_real_closed": _quartic.solve_quartic_real_closed,
        "solve_quartic_real_batch": _quartic.solve_quartic_real_batch,
    }

    def _wrap_solver(
        original: "Callable[..., np.ndarray]",
    ) -> "Callable[..., np.ndarray]":
        def corrupted(
            coefficients: "np.ndarray | Sequence[float]",
        ) -> np.ndarray:
            roots = original(coefficients)
            if not fault.fires():
                return roots
            if fault.mode == "raise":
                raise FaultInjected(f"injected fault in {original.__name__}")
            return fault.corrupt_roots(roots)

        return corrupted

    def _wrap_batch(
        original: "Callable[..., np.ndarray]",
    ) -> "Callable[..., np.ndarray]":
        def corrupted(coefficients: np.ndarray) -> np.ndarray:
            roots = original(coefficients)
            if not fault.fires():
                return roots
            if fault.mode == "raise":
                raise FaultInjected("injected fault in solve_quartic_real_batch")
            if fault.mode == "nan":
                return np.where(np.isnan(roots), roots, np.nan)
            if fault.mode == "overflow":
                return np.where(np.isnan(roots), roots, np.inf)
            return roots * (1.0 + fault.magnitude)

        return corrupted

    try:
        _quartic.solve_quartic_real = _wrap_solver(originals["solve_quartic_real"])
        _quartic.solve_quartic_real_closed = _wrap_solver(
            originals["solve_quartic_real_closed"]
        )
        _quartic.solve_quartic_real_batch = _wrap_batch(
            originals["solve_quartic_real_batch"]
        )
        yield
    finally:
        for name, original in originals.items():
            setattr(_quartic, name, original)


@contextlib.contextmanager
def _patch_frame(fault: InjectedFault) -> "Iterator[None]":
    original_reduce = FocalFrame.reduce

    def corrupted_reduce(
        self: FocalFrame, point: "Sequence[float] | np.ndarray"
    ) -> "tuple[float, float]":
        pair = original_reduce(self, point)
        if not fault.fires():
            return pair
        if fault.mode == "raise":
            raise FaultInjected("injected fault in FocalFrame.reduce")
        return fault.corrupt_pair(pair)

    try:
        FocalFrame.reduce = corrupted_reduce
        yield
    finally:
        FocalFrame.reduce = original_reduce


@contextlib.contextmanager
def _patch_distance(fault: InjectedFault) -> "Iterator[None]":
    original_dist = _distance.dist

    def corrupted_dist(
        p: "Sequence[float] | np.ndarray", q: "Sequence[float] | np.ndarray"
    ) -> float:
        value = original_dist(p, q)
        if not fault.fires():
            return value
        if fault.mode == "raise":
            raise FaultInjected("injected fault in dist")
        return fault.corrupt_scalar(value)

    try:
        _distance.dist = corrupted_dist
        yield
    finally:
        _distance.dist = original_dist


@contextlib.contextmanager
def _patch_index(fault: InjectedFault) -> "Iterator[None]":
    # Imported here, not at module top: the seams are optional test
    # machinery and must not make repro.robust depend on the indexes.
    from repro.index.mtree import MTreeNode
    from repro.index.sstree import SSTreeNode
    from repro.index.vptree import VPTreeNode

    node_classes = (SSTreeNode, MTreeNode, VPTreeNode)
    method_names = ("min_dist", "max_dist_lower_bound")
    originals = [
        (cls, name, getattr(cls, name))
        for cls in node_classes
        for name in method_names
    ]

    def _wrap_bound(
        original: "Callable[..., float]", label: str
    ) -> "Callable[..., float]":
        def corrupted(self: object, query: object) -> float:
            value = original(self, query)
            if not fault.fires():
                return value
            if fault.mode == "raise":
                raise FaultInjected(f"injected fault in {label}")
            return fault.corrupt_scalar(value)

        return corrupted

    try:
        for cls, name, original in originals:
            setattr(cls, name, _wrap_bound(original, f"{cls.__name__}.{name}"))
        yield
    finally:
        for cls, name, original in originals:
            setattr(cls, name, original)


@contextlib.contextmanager
def _patch_snapshot(fault: InjectedFault) -> "Iterator[None]":
    from repro.index import snapshot as _snapshot

    original_write = _snapshot._io_write
    original_read = _snapshot._io_read

    def corrupted_write(handle: BinaryIO, data: bytes) -> None:
        if fault.fires():
            if fault.mode == "raise":
                raise FaultInjected("injected fault in snapshot write")
            data = fault.corrupt_bytes(data)
        original_write(handle, data)

    def corrupted_read(handle: BinaryIO, size: int) -> bytes:
        data = original_read(handle, size)
        if not fault.fires():
            return data
        if fault.mode == "raise":
            raise FaultInjected("injected fault in snapshot read")
        return fault.corrupt_bytes(data)

    try:
        _snapshot._io_write = corrupted_write
        _snapshot._io_read = corrupted_read
        yield
    finally:
        _snapshot._io_write = original_write
        _snapshot._io_read = original_read


@contextlib.contextmanager
def _patch_clock(fault: InjectedFault) -> "Iterator[None]":
    from repro.resilience import budget as _budget

    original_monotonic = _budget._monotonic

    def corrupted_monotonic() -> float:
        now = original_monotonic()
        if not fault.fires():
            return now
        if fault.mode == "raise":
            raise FaultInjected("injected fault in monotonic clock")
        return fault.corrupt_scalar(now)

    try:
        _budget._monotonic = corrupted_monotonic
        yield
    finally:
        _budget._monotonic = original_monotonic


@contextlib.contextmanager
def _patch_handler(fault: InjectedFault) -> "Iterator[None]":
    from repro.serve import app as _app

    original_hook = _app._handler_hook

    def corrupted_hook() -> float:
        delay = original_hook()
        if not fault.fires():
            return delay
        if fault.mode == "raise":
            raise FaultInjected("injected fault in request handler")
        if fault.mode == "nan":
            return delay + 0.05
        if fault.mode == "overflow":
            return delay + 0.25
        # perturb: a pause scaled off the magnitude (default 1e-12
        # → 1 ms), small enough that only tight deadlines notice.
        return delay + fault.magnitude * 1e9

    try:
        _app._handler_hook = corrupted_hook
        yield
    finally:
        _app._handler_hook = original_hook


@contextlib.contextmanager
def _patch_queue(fault: InjectedFault) -> "Iterator[None]":
    from repro.serve import admission as _admission

    original_probe = _admission._overflow_probe

    def corrupted_probe() -> bool:
        overflowing = original_probe()
        if not fault.fires():
            return overflowing
        if fault.mode == "raise":
            raise FaultInjected("injected fault in queue-overflow probe")
        return True

    try:
        _admission._overflow_probe = corrupted_probe
        yield
    finally:
        _admission._overflow_probe = original_probe


@contextlib.contextmanager
def _patch_wal_append(fault: InjectedFault) -> "Iterator[None]":
    from repro.stream import wal as _wal

    original_write = _wal._io_write

    def corrupted_write(handle: BinaryIO, data: bytes) -> None:
        if fault.fires():
            if fault.mode == "raise":
                raise FaultInjected("injected fault in WAL append")
            data = fault.corrupt_bytes(data)
        original_write(handle, data)

    try:
        _wal._io_write = corrupted_write
        yield
    finally:
        _wal._io_write = original_write


@contextlib.contextmanager
def _patch_wal_fsync(fault: InjectedFault) -> "Iterator[None]":
    from repro.stream import wal as _wal

    original_fsync = _wal._fsync

    def corrupted_fsync(fileno: int) -> None:
        if fault.fires():
            if fault.mode == "raise":
                raise FaultInjected("injected fault in WAL fsync")
            # Scalar modes model a lying disk: the sync is silently
            # skipped.  On its own this is invisible; the crash matrix
            # pairs it with a process kill to test the exposure.
            return
        original_fsync(fileno)

    try:
        _wal._fsync = corrupted_fsync
        yield
    finally:
        _wal._fsync = original_fsync


@contextlib.contextmanager
def _patch_wal_read(fault: InjectedFault) -> "Iterator[None]":
    from repro.stream import wal as _wal

    original_read = _wal._io_read

    def corrupted_read(handle: BinaryIO, size: int) -> bytes:
        data = original_read(handle, size)
        if not fault.fires():
            return data
        if fault.mode == "raise":
            raise FaultInjected("injected fault in WAL read")
        return fault.corrupt_bytes(data)

    try:
        _wal._io_read = corrupted_read
        yield
    finally:
        _wal._io_read = original_read


@contextlib.contextmanager
def _patch_compact_rename(fault: InjectedFault) -> "Iterator[None]":
    # Not ``from repro.stream import compact``: the package re-exports
    # the compact *function* under that name, shadowing the module
    # attribute, so the module must be fetched from the import system.
    import importlib

    _compact = importlib.import_module("repro.stream.compact")

    original_rename = _compact._rename

    def corrupted_rename(source: str, destination: str) -> None:
        if fault.fires():
            # Every mode explodes: a rename has no scalar output to
            # poison, and a failed commit is the interesting case.
            raise FaultInjected("injected fault in compaction rename")
        original_rename(source, destination)

    try:
        _compact._rename = corrupted_rename
        yield
    finally:
        _compact._rename = original_rename


@contextlib.contextmanager
def _patch_worker_spawn(fault: InjectedFault) -> "Iterator[None]":
    from repro.serve import supervisor as _supervisor

    original_probe = _supervisor._spawn_probe

    def corrupted_probe() -> None:
        original_probe()
        if fault.fires():
            # Every mode explodes: a spawn has no scalar output to
            # poison, and a failed fork/exec is the interesting case.
            raise FaultInjected("injected fault in worker spawn")

    try:
        _supervisor._spawn_probe = corrupted_probe
        yield
    finally:
        _supervisor._spawn_probe = original_probe


@contextlib.contextmanager
def _patch_worker_heartbeat(fault: InjectedFault) -> "Iterator[None]":
    from repro.serve import supervisor as _supervisor

    original_probe = _supervisor._heartbeat_probe

    def corrupted_probe() -> bool:
        alive = original_probe()
        if not fault.fires():
            return alive
        if fault.mode == "raise":
            raise FaultInjected("injected fault in worker heartbeat")
        # Scalar modes model a worker that stops answering pings: the
        # health verdict comes back dead even though the process lives.
        return False

    try:
        _supervisor._heartbeat_probe = corrupted_probe
        yield
    finally:
        _supervisor._heartbeat_probe = original_probe


@contextlib.contextmanager
def _patch_worker_kill(fault: InjectedFault) -> "Iterator[None]":
    from repro.serve import supervisor as _supervisor

    original_probe = _supervisor._kill_probe

    def corrupted_probe() -> bool:
        wants_kill = original_probe()
        if not fault.fires():
            return wants_kill
        if fault.mode == "raise":
            raise FaultInjected("injected fault in worker kill probe")
        return True

    try:
        _supervisor._kill_probe = corrupted_probe
        yield
    finally:
        _supervisor._kill_probe = original_probe


_PATCHERS: "dict[str, Callable[[InjectedFault], contextlib.AbstractContextManager[None]]]" = {
    "quartic": _patch_quartic,
    "frame": _patch_frame,
    "distance": _patch_distance,
    "index": _patch_index,
    "snapshot": _patch_snapshot,
    "clock": _patch_clock,
    "handler": _patch_handler,
    "queue": _patch_queue,
    "wal_append": _patch_wal_append,
    "wal_fsync": _patch_wal_fsync,
    "wal_read": _patch_wal_read,
    "compact_rename": _patch_compact_rename,
    "worker_spawn": _patch_worker_spawn,
    "worker_heartbeat": _patch_worker_heartbeat,
    "worker_kill": _patch_worker_kill,
}


@contextlib.contextmanager
def inject(
    seam: str,
    mode: str,
    every: int = 1,
    magnitude: float = 1e-12,
) -> Iterator[InjectedFault]:
    """Corrupt one *seam* with one *mode* for the duration of the block."""
    _check(seam, mode, every)
    fault = InjectedFault(seam=seam, mode=mode, every=every, magnitude=magnitude)
    with _PATCHERS[seam](fault):
        yield fault
