"""Deterministic fault injection for the numerical dominance kernels.

The escalation ladder's claim is *graceful degradation*: whatever a
numerical kernel does — return garbage, overflow, blow up — a certified
verdict is either right or honestly ``UNCERTAIN``.  This module makes
that claim testable by corrupting the kernels at their seams:

``"quartic"``
    The three root solvers in :mod:`repro.geometry.quartic`
    (:func:`~repro.geometry.quartic.solve_quartic_real`, its
    closed-form and batch variants).
``"frame"``
    :meth:`repro.geometry.transform.FocalFrame.reduce`, the O(d)
    reduction feeding ``(t, rho)`` into the 2-D kernel.
``"distance"``
    :func:`repro.geometry.distance.dist`, used by the overlap and
    center-side fast paths.

and four corruption modes:

``"nan"``     outputs poisoned with ``nan``;
``"overflow"``  outputs replaced by ``inf``;
``"perturb"``   outputs scaled by ``1 + magnitude`` (default 1e-12 —
                within the float stages' certification bounds, so a
                robust decision absorbs it silently);
``"raise"``     the seam raises :class:`FaultInjected`.

Injection is **deterministic**: the seam fires on every ``every``-th
call (counted from the first), so a failing test replays exactly.  Use
as a context manager::

    with faults.inject("quartic", "nan"):
        decision = criterion.decide(sa, sb, sq)

Fault activations are counted per seam/mode through :mod:`repro.obs`
(``faults.<seam>.<mode>``) and on the returned handle's ``hits``.

The exact arbiter (:mod:`repro.robust.exact`) deliberately uses none of
these seams, which is what lets the full ladder terminate correctly no
matter what is injected.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from repro import obs
from repro.obs import names
from repro.exceptions import ReproError
from repro.geometry import distance as _distance
from repro.geometry import quartic as _quartic
from repro.geometry.transform import FocalFrame

__all__ = ["FaultInjected", "InjectedFault", "inject", "SEAMS", "MODES"]

SEAMS = ("quartic", "frame", "distance")
MODES = ("nan", "overflow", "perturb", "raise")


class FaultInjected(ArithmeticError):
    """Raised by a seam operating in ``"raise"`` mode.

    Subclasses :class:`ArithmeticError` so the escalation ladder treats
    an injected explosion exactly like a genuine numerical failure.
    """


@dataclass
class InjectedFault:
    """Handle describing one active injection (returned by :func:`inject`)."""

    seam: str
    mode: str
    every: int = 1
    magnitude: float = 1e-12
    calls: int = field(default=0, init=False)
    hits: int = field(default=0, init=False)

    def fires(self) -> bool:
        """Advance the call counter; report whether this call is corrupted."""
        self.calls += 1
        if (self.calls - 1) % self.every != 0:
            return False
        self.hits += 1
        if obs.ENABLED:
            obs.incr(names.fault(self.seam, self.mode))
        return True

    def corrupt_scalar(self, value: float) -> float:
        if self.mode == "nan":
            return math.nan
        if self.mode == "overflow":
            return math.inf
        return value * (1.0 + self.magnitude)

    def corrupt_pair(self, pair: "tuple[float, float]") -> "tuple[float, float]":
        return (self.corrupt_scalar(pair[0]), self.corrupt_scalar(pair[1]))

    def corrupt_roots(self, roots: np.ndarray) -> np.ndarray:
        if self.mode == "nan":
            # Append a nan rather than blanking the array: the sharper
            # failure mode is a poisoned value *alongside* real roots,
            # which float comparisons would silently drop.
            return np.append(roots, np.nan)
        if self.mode == "overflow":
            return np.append(roots, np.inf)
        return roots * (1.0 + self.magnitude)


def _check(seam: str, mode: str, every: int) -> None:
    if seam not in SEAMS:
        raise ReproError(f"unknown fault seam {seam!r}; expected one of {SEAMS}")
    if mode not in MODES:
        raise ReproError(f"unknown fault mode {mode!r}; expected one of {MODES}")
    if every < 1:
        raise ReproError(f"'every' must be a positive integer, got {every}")


@contextlib.contextmanager
def inject(
    seam: str,
    mode: str,
    every: int = 1,
    magnitude: float = 1e-12,
) -> Iterator[InjectedFault]:
    """Corrupt one *seam* with one *mode* for the duration of the block."""
    _check(seam, mode, every)
    fault = InjectedFault(seam=seam, mode=mode, every=every, magnitude=magnitude)
    if seam == "quartic":
        originals = {
            "solve_quartic_real": _quartic.solve_quartic_real,
            "solve_quartic_real_closed": _quartic.solve_quartic_real_closed,
            "solve_quartic_real_batch": _quartic.solve_quartic_real_batch,
        }

        def _wrap_solver(
            original: "Callable[..., np.ndarray]",
        ) -> "Callable[..., np.ndarray]":
            def corrupted(
                coefficients: "np.ndarray | Sequence[float]",
            ) -> np.ndarray:
                roots = original(coefficients)
                if not fault.fires():
                    return roots
                if fault.mode == "raise":
                    raise FaultInjected(f"injected fault in {original.__name__}")
                return fault.corrupt_roots(roots)

            return corrupted

        def _wrap_batch(
            original: "Callable[..., np.ndarray]",
        ) -> "Callable[..., np.ndarray]":
            def corrupted(coefficients: np.ndarray) -> np.ndarray:
                roots = original(coefficients)
                if not fault.fires():
                    return roots
                if fault.mode == "raise":
                    raise FaultInjected("injected fault in solve_quartic_real_batch")
                if fault.mode == "nan":
                    return np.where(np.isnan(roots), roots, np.nan)
                if fault.mode == "overflow":
                    return np.where(np.isnan(roots), roots, np.inf)
                return roots * (1.0 + fault.magnitude)

            return corrupted

        try:
            _quartic.solve_quartic_real = _wrap_solver(originals["solve_quartic_real"])
            _quartic.solve_quartic_real_closed = _wrap_solver(
                originals["solve_quartic_real_closed"]
            )
            _quartic.solve_quartic_real_batch = _wrap_batch(
                originals["solve_quartic_real_batch"]
            )
            yield fault
        finally:
            for name, original in originals.items():
                setattr(_quartic, name, original)
    elif seam == "frame":
        original_reduce = FocalFrame.reduce

        def corrupted_reduce(
            self: FocalFrame, point: "Sequence[float] | np.ndarray"
        ) -> "tuple[float, float]":
            pair = original_reduce(self, point)
            if not fault.fires():
                return pair
            if fault.mode == "raise":
                raise FaultInjected("injected fault in FocalFrame.reduce")
            return fault.corrupt_pair(pair)

        try:
            FocalFrame.reduce = corrupted_reduce
            yield fault
        finally:
            FocalFrame.reduce = original_reduce
    else:  # seam == "distance"
        original_dist = _distance.dist

        def corrupted_dist(
            p: "Sequence[float] | np.ndarray", q: "Sequence[float] | np.ndarray"
        ) -> float:
            value = original_dist(p, q)
            if not fault.fires():
                return value
            if fault.mode == "raise":
                raise FaultInjected("injected fault in dist")
            return fault.corrupt_scalar(value)

        try:
            _distance.dist = corrupted_dist
            yield fault
        finally:
            _distance.dist = original_dist
