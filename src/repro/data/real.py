"""Surrogates for the paper's four real datasets.

The paper evaluates on NBA (17,265 x 17 career statistics), Color
(68,040 x 9 Corel image features), Texture (68,040 x 16 Corel image
features) and Forest (82,012 x 10 USFS RIS attributes).  None of those
files ship with this reproduction (see DESIGN.md Section 3), so this
module synthesises *statistical surrogates* with:

- the exact cardinality and dimensionality of the originals;
- realistic per-column marginals (skewed non-negative counts for NBA,
  bounded [0, 1] feature mixtures for Color/Texture, mixed-scale
  terrain columns for Forest);
- cluster structure (a mixture of Gaussians per dataset), since index
  behaviour on i.i.d. noise would be unrealistically uniform.

Every surrogate is a deterministic function of its name (fixed seeds).
If a genuine file is available, drop ``<name>.npy`` (an ``(n, d)``
float array) into a directory and pass ``data_dir`` — the loader then
prefers it, so experiments can be re-run against the true data without
code changes.

As in the paper, a dataset of *points* becomes a dataset of
*hyperspheres* by drawing each radius from ``N(mu, mu/4)``
(:func:`repro.data.synthetic.attach_radii`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.synthetic import Dataset, attach_radii
from repro.exceptions import DatasetError

__all__ = [
    "RealDatasetSpec",
    "REAL_DATASET_SPECS",
    "real_dataset",
    "real_points",
    "relative_mu",
]


@dataclass(frozen=True)
class RealDatasetSpec:
    """Shape and marginal profile of one of the paper's real datasets."""

    name: str
    size: int
    dimension: int
    profile: str  # "counts" | "features" | "terrain"
    seed: int


REAL_DATASET_SPECS: dict[str, RealDatasetSpec] = {
    "nba": RealDatasetSpec("nba", 17_265, 17, "counts", seed=0xBA),
    "color": RealDatasetSpec("color", 68_040, 9, "features", seed=0xC0),
    "texture": RealDatasetSpec("texture", 68_040, 16, "features", seed=0x7E),
    "forest": RealDatasetSpec("forest", 82_012, 10, "terrain", seed=0xF0),
}


def _mixture_assignments(
    rng: np.random.Generator, n: int, n_clusters: int
) -> np.ndarray:
    weights = rng.dirichlet(np.full(n_clusters, 2.0))
    return rng.choice(n_clusters, size=n, p=weights)


def _counts_profile(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    """Skewed, correlated, non-negative columns (career statistics)."""
    n_clusters = 6
    assignment = _mixture_assignments(rng, n, n_clusters)
    scales = rng.uniform(5.0, 400.0, size=d)  # per-stat magnitudes
    cluster_level = rng.lognormal(mean=0.0, sigma=0.6, size=(n_clusters, d))
    base = cluster_level[assignment] * scales
    # A shared "career length" factor correlates all columns of a row.
    career = rng.gamma(shape=2.0, scale=0.5, size=(n, 1))
    noise = rng.lognormal(mean=0.0, sigma=0.35, size=(n, d))
    return base * career * noise


def _features_profile(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    """Bounded [0, 1] image-feature-like mixtures (Corel histograms)."""
    n_clusters = 10
    assignment = _mixture_assignments(rng, n, n_clusters)
    means = rng.beta(2.0, 5.0, size=(n_clusters, d))
    spreads = rng.uniform(0.02, 0.12, size=(n_clusters, d))
    values = rng.normal(means[assignment], spreads[assignment])
    return np.clip(values, 0.0, 1.0)


def _terrain_profile(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    """Mixed-scale cartographic columns (the Forest RIS attributes)."""
    n_clusters = 4
    assignment = _mixture_assignments(rng, n, n_clusters)
    columns = []
    # Elevation-like column: metres, clustered.
    elevation_centers = rng.uniform(1800.0, 3600.0, n_clusters)
    columns.append(elevation_centers[assignment] + rng.normal(0.0, 150.0, n))
    # Aspect-like column: degrees.
    columns.append(rng.uniform(0.0, 360.0, n))
    # Slope-like column.
    columns.append(rng.gamma(shape=2.5, scale=6.0, size=n))
    # Remaining columns: distances / hillshade indices at varied scales.
    for i in range(d - 3):
        scale = rng.uniform(50.0, 2000.0)
        center = rng.uniform(0.0, scale, n_clusters)
        columns.append(
            np.abs(center[assignment] + rng.normal(0.0, scale / 6.0, n))
        )
    return np.stack(columns, axis=1)


_PROFILES = {
    "counts": _counts_profile,
    "features": _features_profile,
    "terrain": _terrain_profile,
}


def real_points(
    name: str,
    *,
    data_dir: "str | Path | None" = None,
    size: int | None = None,
) -> np.ndarray:
    """The point cloud of a real dataset (genuine file or surrogate).

    Parameters
    ----------
    name:
        One of ``"nba"``, ``"color"``, ``"texture"``, ``"forest"``.
    data_dir:
        Directory searched for a genuine ``<name>.npy`` file.
    size:
        Optional truncation (a seeded shuffle then the first *size*
        rows) so tests and benchmarks can run on small slices.
    """
    try:
        spec = REAL_DATASET_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(REAL_DATASET_SPECS))
        raise DatasetError(f"unknown real dataset {name!r}; known: {known}") from None

    points: np.ndarray | None = None
    if data_dir is not None:
        candidate = Path(data_dir) / f"{name}.npy"
        if candidate.exists():
            points = np.load(candidate)
            if points.ndim != 2 or points.shape[1] != spec.dimension:
                raise DatasetError(
                    f"{candidate} has shape {points.shape}, expected "
                    f"(*, {spec.dimension})"
                )
    if points is None:
        rng = np.random.default_rng(spec.seed)
        points = _PROFILES[spec.profile](rng, spec.size, spec.dimension)

    if size is not None:
        if size > points.shape[0]:
            raise DatasetError(
                f"requested {size} rows but {name} has {points.shape[0]}"
            )
        shuffle = np.random.default_rng(spec.seed + 1).permutation(points.shape[0])
        points = points[shuffle[:size]]
    return np.asarray(points, dtype=np.float64)


REFERENCE_SPREAD = 25.0  # the synthetic generator's coordinate std-dev


def relative_mu(points: np.ndarray, mu: float) -> float:
    """Rescale the paper's mu to a dataset's own coordinate spread.

    The paper's mu values (5-100) are calibrated to its synthetic space
    (coordinate std-dev 25): mu = 10 means "radii around 40% of one
    standard deviation".  Real datasets have wildly different numeric
    ranges (Corel features live in [0, 1]; NBA career counts in the
    hundreds), so the same *absolute* mu would either vanish or swallow
    the whole space.  Scaling by ``std / 25`` preserves the sweep's
    semantics — from "small uncertainty" to "huge uncertainty" — on any
    dataset.  (Experiments document this interpretation; pass an
    absolute ``mu`` to :func:`real_dataset` to bypass it.)
    """
    spread = float(np.std(points))
    if spread == 0.0:
        return mu
    return mu * spread / REFERENCE_SPREAD


def real_dataset(
    name: str,
    *,
    mu: float = 10.0,
    sigma: float | None = None,
    relative_radii: bool = False,
    seed: int | None = None,
    data_dir: "str | Path | None" = None,
    size: int | None = None,
) -> Dataset:
    """A real dataset as hyperspheres, radii drawn from ``N(mu, mu/4)``.

    With ``relative_radii=True`` the requested *mu* is first rescaled to
    the dataset's coordinate spread (see :func:`relative_mu`) — the mode
    the experiment runners use so one mu sweep is meaningful across all
    four datasets.
    """
    points = real_points(name, data_dir=data_dir, size=size)
    if relative_radii:
        mu = relative_mu(points, mu)
    spec = REAL_DATASET_SPECS[name]
    rng = np.random.default_rng(spec.seed + 2 if seed is None else seed)
    return attach_radii(
        points, mu=mu, sigma=sigma, rng=rng, name=f"{name}(mu={mu:.3g})"
    )
