"""Workload builders for the experiments.

Section 7.1 of the paper evaluates each dominance criterion on "a
workload containing 10,000 random queries each involving three
hyperspheres Sa, Sb and Sq selected from the dataset randomly".
:class:`DominanceWorkload` materialises such a workload in
struct-of-arrays form so both the scalar criteria (looping) and the
vectorised batch kernels can consume it.

Section 7.2 runs kNN queries; :func:`knn_queries` draws query
hyperspheres from the dataset the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.synthetic import Dataset
from repro.exceptions import DatasetError
from repro.geometry.hypersphere import Hypersphere

__all__ = ["DominanceWorkload", "knn_queries"]

DEFAULT_WORKLOAD_SIZE = 10_000


@dataclass
class DominanceWorkload:
    """``n`` random ``(Sa, Sb, Sq)`` triples in struct-of-arrays form."""

    ca: np.ndarray
    cb: np.ndarray
    cq: np.ndarray
    ra: np.ndarray
    rb: np.ndarray
    rq: np.ndarray

    def __len__(self) -> int:
        return self.ca.shape[0]

    @property
    def dimension(self) -> int:
        """Dimensionality d of the workload's hyperspheres."""
        return self.ca.shape[1]

    @classmethod
    def from_dataset(
        cls,
        dataset: Dataset,
        *,
        size: int = DEFAULT_WORKLOAD_SIZE,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
    ) -> "DominanceWorkload":
        """Draw *size* random triples from *dataset* (with replacement)."""
        if len(dataset) < 3:
            raise DatasetError("need at least 3 hyperspheres to form triples")
        if rng is None:
            rng = np.random.default_rng(seed)
        picks = rng.integers(0, len(dataset), size=(size, 3))
        ia, ib, iq = picks[:, 0], picks[:, 1], picks[:, 2]
        return cls(
            ca=dataset.centers[ia],
            cb=dataset.centers[ib],
            cq=dataset.centers[iq],
            ra=dataset.radii[ia],
            rb=dataset.radii[ib],
            rq=dataset.radii[iq],
        )

    def triples(self) -> Iterator[tuple[Hypersphere, Hypersphere, Hypersphere]]:
        """The workload as hypersphere objects, for the scalar criteria."""
        for i in range(len(self)):
            yield (
                Hypersphere(self.ca[i], float(self.ra[i])),
                Hypersphere(self.cb[i], float(self.rb[i])),
                Hypersphere(self.cq[i], float(self.rq[i])),
            )

    def arrays(self) -> tuple[np.ndarray, ...]:
        """The workload as the batch-kernel argument tuple."""
        return self.ca, self.cb, self.cq, self.ra, self.rb, self.rq


def knn_queries(
    dataset: Dataset,
    *,
    count: int,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> list[Hypersphere]:
    """*count* kNN query hyperspheres drawn from *dataset*."""
    if rng is None:
        rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(dataset), size=count)
    return [dataset.sphere(int(i)) for i in picks]
