"""Dataset persistence: save/load hypersphere datasets as ``.npz``.

The experiment harness regenerates datasets from seeds, but downstream
users of the library typically have *their* hyperspheres on disk.  This
module fixes a tiny, stable on-disk contract:

- ``centers`` — float64 array of shape ``(n, d)``;
- ``radii``   — float64 array of shape ``(n,)``, non-negative;
- ``name``    — the dataset's display name.

NumPy's ``.npz`` keeps this dependency-free and memory-mappable.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.synthetic import Dataset
from repro.exceptions import DatasetError

__all__ = ["save_dataset", "load_dataset"]


def save_dataset(dataset: Dataset, path: "str | Path") -> Path:
    """Write *dataset* to *path* (``.npz`` appended if missing).

    Returns the path actually written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        centers=dataset.centers,
        radii=dataset.radii,
        name=np.array(dataset.name),
    )
    return path


def load_dataset(path: "str | Path") -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no dataset file at {path}")
    with np.load(path, allow_pickle=False) as payload:
        try:
            centers = payload["centers"]
            radii = payload["radii"]
        except KeyError as missing:
            raise DatasetError(
                f"{path} is not a repro dataset (missing array {missing})"
            ) from None
        name = str(payload["name"]) if "name" in payload else path.stem
    return Dataset(name=name, centers=centers, radii=radii)
