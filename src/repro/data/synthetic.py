"""Synthetic hypersphere datasets (Section 7 of the paper).

The paper generates a synthetic dataset of ``N`` hyperspheres in d
dimensions by:

1. sampling each center coordinate from a Gaussian with mean 100 and
   standard deviation 25;
2. sampling each radius from ``N(mu, sigma)`` with ``sigma = mu / 4``
   by default (``mu`` is the studied "average radius" parameter).

Figure 12 additionally crosses Gaussian and Uniform distributions for
both coordinates and radii, with Uniform ranges ``[0, 200]``; the
``center_distribution`` / ``radius_distribution`` arguments cover all
four combinations (G-G, G-U, U-G, U-U).

Radii are clipped at zero: the paper requires non-negative radii and a
Gaussian tail can dip below zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.exceptions import DatasetError
from repro.geometry.hypersphere import Hypersphere

__all__ = ["Dataset", "synthetic_dataset", "attach_radii"]

CENTER_MEAN = 100.0
CENTER_STD = 25.0
UNIFORM_RANGE = (0.0, 200.0)


@dataclass
class Dataset:
    """A named collection of hyperspheres in struct-of-arrays form."""

    name: str
    centers: np.ndarray  # (n, d)
    radii: np.ndarray  # (n,)

    def __post_init__(self) -> None:
        self.centers = np.asarray(self.centers, dtype=np.float64)
        self.radii = np.asarray(self.radii, dtype=np.float64)
        if self.centers.ndim != 2:
            raise DatasetError("centers must be an (n, d) array")
        if self.radii.shape != (self.centers.shape[0],):
            raise DatasetError("radii must be an (n,) array matching centers")
        if np.any(self.radii < 0.0):
            raise DatasetError("radii must be non-negative")

    def __len__(self) -> int:
        return self.centers.shape[0]

    @property
    def dimension(self) -> int:
        """Dimensionality d of the hyperspheres."""
        return self.centers.shape[1]

    def sphere(self, i: int) -> Hypersphere:
        """The i-th hypersphere as an object."""
        return Hypersphere(self.centers[i], float(self.radii[i]))

    def items(self) -> Iterator[tuple[int, Hypersphere]]:
        """Keyed hyperspheres, ready for index construction."""
        for i in range(len(self)):
            yield i, self.sphere(i)

    def subset(self, size: int, *, rng: np.random.Generator) -> "Dataset":
        """A uniform random sample (without replacement) of *size* items."""
        if size > len(self):
            raise DatasetError(
                f"cannot sample {size} items from {len(self)}"
            )
        chosen = rng.choice(len(self), size=size, replace=False)
        return Dataset(
            name=f"{self.name}[{size}]",
            centers=self.centers[chosen],
            radii=self.radii[chosen],
        )


def _sample(
    distribution: str,
    rng: np.random.Generator,
    size: "int | tuple[int, ...]",
    *,
    mean: float,
    std: float,
) -> np.ndarray:
    if distribution == "gaussian":
        return rng.normal(mean, std, size)
    if distribution == "uniform":
        lo, hi = UNIFORM_RANGE
        return rng.uniform(lo, hi, size)
    raise DatasetError(
        f"unknown distribution {distribution!r}; use 'gaussian' or 'uniform'"
    )


def attach_radii(
    centers: np.ndarray,
    *,
    mu: float,
    sigma: float | None = None,
    rng: np.random.Generator,
    distribution: str = "gaussian",
    name: str = "dataset",
) -> Dataset:
    """Turn a point cloud into hyperspheres with ``N(mu, sigma)`` radii.

    This is the paper's shared recipe for both real and synthetic data:
    every point becomes a center and its radius is drawn from a Gaussian
    with mean *mu* and standard deviation *sigma* (``mu / 4`` when
    omitted), clipped at zero.
    """
    centers = np.asarray(centers, dtype=np.float64)
    if mu < 0.0:
        raise DatasetError(f"mu must be non-negative, got {mu}")
    if sigma is None:
        sigma = mu / 4.0
    radii = _sample(
        distribution, rng, centers.shape[0], mean=mu, std=sigma
    )
    return Dataset(name=name, centers=centers, radii=np.maximum(radii, 0.0))


def synthetic_dataset(
    n: int,
    dimension: int,
    *,
    mu: float = 10.0,
    sigma: float | None = None,
    center_distribution: str = "gaussian",
    radius_distribution: str = "gaussian",
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> Dataset:
    """Generate a Section-7 synthetic dataset.

    Parameters
    ----------
    n:
        Number of hyperspheres (the paper sweeps 20k–180k).
    dimension:
        Dimensionality d (the paper sweeps 2–10, and 25–100 in Fig. 11).
    mu, sigma:
        Radius distribution parameters; ``sigma`` defaults to ``mu/4``.
    center_distribution, radius_distribution:
        ``"gaussian"`` or ``"uniform"`` — the Figure 12 grid.
    seed, rng:
        Reproducibility controls; pass exactly one of them (or neither
        for nondeterministic output).
    """
    if n < 1:
        raise DatasetError(f"n must be positive, got {n}")
    if dimension < 1:
        raise DatasetError(f"dimension must be positive, got {dimension}")
    if rng is None:
        rng = np.random.default_rng(seed)
    elif seed is not None:
        raise DatasetError("pass either seed or rng, not both")
    centers = _sample(
        center_distribution,
        rng,
        (n, dimension),
        mean=CENTER_MEAN,
        std=CENTER_STD,
    )
    label = {
        ("gaussian", "gaussian"): "G-G",
        ("gaussian", "uniform"): "G-U",
        ("uniform", "gaussian"): "U-G",
        ("uniform", "uniform"): "U-U",
    }[(center_distribution, radius_distribution)]
    return attach_radii(
        centers,
        mu=mu,
        sigma=sigma,
        rng=rng,
        distribution=radius_distribution,
        name=f"synthetic-{label}(n={n}, d={dimension}, mu={mu:g})",
    )
