"""Datasets: the paper's synthetic generators and real-data surrogates.

- :mod:`repro.data.synthetic` — Section 7's generators (Gaussian
  centers N(100, 25), radii N(mu, mu/4), and the Uniform [0, 200]
  variants used in Figure 12).
- :mod:`repro.data.real` — seeded surrogates for the four real datasets
  (NBA, Color, Texture, Forest) with matching cardinality and
  dimensionality; genuine files are loaded instead when present (see
  DESIGN.md Section 3 for the substitution rationale).
- :mod:`repro.data.workload` — the 10,000-random-triple dominance
  workloads and kNN query workloads the experiments consume.
"""

from repro.data.io import load_dataset, save_dataset
from repro.data.synthetic import Dataset, synthetic_dataset
from repro.data.real import REAL_DATASET_SPECS, real_dataset
from repro.data.workload import DominanceWorkload, knn_queries

__all__ = [
    "Dataset",
    "synthetic_dataset",
    "real_dataset",
    "REAL_DATASET_SPECS",
    "DominanceWorkload",
    "knn_queries",
    "save_dataset",
    "load_dataset",
]
