"""repro — a reproduction of "Hypersphere Dominance: An Optimal Approach".

Long, Wong, Zhang and Xie (SIGMOD 2014) study the *spatial dominance*
predicate on hyperspheres — does every point of ``Sa`` lie strictly
closer than every point of ``Sb`` to every point of a query sphere
``Sq``? — and give the first decision procedure (**Hyperbola**) that is
simultaneously correct, sound and O(d).

This package implements the paper end to end:

- :mod:`repro.geometry` — hyperspheres, bounding rectangles, the focal
  frame transform and the quartic solver;
- :mod:`repro.core` — the Hyperbola decision plus the four baseline
  criteria (MinMax, MBR, GP, Trigonometric), a numerical ground-truth
  oracle and vectorised batch kernels;
- :mod:`repro.robust` — certified tri-state decisions through an
  adaptive-precision escalation ladder (float64 → extended → exact
  rational arithmetic) plus a deterministic fault-injection harness;
- :mod:`repro.index` — an SS-tree built from scratch;
- :mod:`repro.queries` — the paper's kNN query (Definition 2) with DF
  and HS traversals, and a reverse-NN extension;
- :mod:`repro.data` — the paper's synthetic generators and surrogates
  for its four real datasets;
- :mod:`repro.experiments` — runners that regenerate every table and
  figure of the evaluation section.

Quickstart
----------
>>> from repro import Hypersphere, dominates
>>> sa = Hypersphere([0.0, 0.0], 1.0)
>>> sb = Hypersphere([10.0, 0.0], 1.0)
>>> sq = Hypersphere([-3.0, 0.0], 0.5)
>>> dominates(sa, sb, sq)
True
"""

from repro.core import (
    DominanceCriterion,
    available_criteria,
    dominates,
    get_criterion,
)
from repro.geometry import Hyperrectangle, Hypersphere

# Imported after repro.core so the "verified" criterion (which builds on
# the core classes) registers itself whenever the package is used; the
# robust package must never be imported from repro.core itself or the
# two would form an import cycle.
from repro.robust import Decision, Verdict, VerifiedHyperbola

__version__ = "1.0.0"

__all__ = [
    "Hypersphere",
    "Hyperrectangle",
    "DominanceCriterion",
    "dominates",
    "get_criterion",
    "available_criteria",
    "Decision",
    "Verdict",
    "VerifiedHyperbola",
    "__version__",
]
