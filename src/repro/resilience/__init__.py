"""Deadline-aware execution and graceful degradation for query serving.

A production deployment of the paper's dominance operator cannot let a
slow quartic cascade take a whole query down: under pressure it must
*trade optimality for certified conservatism* instead of failing.  The
paper's own criteria hierarchy provides the ladder — the optimal
Hyperbola criterion (Section 4) degrades to the cheap-but-conservative
MinMax tier (Section 2.2, Lemma 2: correct, so pruning stays safe) —
and the tri-state :class:`~repro.robust.decision.Verdict` vocabulary
already expresses "certified but not optimal".

This package supplies the execution layer around that ladder:

- :class:`~repro.resilience.budget.Budget` — a wall-clock deadline plus
  candidate/escalation quotas, propagated through a :mod:`contextvars`
  variable exactly like the :mod:`repro.obs` registry, and checked at
  the index-traversal and criterion-escalation seams;
- :func:`~repro.resilience.budget.scope` /
  :func:`~repro.resilience.budget.current` — activate a budget for a
  block of code / read the active one;
- :class:`~repro.resilience.partial.PartialResult` — the envelope a
  budgeted query returns instead of raising: the (possibly partial)
  answer plus a :class:`~repro.resilience.partial.ResilienceReport`
  carrying completeness, the achieved guarantee tier and the number of
  uncertain decisions.

See ``docs/resilience.md`` for the degradation ladder and the chaos
matrix that certifies it.
"""

from repro.resilience.budget import Budget, current, scope
from repro.resilience.partial import (
    GuaranteeTier,
    PartialResult,
    ResilienceReport,
    to_jsonable,
)

__all__ = [
    "Budget",
    "current",
    "scope",
    "GuaranteeTier",
    "PartialResult",
    "ResilienceReport",
    "to_jsonable",
]
