"""The :class:`PartialResult` envelope and its degradation vocabulary.

A budgeted query never raises on exhaustion and never silently lies; it
returns a :class:`PartialResult` wrapping the (possibly partial) answer
together with a :class:`ResilienceReport` stating exactly which
guarantees survived:

- ``complete`` — whether the algorithm ran to completion.  ``False``
  means work was cut short (deadline, quota, or a failed index node),
  so answers from the unvisited region may be missing.
- ``tier`` — the :class:`GuaranteeTier` actually achieved.  ``OPTIMAL``
  means every decision used the configured criterion; ``CONSERVATIVE``
  means some decisions fell back to the cheap-but-correct MinMax/MBR
  tier (Section 2.2 of the paper) or to an UNCERTAIN verdict's
  conservative fallback — pruning stayed safe, so the answer over the
  visited region is a *superset* of the optimal one.
- ``uncertain`` — certified decisions that came back UNCERTAIN and
  collapsed to their conservative fallback.
- ``absorbed_faults`` — corrupted intermediate values (non-finite
  bounds, raising kernels) the query layer detected and absorbed by
  refusing to prune.

The invariant the chaos suite (``tests/test_chaos.py``) enforces: a
result whose report is not :attr:`ResilienceReport.degraded` equals the
fault-free answer exactly; any deviation must be accompanied by a
degradation flag.  Faults change *what is reported*, never silently
*what is true*.

:class:`PartialResult` forwards attribute access, iteration, length and
membership to the wrapped value, so most call sites written against the
raw answer keep working unchanged when a budget is activated around
them.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["GuaranteeTier", "ResilienceReport", "PartialResult", "to_jsonable"]


class GuaranteeTier(enum.Enum):
    """Which rung of the criteria hierarchy an answer was served from."""

    #: Every decision used the configured (typically optimal) criterion.
    OPTIMAL = "optimal"
    #: Some decisions degraded to a conservative, correct criterion
    #: (MinMax tier) or to an UNCERTAIN verdict's safe fallback.
    CONSERVATIVE = "conservative"


@dataclass
class ResilienceReport:
    """What actually happened to one budgeted query."""

    complete: bool = True
    tier: GuaranteeTier = GuaranteeTier.OPTIMAL
    #: Why work stopped early: ``"deadline"``, ``"candidates"``,
    #: ``"escalations"``, ``"clock"``, or ``None`` when it did not.
    exhausted: "str | None" = None
    #: Certified decisions that collapsed to a conservative fallback.
    uncertain: int = 0
    #: Corrupted intermediates detected and absorbed without pruning.
    absorbed_faults: int = 0
    #: Free-form notes for operators (one short string per event class).
    notes: "list[str]" = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Whether any guarantee was weakened relative to a clean run."""
        return (
            not self.complete
            or self.tier is not GuaranteeTier.OPTIMAL
            or self.uncertain > 0
            or self.absorbed_faults > 0
        )

    def mark_incomplete(self, reason: str) -> None:
        """Record an early stop (first reason wins) and drop the tier."""
        self.complete = False
        if self.exhausted is None:
            self.exhausted = reason
        self.tier = GuaranteeTier.CONSERVATIVE

    def mark_conservative(self, note: "str | None" = None) -> None:
        """Record a degradation to the conservative criterion tier."""
        self.tier = GuaranteeTier.CONSERVATIVE
        if note is not None and note not in self.notes:
            self.notes.append(note)

    def to_dict(self) -> dict:
        """A JSON-friendly form (for CLI output and experiment rows)."""
        return {
            "complete": self.complete,
            "tier": self.tier.value,
            "exhausted": self.exhausted,
            "uncertain": self.uncertain,
            "absorbed_faults": self.absorbed_faults,
            "degraded": self.degraded,
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: "dict[str, Any]") -> "ResilienceReport":
        """Rebuild a report from :meth:`to_dict` output (JSON round-trip).

        The derived ``degraded`` key is ignored: it is recomputed from
        the restored fields, so a hand-edited payload cannot claim a
        clean run while carrying degradation markers.
        """
        exhausted = payload.get("exhausted")
        return cls(
            complete=bool(payload.get("complete", True)),
            tier=GuaranteeTier(payload.get("tier", GuaranteeTier.OPTIMAL.value)),
            exhausted=None if exhausted is None else str(exhausted),
            uncertain=int(payload.get("uncertain", 0)),
            absorbed_faults=int(payload.get("absorbed_faults", 0)),
            notes=[str(note) for note in payload.get("notes", [])],
        )


def to_jsonable(value: Any) -> Any:
    """Map a query answer onto JSON-serialisable primitives, duck-typed.

    The serialisation ladder, most specific first: an object with a
    ``to_dict()`` method uses it; a dataclass (e.g.
    :class:`~repro.queries.dominating.DominanceScore`) is converted
    field by field; lists/tuples/sets recurse elementwise; JSON scalars
    pass through; anything else (NumPy scalars included) collapses to
    ``float`` when numeric and ``str`` otherwise.  This is the one
    shared path the CLI ``--json`` output and the HTTP 206 body go
    through instead of picking attributes ad hoc per call site.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return to_jsonable(to_dict())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    try:
        return float(value)  # NumPy scalars and other number-likes
    except (TypeError, ValueError):
        return str(value)


class PartialResult:
    """A query answer plus the :class:`ResilienceReport` describing it.

    The wrapped ``value`` is whatever the unbudgeted query would have
    returned (a :class:`~repro.queries.knn.KNNResult`, a list of keys,
    a list of scores, ...).  Unknown attributes, iteration, ``len`` and
    ``in`` are forwarded to it.
    """

    __slots__ = ("value", "report")

    def __init__(self, value: Any, report: ResilienceReport) -> None:
        self.value = value
        self.report = report

    # Convenience passthroughs ----------------------------------------
    def __getattr__(self, name: str) -> Any:
        # __getattr__ only fires for names not found on PartialResult
        # itself, so .value / .report always win.
        return getattr(self.value, name)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.value)

    def __len__(self) -> int:
        return len(self.value)

    def __contains__(self, item: Any) -> bool:
        return item in self.value

    @property
    def complete(self) -> bool:
        """Shorthand for ``report.complete``."""
        return self.report.complete

    @property
    def degraded(self) -> bool:
        """Shorthand for ``report.degraded``."""
        return self.report.degraded

    @property
    def tier(self) -> GuaranteeTier:
        """Shorthand for ``report.tier``."""
        return self.report.tier

    def to_dict(self) -> "dict[str, Any]":
        """A JSON-friendly form: the serialised value plus the report.

        Everything the :class:`ResilienceReport` states survives a JSON
        round-trip verbatim (``report`` is exactly
        :meth:`ResilienceReport.to_dict`); the wrapped value goes
        through :func:`to_jsonable`.  This is what the CLI ``--json``
        path and the HTTP 206 response body serialise.
        """
        return {
            "value": to_jsonable(self.value),
            "report": self.report.to_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"PartialResult(complete={self.report.complete}, "
            f"tier={self.report.tier.value}, "
            f"exhausted={self.report.exhausted!r}, "
            f"uncertain={self.report.uncertain}, "
            f"absorbed_faults={self.report.absorbed_faults}, "
            f"value={self.value!r})"
        )
