"""The :class:`Budget`: wall-clock deadline plus work quotas.

A budget bounds one query's spend along three axes:

- ``deadline_s`` — wall-clock seconds from :meth:`Budget.start`;
- ``max_candidates`` — entries a traversal may consider;
- ``max_escalations`` — precision-ladder escalations (stages beyond the
  first) the certified criterion may attempt.

The query layer charges the budget at its seams
(:meth:`Budget.charge_candidate` per entry considered,
:meth:`Budget.charge_node` per index node visited,
:meth:`Budget.charge_escalation` per ladder escalation) and switches to
its conservative degradation path as soon as any charge reports
exhaustion.  Exhaustion is *sticky*: once a reason is recorded every
later charge reports it immediately without touching the clock.

Clock reads go through the module attribute :data:`_monotonic` so the
fault-injection harness (:mod:`repro.robust.faults`, seam ``"clock"``)
can skew or break them.  A broken clock — a non-finite reading or a
raising call — can never produce a *wrong* answer: the probe collapses
to "exhausted" (reason ``"clock"``), the conservative direction, and is
tallied on the ``resilience.clock_faults`` counter.

Budgets propagate through a :mod:`contextvars` variable, mirroring the
:mod:`repro.obs` registry: :func:`scope` activates a budget for the
current context, :func:`current` reads the active one (``None`` by
default, which is what unbudgeted hot paths check — one contextvar read
per query, nothing per node).
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro import obs
from repro.exceptions import ValidationError
from repro.obs import names

__all__ = ["Budget", "current", "scope"]

# Clock indirection: the "clock" fault seam patches this attribute.
_monotonic = time.monotonic

#: How many candidate charges pass between deadline probes.  Probing the
#: clock on every entry would dominate the cheap vectorised scans; every
#: 16th keeps the worst-case overshoot far below any realistic deadline.
_PROBE_STRIDE = 16


class Budget:
    """A per-query execution budget (deadline + work quotas).

    Parameters
    ----------
    deadline_s:
        Wall-clock seconds allowed from :meth:`start` (``None`` — no
        deadline).
    max_candidates:
        Entries a traversal may consider (``None`` — unlimited).
    max_escalations:
        Precision-ladder escalations the certified criterion may spend
        (``None`` — unlimited).

    Examples
    --------
    >>> budget = Budget(max_candidates=2)
    >>> budget.start()
    Budget(max_candidates=2)
    >>> budget.charge_candidate(), budget.charge_candidate()
    (None, None)
    >>> budget.charge_candidate()
    'candidates'
    """

    __slots__ = (
        "deadline_s",
        "max_candidates",
        "max_escalations",
        "_deadline_at",
        "_candidates",
        "_escalations",
        "_since_probe",
        "_exhausted",
    )

    def __init__(
        self,
        deadline_s: "float | None" = None,
        max_candidates: "int | None" = None,
        max_escalations: "int | None" = None,
    ) -> None:
        if deadline_s is not None and not (
            math.isfinite(deadline_s) and deadline_s >= 0.0
        ):
            raise ValidationError(
                f"deadline_s must be a finite non-negative number, got {deadline_s!r}"
            )
        if max_candidates is not None and max_candidates < 0:
            raise ValidationError(
                f"max_candidates must be non-negative, got {max_candidates!r}"
            )
        if max_escalations is not None and max_escalations < 0:
            raise ValidationError(
                f"max_escalations must be non-negative, got {max_escalations!r}"
            )
        self.deadline_s = deadline_s
        self.max_candidates = max_candidates
        self.max_escalations = max_escalations
        self._deadline_at: "float | None" = None
        self._candidates = 0
        self._escalations = 0
        self._since_probe = 0
        self._exhausted: "str | None" = None

    @classmethod
    def from_deadline_ms(cls, deadline_ms: float) -> "Budget":
        """A pure wall-clock budget (the CLI's ``--deadline-ms``)."""
        return cls(deadline_s=deadline_ms / 1000.0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Budget":
        """Anchor the deadline at the current clock reading.

        Idempotent: restarting an already started budget is a no-op, so
        a budget shared by several query calls spans them jointly.
        """
        if self.deadline_s is not None and self._deadline_at is None:
            now = self._read_clock()
            if now is not None:
                self._deadline_at = now + self.deadline_s
        return self

    @property
    def started(self) -> bool:
        """Whether the deadline anchor has been set (or none is needed)."""
        return self.deadline_s is None or self._deadline_at is not None

    def remaining_s(self) -> "float | None":
        """Wall-clock seconds left before the deadline, clamped at zero.

        ``None`` means no deadline is configured (an unbounded budget).
        A broken clock reads as ``0.0`` — the conservative answer: a
        caller sizing a per-attempt timeout from this (the supervisor's
        failover dispatch does) then fails fast instead of waiting on a
        deadline nobody can measure.  Starts the budget on first use,
        mirroring :meth:`charge_node`'s lazy anchor.
        """
        if self.deadline_s is None:
            return None
        if self._deadline_at is None:
            self.start()
            if self._deadline_at is None:  # clock broken during start
                return 0.0
        now = self._read_clock()
        if now is None:
            return 0.0
        return max(self._deadline_at - now, 0.0)

    @property
    def candidates_charged(self) -> int:
        """Entries charged so far via :meth:`charge_candidate`."""
        return self._candidates

    @property
    def escalations_charged(self) -> int:
        """Ladder escalations charged so far."""
        return self._escalations

    # ------------------------------------------------------------------
    # Charging seams
    # ------------------------------------------------------------------
    def exhausted(self) -> "str | None":
        """The sticky exhaustion reason, without touching the clock."""
        return self._exhausted

    def charge_node(self) -> "str | None":
        """Charge one index-node visit; returns the exhaustion reason.

        Node visits are bounded by the deadline only (quotas meter
        entries and escalations), so this probes the clock directly.
        """
        if self._exhausted is not None:
            return self._exhausted
        return self._probe_deadline()

    def charge_candidate(self, amount: int = 1) -> "str | None":
        """Charge *amount* candidate entries; returns the exhaustion reason."""
        if self._exhausted is not None:
            return self._exhausted
        self._candidates += amount
        if (
            self.max_candidates is not None
            and self._candidates > self.max_candidates
        ):
            return self._exhaust("candidates")
        self._since_probe += amount
        if self._since_probe >= _PROBE_STRIDE:
            self._since_probe = 0
            return self._probe_deadline()
        return None

    def charge_escalation(self) -> "str | None":
        """Charge one ladder escalation; returns the exhaustion reason."""
        if self._exhausted is not None:
            return self._exhausted
        self._escalations += 1
        if (
            self.max_escalations is not None
            and self._escalations > self.max_escalations
        ):
            return self._exhaust("escalations")
        return self._probe_deadline()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _read_clock(self) -> "float | None":
        """One guarded clock read; ``None`` means the clock is broken."""
        try:
            now = float(_monotonic())
        except ArithmeticError:
            self._clock_fault()
            return None
        if not math.isfinite(now):
            # A skewed reading cannot be reasoned about; collapsing to
            # "broken" degrades conservatively instead of silently
            # disarming (nan) or never arming (-inf) the deadline.
            self._clock_fault()
            return None
        return now

    def _clock_fault(self) -> None:
        if obs.ENABLED:
            obs.incr(names.RESILIENCE_CLOCK_FAULTS)
        self._exhaust("clock")

    def _probe_deadline(self) -> "str | None":
        if self.deadline_s is None:
            return None
        if self._deadline_at is None:
            self.start()
            if self._exhausted is not None:  # clock broke during start
                return self._exhausted
            if self._deadline_at is None:  # still unset: clock broken
                return self._exhausted
        now = self._read_clock()
        if now is None:
            return self._exhausted
        if now >= self._deadline_at:
            return self._exhaust("deadline")
        return None

    def _exhaust(self, reason: str) -> str:
        if self._exhausted is None:
            self._exhausted = reason
            if obs.ENABLED:
                if reason == "deadline":
                    obs.incr(names.RESILIENCE_DEADLINE_EXCEEDED)
                elif reason == "candidates":
                    obs.incr(names.RESILIENCE_CANDIDATES_EXHAUSTED)
                elif reason == "escalations":
                    obs.incr(names.RESILIENCE_ESCALATIONS_DENIED)
        return self._exhausted

    def __repr__(self) -> str:
        parts = []
        if self.deadline_s is not None:
            parts.append(f"deadline_s={self.deadline_s:g}")
        if self.max_candidates is not None:
            parts.append(f"max_candidates={self.max_candidates}")
        if self.max_escalations is not None:
            parts.append(f"max_escalations={self.max_escalations}")
        if self._exhausted is not None:
            parts.append(f"exhausted={self._exhausted!r}")
        return f"Budget({', '.join(parts)})"


# The active budget of the current context (thread / asyncio task /
# copied context); None means unbudgeted execution.
_budget_var: "ContextVar[Budget | None]" = ContextVar(
    "repro_resilience_budget", default=None
)


def current() -> "Budget | None":
    """The budget active in the current context (``None`` when none is)."""
    return _budget_var.get()


@contextmanager
def scope(budget: "Budget | None") -> "Iterator[Budget | None]":
    """Activate *budget* for the current context until exit.

    Mirrors :func:`repro.obs.scope`: nested scopes stack, sibling
    contexts keep their own budget.  Passing ``None`` explicitly shields
    the block from any outer budget.  The budget's deadline is anchored
    on entry.
    """
    if budget is not None:
        budget.start()
    token = _budget_var.set(budget)
    try:
        yield budget
    finally:
        _budget_var.reset(token)
