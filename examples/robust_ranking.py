"""Top-k dominating queries: ranking under uncertainty.

Run with::

    python examples/robust_ranking.py

Scenario: apartments listed with *approximate* locations (a privacy
circle instead of an address — a real practice on rental platforms).  A
commuter wants the listings that are most defensibly close to their
(also uncertain) workplace campus.

A plain distance sort is meaningless when every location is a region.
The *dominance score* of a listing counts how many competitors are
certainly farther — whatever the true positions turn out to be.  The
top-k dominating query therefore returns the k most robust answers,
with no distance threshold to tune.
"""

from __future__ import annotations

import numpy as np

from repro import Hypersphere
from repro.queries import top_k_dominating

N_LISTINGS = 300
TOP_K = 8


def build_listings(rng: np.random.Generator):
    """Listings clustered in a few neighbourhoods, varied privacy radii."""
    neighbourhoods = rng.uniform(0.0, 30.0, size=(6, 2))
    listings = []
    for i in range(N_LISTINGS):
        around = neighbourhoods[rng.integers(len(neighbourhoods))]
        location = around + rng.normal(0.0, 2.0, size=2)
        privacy_radius = float(rng.uniform(0.1, 1.2))  # km
        listings.append((f"apt-{i:03d}", Hypersphere(location, privacy_radius)))
    return listings


def main() -> None:
    rng = np.random.default_rng(99)
    listings = build_listings(rng)
    campus = Hypersphere(rng.uniform(5.0, 25.0, size=2), 0.6)

    print(f"{len(listings)} listings; campus at {np.round(campus.center, 1)} "
          f"+- {campus.radius} km\n")

    exact = top_k_dominating(listings, campus, TOP_K)
    loose = top_k_dominating(listings, campus, TOP_K, criterion="minmax")

    sphere_by_key = dict(listings)
    print(f"top-{TOP_K} by dominance score (exact Hyperbola operator):")
    for entry in exact:
        sphere = sphere_by_key[entry.key]
        gap = float(np.linalg.norm(sphere.center - campus.center))
        print(
            f"  {entry.key}: dominates {entry.score:3d} competitors "
            f"(center {gap:5.2f} km away, +-{sphere.radius:.2f})"
        )

    exact_keys = [entry.key for entry in exact]
    loose_keys = [entry.key for entry in loose]
    moved = sum(1 for a, b in zip(exact_keys, loose_keys) if a != b)
    print(
        f"\nwith the MinMax bound instead, scores are undercounted and "
        f"{moved}/{TOP_K} rank positions change"
    )

    # Sanity: the top listing really beats its dominated competitors in
    # every sampled world.
    champion = sphere_by_key[exact_keys[0]]
    worlds = 200
    wins = 0
    for _ in range(worlds):
        q = campus.sample(rng)[0]
        champion_gap = float(np.linalg.norm(champion.sample(rng)[0] - q))
        rival = sphere_by_key[exact_keys[-1]].sample(rng)[0]
        wins += champion_gap <= float(np.linalg.norm(rival - q)) + 1e-12
    print(f"monte-carlo: the top listing beat the #{TOP_K} listing in "
          f"{wins}/{worlds} sampled worlds")


if __name__ == "__main__":
    main()
