"""Dominance under drift and custom metrics (the paper's future work).

Run with::

    python examples/drifting_uncertainty.py

The paper's conclusion names two open directions, both implemented in
this reproduction:

1. radii that change over time (``repro.core.temporal``);
2. distance metrics other than plain Euclidean
   (``repro.core.weighted``).

Scenario: two rescue drones report positions whose uncertainty grows
the longer they fly without a GPS fix.  A ground team (also uncertain)
must know *for how long* it can rely on "drone A is certainly closer
than drone B" — and how the answer changes when east-west distance
matters more than north-south (a river crossing).
"""

from __future__ import annotations

import numpy as np

from repro import Hypersphere
from repro.core import (
    GrowingHypersphere,
    WeightedEuclideanCriterion,
    dominance_horizon,
    dominates_at,
)


def main() -> None:
    drone_a = GrowingHypersphere(Hypersphere([2.0, 1.0], 0.2), rate=0.15)
    drone_b = GrowingHypersphere(Hypersphere([14.0, 3.0], 0.2), rate=0.25)
    team = GrowingHypersphere(Hypersphere([0.0, 0.0], 0.5), rate=0.05)

    print("drone A at", drone_a.sphere.center, "+-", drone_a.sphere.radius,
          f"(drift {drone_a.rate}/min)")
    print("drone B at", drone_b.sphere.center, "+-", drone_b.sphere.radius,
          f"(drift {drone_b.rate}/min)")
    print("ground team at", team.sphere.center, "+-", team.sphere.radius,
          f"(drift {team.rate}/min)\n")

    assert dominates_at(drone_a, drone_b, team, 0.0)
    horizon = dominance_horizon(drone_a, drone_b, team, horizon=120.0)
    print("right now: drone A is CERTAINLY the closer one")
    print(f"that guarantee survives accumulated drift for {horizon:.1f} minutes\n")

    print("uncertainty over time (A certainly closer?):")
    for t in (0.0, horizon / 2, horizon * 0.99, horizon * 1.01, 120.0):
        verdict = dominates_at(drone_a, drone_b, team, min(t, 120.0))
        print(f"  t = {t:6.1f} min -> {verdict}")

    # Metric matters: if crossing east-west (axis 0) is 25x costlier
    # than north-south, the comparison should weight it accordingly.
    print("\nweighted-metric view at t = 0 (east-west weighted 25x):")
    standard = WeightedEuclideanCriterion([1.0, 1.0])
    river = WeightedEuclideanCriterion([25.0, 1.0])
    a0, b0, q0 = drone_a.at(0.0), drone_b.at(0.0), team.at(0.0)
    print(f"  plain Euclidean: A dominates B -> {standard.dominates(a0, b0, q0)}")
    print(f"  river-weighted:  A dominates B -> {river.dominates(a0, b0, q0)}")
    print("\n(the drones' uncertainty balls are interpreted in whichever")
    print("metric the comparison uses — see repro/core/weighted.py)")


if __name__ == "__main__":
    main()
