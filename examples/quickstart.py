"""Quickstart: the hypersphere dominance operator in five minutes.

Run with::

    python examples/quickstart.py

Walks through the core API: building hyperspheres, asking dominance
questions with the paper's exact Hyperbola method, comparing all five
decision criteria on a tricky configuration, and inspecting the
geometry behind a decision.
"""

from __future__ import annotations

from repro import Hypersphere, available_criteria, dominates, get_criterion
from repro.core import boundary_margin, min_distance_to_boundary


def main() -> None:
    # Three uncertain objects: GPS readings with measurement error.
    restaurant = Hypersphere([2.0, 1.0], 0.3)  # Sa: well-localised
    warehouse = Hypersphere([9.0, 8.0], 1.0)  # Sb: fuzzier position
    pedestrian = Hypersphere([0.0, 0.0], 0.5)  # Sq: the query user

    print("Is the restaurant *certainly* closer than the warehouse,")
    print("no matter where exactly each of the three actually is?")
    answer = dominates(restaurant, warehouse, pedestrian)
    print(f"  -> dominates(Sa, Sb, Sq) = {answer}\n")

    # The geometry behind the answer: the decision boundary is a
    # hyperbola branch with foci at the two object centers; dominance
    # holds iff the whole query sphere sits on Sa's side of it.
    margin = boundary_margin(restaurant, warehouse, pedestrian.center)
    gap = min_distance_to_boundary(restaurant, warehouse, pedestrian.center)
    print(f"margin of the query center beyond the boundary: {margin:.3f}")
    print(f"distance from the query center to the boundary: {gap:.3f}")
    print(f"query radius: {pedestrian.radius}  (dominated iff distance > radius)\n")

    # A configuration from the paper's Figure 4: the classical MinMax
    # bound says "unknown", the exact method says "dominated".
    sa = Hypersphere([0.0, 2.0], 0.0)
    sb = Hypersphere([0.0, -2.0], 0.0)
    sq = Hypersphere([0.0, 6.0], 3.0)
    print("Figure-4 configuration (two points, a fat query on Sa's side):")
    for name in available_criteria():
        criterion = get_criterion(name)
        verdict = criterion.dominates(sa, sb, sq)
        flags = []
        if criterion.is_correct:
            flags.append("correct")
        if criterion.is_sound:
            flags.append("sound")
        print(f"  {name:<14s} -> {str(verdict):<5s}  ({', '.join(flags)})")
    print()
    print("Only the criteria marked 'sound' are guaranteed to answer True")
    print("here; Hyperbola is the only one that is both correct and sound.")


if __name__ == "__main__":
    main()
