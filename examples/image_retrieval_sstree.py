"""High-dimensional similarity search — the SS-tree use case.

Run with::

    python examples/image_retrieval_sstree.py

The paper motivates hyperspheres through similarity-search indexes
(SS-tree and friends) over image features.  This example indexes the
Color surrogate dataset (9-dimensional Corel-style feature vectors,
see repro.data.real) with an SS-tree, runs kNN queries with each
dominance criterion, and reports how pruning power translates into
answer quality and visited work.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data import real_dataset
from repro.index import SSTree
from repro.queries import knn_query, knn_reference

N_IMAGES = 4000  # slice of the 68,040-image dataset, for a snappy demo
K = 5


def main() -> None:
    dataset = real_dataset("color", mu=0.05, size=N_IMAGES)
    print(f"dataset: {dataset.name}, {len(dataset)} feature spheres, "
          f"d={dataset.dimension}")

    started = time.perf_counter()
    tree = SSTree.bulk_load(dataset.items(), max_entries=24)
    build_seconds = time.perf_counter() - started
    print(f"SS-tree: height {tree.height}, {tree.node_count()} nodes, "
          f"bulk-loaded in {build_seconds * 1000:.1f} ms\n")

    rng = np.random.default_rng(9)
    query = dataset.sphere(int(rng.integers(len(dataset))))
    truth = knn_reference(list(dataset.items()), query, K).key_set()

    header = f"{'criterion':<12s} {'sec/query':>10s} {'returned':>9s} " \
             f"{'correct':>8s} {'nodes':>6s} {'dom.checks':>10s}"
    print(header)
    print("-" * len(header))
    for criterion in ("hyperbola", "minmax", "mbr", "gp"):
        started = time.perf_counter()
        result = knn_query(tree, query, K, criterion=criterion, strategy="hs")
        seconds = time.perf_counter() - started
        correct = len(result.key_set() & truth)
        print(
            f"{criterion:<12s} {seconds:>10.5f} {len(result):>9d} "
            f"{correct:>8d} {result.nodes_visited:>6d} "
            f"{result.dominance_checks:>10d}"
        )

    print(f"\nDefinition-2 ground truth size: {len(truth)}")
    print("Hyperbola returns only true answers; the unsound criteria")
    print("return supersets because they cannot certify some prunes.")


if __name__ == "__main__":
    main()
