"""Side-by-side anatomy of the five dominance criteria.

Run with::

    python examples/criteria_comparison.py

Reproduces, as runnable code, the paper's counter-example constructions
(the proofs of Lemmas 3, 5 and 11) that separate the criteria, then
sweeps a query sphere across the decision boundary to show where each
criterion flips — a one-dimensional slice of Figures 8–9's precision
and recall behaviour.
"""

from __future__ import annotations

import numpy as np

from repro import Hypersphere, available_criteria, get_criterion
from repro.core import oracle_dominates

CRITERIA = list(available_criteria())


def show_case(title: str, sa: Hypersphere, sb: Hypersphere, sq: Hypersphere) -> None:
    truth = oracle_dominates(sa, sb, sq)
    print(f"{title}")
    print(f"  ground truth (numerical oracle): {truth}")
    for name in CRITERIA:
        verdict = get_criterion(name).dominates(sa, sb, sq)
        note = ""
        if verdict and not truth:
            note = "   <- FALSE POSITIVE"
        elif not verdict and truth:
            note = "   <- false negative"
        print(f"  {name:<14s}: {verdict}{note}")
    print()


def main() -> None:
    # Lemma 3 (non-soundness of MinMax): two points with a fat query on
    # the dominator's side of the bisector.
    show_case(
        "Lemma 3 construction -- MinMax misses a true dominance:",
        Hypersphere([0.0, 2.0], 0.0),
        Hypersphere([0.0, -2.0], 0.0),
        Hypersphere([0.0, 6.0], 3.0),
    )

    # Lemma 5 (non-soundness of MBR): three equal spheres on a diagonal;
    # the MBRs of Sa and Sb intersect although the spheres do not.
    r = 1.0
    delta = 0.05
    diag = np.array([1.0, 1.0]) / np.sqrt(2.0)
    cq = np.array([0.0, 0.0])
    show_case(
        "Lemma 5 construction -- MBR misses a true dominance:",
        Hypersphere(cq + diag * 4.0 * r, r),
        Hypersphere(cq + diag * (6.0 * r + delta), r),
        Hypersphere(cq, r),
    )

    # Lemma 11 (non-correctness of Trigonometric): when the true margin
    # is negative at *both* of the surrogate's probes, the same-sign
    # rule wrongly answers "dominates".  Here Sb sits right next to the
    # query while Sa is far away -- clearly not a dominance.
    show_case(
        "Lemma 11 regime -- Trigonometric claims a false dominance:",
        Hypersphere([10.0, 0.0], 0.5),
        Hypersphere([0.0, 0.0], 0.5),
        Hypersphere([0.0, 1.0], 0.3),
    )

    # Boundary sweep: slide the query away from Sb and record where each
    # criterion starts answering True.  Hyperbola flips exactly at the
    # geometric boundary; correct-but-unsound criteria flip later.
    sa = Hypersphere([0.0, 0.0], 1.0)
    sb = Hypersphere([10.0, 0.0], 1.0)
    print("query sweep along the focal axis (rq = 1):")
    print(f"  {'position':>8s}  " + "  ".join(f"{n[:6]:>6s}" for n in CRITERIA))
    for x in np.linspace(4.0, -8.0, 13):
        sq = Hypersphere([x, 0.0], 1.0)
        answers = [get_criterion(n).dominates(sa, sb, sq) for n in CRITERIA]
        cells = "  ".join(f"{str(a):>6s}" for a in answers)
        print(f"  {x:>8.1f}  {cells}")


if __name__ == "__main__":
    main()
