"""kNN over uncertain GPS objects — the paper's motivating application.

Run with::

    python examples/uncertain_gps_knn.py

Scenario: a fleet of delivery vehicles reports GPS positions with
per-vehicle measurement uncertainty (a hypersphere each).  A dispatcher
at an (also uncertain) location asks for the k nearest vehicles.

Because positions are uncertain, "the k nearest" is not a crisp set:
the answer (Definition 2 of the paper) contains every vehicle that
*cannot be ruled out* — i.e. is not dominated by the k-th best
pessimistic candidate.  The example contrasts:

- the exact answer (SS-tree + Hyperbola),
- the same query with the classical MinMax bound (returns extra
  vehicles that a sound criterion would have pruned),
- a naive Monte-Carlo check that confirms the exact answer's meaning.
"""

from __future__ import annotations

import numpy as np

from repro import Hypersphere
from repro.index import SSTree
from repro.queries import knn_query, knn_reference

N_VEHICLES = 400
K = 3
CITY_SIZE = 50.0


def build_fleet(rng: np.random.Generator) -> list[tuple[str, Hypersphere]]:
    """Vehicles clustered around a few depots, with varied GPS error."""
    depots = rng.uniform(0.0, CITY_SIZE, size=(5, 2))
    fleet = []
    for i in range(N_VEHICLES):
        depot = depots[rng.integers(len(depots))]
        position = depot + rng.normal(0.0, 4.0, size=2)
        uncertainty = float(rng.uniform(0.05, 1.5))  # km of GPS error
        fleet.append((f"vehicle-{i:03d}", Hypersphere(position, uncertainty)))
    return fleet


def monte_carlo_can_win(
    candidate: Hypersphere,
    others: list[Hypersphere],
    query: Hypersphere,
    rng: np.random.Generator,
    trials: int = 300,
) -> bool:
    """Can *candidate* realise among the K nearest in some world?"""
    for _ in range(trials):
        q = query.sample(rng)[0]
        c = candidate.sample(rng)[0]
        candidate_dist = float(np.linalg.norm(c - q))
        closer = sum(
            1
            for other in others
            if float(np.linalg.norm(other.sample(rng)[0] - q)) < candidate_dist
        )
        if closer < K:
            return True
    return False


def main() -> None:
    rng = np.random.default_rng(2014)
    fleet = build_fleet(rng)
    tree = SSTree.bulk_load(fleet)
    dispatcher = Hypersphere(rng.uniform(10.0, 40.0, size=2), 0.8)

    exact = knn_query(tree, dispatcher, K, criterion="hyperbola", strategy="hs")
    loose = knn_query(tree, dispatcher, K, criterion="minmax", strategy="hs")
    truth = knn_reference(fleet, dispatcher, K)

    print(f"fleet of {len(fleet)} vehicles, dispatcher at "
          f"{np.round(dispatcher.center, 1)} +- {dispatcher.radius} km, k={K}\n")
    print(f"exact answer (Hyperbola):   {len(exact)} candidate vehicles")
    print(f"with MinMax pruning only:   {len(loose)} candidate vehicles "
          f"({len(loose) - len(exact)} that dominance would have removed)")
    print(f"Definition-2 ground truth:  {len(truth)} vehicles\n")

    print("exact candidates:")
    for key in sorted(exact.key_set()):
        print(f"  {key}")

    # Sanity: every exact candidate can genuinely end up among the K
    # nearest in at least one realisation of the uncertain world.
    sphere_by_key = dict(fleet)
    print("\nMonte-Carlo sanity check (can each returned vehicle win?):")
    for key in sorted(exact.key_set()):
        candidate = sphere_by_key[key]
        others = [s for other_key, s in fleet if other_key != key]
        winnable = monte_carlo_can_win(candidate, others, dispatcher, rng)
        print(f"  {key}: {'plausible' if winnable else 'never won in sampling'}")


if __name__ == "__main__":
    main()
