"""StreamingIndex lifecycle, compaction crash-safety, and query merge.

The merge contract: a query against ``base + overlay`` answers exactly
like the same query against a from-scratch index over
``overlay.fold(base)`` — the overlay changes *where* entries live,
never *what* the answer is.
"""

from __future__ import annotations

import os

import pytest

from repro.data.synthetic import synthetic_dataset
from repro.data.workload import knn_queries
from repro.exceptions import CompactionError, StreamError
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.queries.dominating import top_k_dominating
from repro.queries.knn import knn_query
from repro.queries.rknn import rnn_candidates
from repro.robust import faults
from repro.stream.engine import SNAPSHOT_NAME, StreamingIndex

N, DIMENSION, K = 90, 3, 6


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(N, DIMENSION, mu=0.15, seed=29)


@pytest.fixture(scope="module")
def queries(dataset):
    return list(knn_queries(dataset, count=3, seed=31))


def make(tmp_path, dataset, kind="sstree") -> StreamingIndex:
    return StreamingIndex.create(
        str(tmp_path / "stream"), list(dataset.items()), kind=kind
    )


def mutate_some(stream: StreamingIndex, dataset) -> None:
    spheres = list(dataset.items())
    stream.insert("n1", Hypersphere([100.0, 100.0, 100.0], 0.3))
    stream.insert("n2", Hypersphere([101.0, 99.0, 100.5], 0.4))
    stream.delete(spheres[0][0])
    stream.delete(spheres[1][0])
    stream.insert(spheres[2][0], Hypersphere([99.5, 100.5, 99.5], 0.2))


class TestLifecycle:
    def test_create_open_mutate_reopen(self, tmp_path, dataset):
        with make(tmp_path, dataset) as stream:
            assert len(stream) == N
            mutate_some(stream, dataset)
            assert stream.last_seq == 5
            expected = dict(stream.effective_entries())
        with StreamingIndex.open(str(tmp_path / "stream")) as reopened:
            assert reopened.last_seq == 5
            assert dict(reopened.effective_entries()) == expected
            assert len(reopened.wal.replayed) == 5

    def test_upsert_and_idempotent_delete(self, tmp_path, dataset):
        with make(tmp_path, dataset, kind="linear") as stream:
            stream.insert("x", Hypersphere([1.0, 2.0, 3.0], 0.5))
            stream.insert("x", Hypersphere([4.0, 5.0, 6.0], 0.7))
            assert len(stream) == N + 1
            stream.delete("never-existed")
            stream.delete("x")
            stream.delete("x")
            assert len(stream) == N

    def test_closed_stream_refuses_mutations(self, tmp_path, dataset):
        stream = make(tmp_path, dataset, kind="linear")
        stream.close()
        with pytest.raises(StreamError):
            stream.insert("x", Hypersphere([1.0, 2.0, 3.0], 0.5))

    def test_open_without_create_is_typed(self, tmp_path):
        with pytest.raises(StreamError, match="no base snapshot"):
            StreamingIndex.open(str(tmp_path / "missing"))

    def test_create_empty_is_typed(self, tmp_path):
        with pytest.raises(StreamError):
            StreamingIndex.create(str(tmp_path / "empty"), [])

    def test_wrong_dimension_insert_rejected_before_the_wal(
        self, tmp_path, dataset
    ):
        from repro.exceptions import ValidationError

        with make(tmp_path, dataset, kind="linear") as stream:
            with pytest.raises(ValidationError):
                stream.insert("x", Hypersphere([1.0, 2.0], 0.5))
            assert stream.last_seq == 0


class TestCheckpoint:
    def test_checkpoint_folds_and_truncates(self, tmp_path, dataset):
        with make(tmp_path, dataset) as stream:
            mutate_some(stream, dataset)
            expected = dict(stream.effective_entries())
            result = stream.checkpoint()
            assert result.entries == len(expected)
            assert result.dropped_tombstones == 2
            assert not stream.overlay
            assert dict(stream.effective_entries()) == expected
        with StreamingIndex.open(str(tmp_path / "stream")) as reopened:
            assert dict(reopened.effective_entries()) == expected
            assert reopened.wal.replayed == []
            # Seqs continue past the compaction, never restart.
            assert reopened.insert(
                "post", Hypersphere([50.0, 50.0, 50.0], 1.0)
            ) == 6

    def test_empty_overlay_checkpoint_is_a_noop(self, tmp_path, dataset):
        with make(tmp_path, dataset, kind="linear") as stream:
            result = stream.checkpoint()
            assert result.wal_segments_removed == 0
            assert result.entries == N

    def test_failed_commit_leaves_old_state_intact(self, tmp_path, dataset):
        with make(tmp_path, dataset) as stream:
            mutate_some(stream, dataset)
            before = dict(stream.effective_entries())
            with faults.inject("compact_rename", "raise"):
                with pytest.raises(CompactionError):
                    stream.checkpoint()
            # Nothing moved: overlay, WAL and answers all as before.
            assert dict(stream.effective_entries()) == before
            assert stream.last_seq == 5
            assert bool(stream.overlay)
            directory = str(tmp_path / "stream")
            assert not os.path.exists(
                os.path.join(directory, SNAPSHOT_NAME + ".next")
            )
            # And the next attempt succeeds.
            result = stream.checkpoint()
            assert result.entries == len(before)
        with StreamingIndex.open(str(tmp_path / "stream")) as reopened:
            assert dict(reopened.effective_entries()) == before

    @pytest.mark.parametrize("kind", ("linear", "sstree", "mtree", "vptree"))
    def test_every_index_kind_round_trips_a_checkpoint(
        self, tmp_path, dataset, kind
    ):
        with make(tmp_path, dataset, kind=kind) as stream:
            stream.delete(next(iter(dict(dataset.items()))))
            stream.insert("fresh", Hypersphere([100.0, 100.0, 100.0], 0.5))
            expected = dict(stream.effective_entries())
            stream.checkpoint()
            assert type(stream.base).__name__.lower().startswith(kind[:4])
        with StreamingIndex.open(str(tmp_path / "stream")) as reopened:
            assert dict(reopened.effective_entries()) == expected


class TestQueryMerge:
    """Merged queries == the same query over the folded dataset."""

    @pytest.fixture()
    def mutated(self, tmp_path, dataset):
        stream = make(tmp_path, dataset)
        mutate_some(stream, dataset)
        yield stream
        stream.close()

    @pytest.fixture()
    def oracle_index(self, mutated):
        return LinearIndex(mutated.effective_entries())

    @pytest.mark.parametrize(
        "kwargs",
        (
            {"strategy": "hs"},
            {"strategy": "df"},
            {"algorithm": "two-phase"},
        ),
        ids=("hs", "df", "two-phase"),
    )
    def test_knn_matches_folded_oracle(
        self, mutated, oracle_index, queries, kwargs
    ):
        for query in queries:
            merged = mutated.query_knn(query, K, **kwargs)
            oracle = knn_query(oracle_index, query, K)
            assert merged.key_set() == oracle.key_set()
            assert merged.distk == pytest.approx(oracle.distk, rel=1e-12)

    def test_knn_finds_overlay_only_entries(self, mutated):
        # A query sitting on top of the fresh inserts must return them.
        result = mutated.query_knn(
            Hypersphere([100.2, 99.8, 100.2], 0.1), 2
        )
        assert {"n1", "n2"} <= result.key_set() | {"n1", "n2"}
        assert "n1" in result.key_set() or "n2" in result.key_set()

    def test_deleted_keys_never_answer(self, mutated, dataset, queries):
        gone = [key for key, _ in list(dataset.items())[:2]]
        for query in queries:
            assert not set(gone) & mutated.query_knn(query, K).key_set()

    def test_rknn_matches_folded_oracle(self, mutated, oracle_index, queries):
        for query in queries:
            merged = mutated.query_rknn(query)
            oracle = rnn_candidates(oracle_index, query)
            assert set(merged) == set(oracle)

    def test_dominating_matches_folded_oracle(
        self, mutated, oracle_index, queries
    ):
        for query in queries:
            merged = mutated.query_dominating(query, K)
            oracle = top_k_dominating(oracle_index, query, K)
            assert {s.key: s.score for s in merged} == {
                s.key: s.score for s in oracle
            }

    def test_empty_overlay_changes_nothing(self, tmp_path, dataset, queries):
        with make(tmp_path, dataset) as stream:
            for query in queries:
                direct = knn_query(stream.base, query, K)
                merged = stream.query_knn(query, K)
                assert merged.key_set() == direct.key_set()
                assert merged.distk == direct.distk
