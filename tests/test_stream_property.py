"""Property tests: random mutation interleavings vs a linear-scan oracle.

The oracle is deliberately dumb: replay the mutation history into a
plain dict (insert = assignment, delete = pop) and query the resulting
entries through a from-scratch :class:`LinearIndex`.  Whatever the
streaming engine's WAL, overlay and merge machinery do, the answers
must be exactly those — with and without an execution budget, before
and after a mid-sequence checkpoint, and across a reopen.

Disk I/O per example is real (WAL fsyncs), so example counts stay
modest; the non-durable overlay merge is exercised with more examples
directly against :class:`DeltaOverlay`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.index.sstree import SSTree
from repro.queries.dominating import dominance_scores, top_k_dominating
from repro.queries.knn import knn_query, knn_reference
from repro.queries.rknn import rnn_candidates
from repro.resilience import Budget, PartialResult, scope
from repro.stream.engine import StreamingIndex
from repro.stream.overlay import DeltaOverlay

DIMENSION = 3


def _sphere(rng: np.random.Generator) -> Hypersphere:
    return Hypersphere(
        rng.normal(0.0, 10.0, DIMENSION),
        float(abs(rng.normal(0.8, 0.5))),
    )


@st.composite
def histories(draw):
    """A base dataset plus a random insert/delete interleaving."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=8, max_value=40))
    steps = draw(st.integers(min_value=1, max_value=25))
    rng = np.random.default_rng(seed)
    base = [(i, _sphere(rng)) for i in range(n)]
    # Keys deliberately collide: deletes of live, dead and never-seen
    # keys; inserts both fresh and re-using base/deleted keys.
    key_space = list(range(n + 10))
    history = []
    for _ in range(steps):
        key = int(rng.choice(key_space))
        if rng.random() < 0.4:
            history.append(("delete", key, None))
        else:
            history.append(("insert", key, _sphere(rng)))
    query = _sphere(rng)
    k = draw(st.integers(min_value=1, max_value=5))
    return base, history, query, k


def oracle_entries(base, history):
    """The dumb replay: dict assignment and pop, nothing clever."""
    table = dict(base)
    for op, key, sphere in history:
        if op == "insert":
            table[key] = sphere
        else:
            table.pop(key, None)
    return list(table.items())


def assert_same_answers(stream_like, oracle, query, k):
    """All three merged queries match the linear-scan ground truth."""
    knn = stream_like.query_knn(query, k, algorithm="two-phase")
    truth = knn_reference(oracle, query, k)
    assert knn.key_set() == truth.key_set()

    incremental = stream_like.query_knn(query, k)
    assert incremental.key_set() <= truth.key_set()
    assert incremental.distk == pytest.approx(truth.distk, rel=1e-9)

    assert set(stream_like.query_rknn(query)) == set(
        rnn_candidates(oracle, query)
    )
    # Dominating: ties at the k-th score break by dataset order, and the
    # folded dataset's order is the base index's iteration order — so
    # the check is on *scores*, which are order-free: every returned
    # key's score must be its true score, and the returned score vector
    # must be the true top-k.
    merged = stream_like.query_dominating(query, k)
    true_scores = {s.key: s.score for s in dominance_scores(oracle, query)}
    assert all(true_scores[s.key] == s.score for s in merged)
    assert sorted((s.score for s in merged), reverse=True) == sorted(
        true_scores.values(), reverse=True
    )[: len(merged)]
    assert len(merged) == min(k, len(oracle))


class _OverlayHarness:
    """Adapts (base index, overlay) to the stream query interface."""

    def __init__(self, base, overlay):
        self.base, self.overlay = base, overlay

    def query_knn(self, query, k, **kwargs):
        return knn_query(self.base, query, k, overlay=self.overlay, **kwargs)

    def query_rknn(self, query, **kwargs):
        return rnn_candidates(self.base, query, overlay=self.overlay, **kwargs)

    def query_dominating(self, query, k, **kwargs):
        return top_k_dominating(
            self.base, query, k, overlay=self.overlay, **kwargs
        )


class TestOverlayMergeProperty:
    @given(histories())
    @settings(max_examples=60, deadline=None)
    def test_merged_queries_equal_linear_scan_oracle(self, world):
        base, history, query, k = world
        overlay = DeltaOverlay()
        for op, key, sphere in history:
            if op == "insert":
                overlay.insert(key, sphere)
            else:
                overlay.delete(key)
        oracle = oracle_entries(base, history)
        if len(oracle) < k:
            return  # k outgrew the surviving dataset; nothing to check
        harness = _OverlayHarness(SSTree.bulk_load(base, max_entries=4), overlay)
        assert_same_answers(harness, oracle, query, k)

    @given(histories())
    @settings(max_examples=25, deadline=None)
    def test_budgeted_merge_stays_honest(self, world):
        # The resilience contract over a merged dataset: a budget
        # changes what is *reported*, never silently what is true.  A
        # roomy budget answers exactly like the unbudgeted merge; a
        # tight one may deviate, but only with a degradation flag (an
        # un-pruned answer can widen, an exhausted one can shrink).
        base, history, query, k = world
        overlay = DeltaOverlay()
        for op, key, sphere in history:
            if op == "insert":
                overlay.insert(key, sphere)
            else:
                overlay.delete(key)
        oracle = oracle_entries(base, history)
        if len(oracle) < k:
            return
        tree = SSTree.bulk_load(base, max_entries=4)
        unbudgeted = knn_query(tree, query, k, overlay=overlay)

        with scope(Budget(deadline_s=3600.0)):
            roomy = knn_query(tree, query, k, overlay=overlay)
        assert isinstance(roomy, PartialResult)
        assert roomy.complete
        assert roomy.key_set() == unbudgeted.key_set()

        with scope(Budget(max_candidates=10)):
            tight = knn_query(tree, query, k, overlay=overlay)
        assert isinstance(tight, PartialResult)
        if tight.key_set() != unbudgeted.key_set():
            assert not tight.complete or tight.report.degraded


class TestDurableEngineProperty:
    @given(world=histories())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_engine_checkpoint_and_reopen_match_oracle(
        self, tmp_path_factory, world
    ):
        base, history, query, k = world
        oracle = oracle_entries(base, history)
        if len(oracle) < max(k, 1):
            return
        directory = str(tmp_path_factory.mktemp("stream-prop"))
        checkpoint_at = len(history) // 2
        with StreamingIndex.create(directory, base, kind="sstree") as stream:
            for step, (op, key, sphere) in enumerate(history):
                if op == "insert":
                    stream.insert(key, sphere)
                else:
                    stream.delete(key)
                if step == checkpoint_at and stream.overlay:
                    if len(stream) > 0:
                        stream.checkpoint()
            if len(stream) == 0:
                return  # history deleted everything; no index to query
            assert dict(stream.effective_entries()) == dict(oracle)
            assert_same_answers(stream, oracle, query, k)
        with StreamingIndex.open(directory) as reopened:
            assert dict(reopened.effective_entries()) == dict(oracle)
            assert_same_answers(reopened, oracle, query, k)
