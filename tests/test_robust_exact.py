"""The exact rational arbiter vs the numerical ground-truth oracle.

The acceptance bar for the robust subsystem: on hundreds of adversarial
near-boundary triples (margins within ~1e-12 of zero) the Fraction
arbiter and the sampling oracle must never disagree outside the
oracle's own resolution.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.core.hyperbola import min_distance_to_boundary
from repro.core.oracle import min_margin, oracle_dominates
from repro.geometry.hypersphere import Hypersphere
from repro.robust.exact import exact_dominates

# The oracle runs golden-section refinement; below this margin its own
# verdict is not trustworthy and disagreement proves nothing.
_ORACLE_RESOLUTION = 5e-14


def _random_triple(rng, dimension):
    return (
        Hypersphere(rng.normal(size=dimension) * 5.0, rng.uniform(0.0, 2.0)),
        Hypersphere(rng.normal(size=dimension) * 5.0, rng.uniform(0.0, 2.0)),
        Hypersphere(rng.normal(size=dimension) * 5.0, rng.uniform(0.0, 2.0)),
    )


class TestAgainstOracle:
    def test_random_triples_agree(self, rng):
        disagreements = 0
        for _ in range(400):
            dimension = int(rng.integers(1, 6))
            sa, sb, sq = _random_triple(rng, dimension)
            if exact_dominates(sa, sb, sq) != oracle_dominates(sa, sb, sq):
                # Tolerate only boundary cases below oracle resolution.
                if abs(min_margin(sa, sb, sq)) > _ORACLE_RESOLUTION:
                    disagreements += 1
        assert disagreements == 0

    def test_near_boundary_corpus(self, rng):
        """The acceptance corpus: >= 200 triples straddling the boundary.

        Each triple is built by measuring the true clearance ``dmin``
        and setting ``rq = dmin * (1 +- eps)`` with ``eps`` around
        1e-13..1e-12, so every decision margin sits within ~1e-12 of
        zero — far below a float64 kernel's comfort zone.
        """
        collected = 0
        disagreements = []
        while collected < 220:
            dimension = int(rng.integers(2, 6))
            sa, sb, _ = _random_triple(rng, dimension)
            center_q = rng.normal(size=dimension) * 5.0
            gap = float(np.linalg.norm(sb.center - sa.center))
            if gap <= sa.radius + sb.radius:
                continue
            try:
                dmin = min_distance_to_boundary(sa, sb, center_q)
            except Exception:
                continue
            if not np.isfinite(dmin) or dmin <= 0.0:
                continue
            eps = rng.uniform(2e-13, 9e-13) * (1.0 if rng.random() < 0.5 else -1.0)
            radius_q = dmin * (1.0 + eps)
            if radius_q <= 0.0:
                continue
            sq = Hypersphere(center_q, radius_q)
            collected += 1
            exact = exact_dominates(sa, sb, sq)
            oracle = oracle_dominates(sa, sb, sq)
            margin = min_margin(sa, sb, sq)
            if exact != oracle and abs(margin) > _ORACLE_RESOLUTION:
                disagreements.append((sa, sb, sq, margin))
        assert collected >= 200
        assert not disagreements


class TestExactSemantics:
    def test_overlap_never_dominates(self):
        a = Hypersphere([0.0, 0.0], 2.0)
        b = Hypersphere([1.0, 0.0], 2.0)
        assert not exact_dominates(a, b, Hypersphere([5.0, 0.0], 0.1))

    def test_touching_spheres_never_dominate(self):
        # Dist(ca, cb) == ra + rb exactly: Lemma 1's strict inequality.
        a = Hypersphere([0.0, 0.0], 1.0)
        b = Hypersphere([2.0, 0.0], 1.0)
        assert not exact_dominates(a, b, Hypersphere([-5.0, 0.0], 0.1))

    def test_tangent_query_circle_not_dominated(self):
        # In 1-D all quantities are rational: query interval touching
        # the vertex exactly must answer False (strict containment).
        a = Hypersphere([0.0], 1.0)
        b = Hypersphere([10.0], 1.0)
        # Vertex of Ra at t = -(ra+rb)/2 = -1 in frame coordinates,
        # i.e. ambient coordinate 4.  Query [1, 4] touches it.
        assert not exact_dominates(a, b, Hypersphere([2.5], 1.5))
        assert exact_dominates(a, b, Hypersphere([2.5], 1.25))

    def test_center_exactly_on_boundary_false(self):
        # s = 0 degenerates Ra's boundary to the perpendicular bisector;
        # a point query exactly on it is not strictly inside.
        a = Hypersphere([0.0, 0.0], 0.0)
        b = Hypersphere([2.0, 0.0], 0.0)
        assert not exact_dominates(a, b, Hypersphere([1.0, 5.0], 0.0))
        assert exact_dominates(a, b, Hypersphere([1.0 - 1e-12, 5.0], 0.0))

    def test_bisector_disk_tangency(self):
        # s = 0, query disk of radius exactly the distance to the
        # bisector plane: touching, hence False; any smaller is True.
        a = Hypersphere([0.0, 0.0], 0.0)
        b = Hypersphere([4.0, 0.0], 0.0)
        assert not exact_dominates(a, b, Hypersphere([1.0, 3.0], 1.0))
        assert exact_dominates(a, b, Hypersphere([1.0, 3.0], 0.875))

    def test_rationalisation_is_lossless(self):
        # Fraction(float) is exact, so decisions depend only on the
        # float bit patterns, never on a decimal re-parse.
        assert Fraction(0.1) != Fraction(1, 10)
        for value in (0.1, 0.1 + 0.2, 1e-300, 12345.6789):
            assert float(Fraction(value)) == value

    @pytest.mark.parametrize("dimension", [1, 2, 3, 5])
    def test_agrees_with_hyperbola_on_clear_cases(self, dimension):
        from repro.core.hyperbola import HyperbolaCriterion

        criterion = HyperbolaCriterion()
        center_b = [0.0] * dimension
        center_b[0] = 10.0
        sa = Hypersphere([0.0] * dimension, 1.0)
        sb = Hypersphere(center_b, 1.0)
        center_q = [0.0] * dimension
        center_q[0] = -2.0
        sq = Hypersphere(center_q, 0.5)
        assert exact_dominates(sa, sb, sq) == criterion.dominates(sa, sb, sq)
        assert exact_dominates(sb, sa, sq) == criterion.dominates(sb, sa, sq)
