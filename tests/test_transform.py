"""Tests for the focal-frame isometry (Section 4.3.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given
import hypothesis.strategies as st

from repro.exceptions import DimensionalityMismatchError, GeometryError
from repro.geometry.transform import FocalFrame

from conftest import dimensions, finite_coordinates


@st.composite
def frames_and_points(draw):
    d = draw(dimensions)
    coords = st.lists(finite_coordinates, min_size=d, max_size=d)
    ca = np.array(draw(coords))
    cb = np.array(draw(coords))
    assume(float(np.linalg.norm(cb - ca)) > 1e-6)
    point = np.array(draw(coords))
    return FocalFrame(ca, cb), ca, cb, point


class TestConstruction:
    def test_alpha_is_half_separation(self):
        frame = FocalFrame([0.0, 0.0], [6.0, 8.0])
        assert frame.alpha == pytest.approx(5.0)
        assert np.allclose(frame.midpoint, [3.0, 4.0])
        assert np.allclose(frame.axis, [0.6, 0.8])

    def test_identical_foci_rejected(self):
        with pytest.raises(GeometryError):
            FocalFrame([1.0, 2.0], [1.0, 2.0])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DimensionalityMismatchError):
            FocalFrame([0.0], [1.0, 2.0])


class TestReduce:
    def test_foci_reduce_to_axis_points(self):
        ca, cb = np.array([1.0, 1.0, 0.0]), np.array([5.0, 1.0, 0.0])
        frame = FocalFrame(ca, cb)
        assert frame.reduce(ca) == pytest.approx((-2.0, 0.0))
        assert frame.reduce(cb) == pytest.approx((2.0, 0.0))

    def test_off_axis_point(self):
        frame = FocalFrame([0.0, 0.0], [4.0, 0.0])
        t, rho = frame.reduce([2.0, 3.0])
        assert t == pytest.approx(0.0)
        assert rho == pytest.approx(3.0)

    def test_dimension_mismatch(self):
        frame = FocalFrame([0.0, 0.0], [1.0, 0.0])
        with pytest.raises(DimensionalityMismatchError):
            frame.reduce([0.0])

    @given(frames_and_points())
    def test_reduce_preserves_focal_distances(self, setup):
        """(t, rho) must reproduce the distances to both foci exactly."""
        frame, ca, cb, point = setup
        t, rho = frame.reduce(point)
        to_ca = np.hypot(t + frame.alpha, rho)
        to_cb = np.hypot(t - frame.alpha, rho)
        scale = 1.0 + float(np.linalg.norm(point)) + 2 * frame.alpha
        assert to_ca == pytest.approx(np.linalg.norm(point - ca), abs=1e-6 * scale)
        assert to_cb == pytest.approx(np.linalg.norm(point - cb), abs=1e-6 * scale)

    @given(frames_and_points())
    def test_reduce_many_matches_scalar(self, setup):
        frame, ca, cb, point = setup
        stacked = np.stack([point, ca, cb])
        t, rho = frame.reduce_many(stacked)
        for i, p in enumerate((point, ca, cb)):
            ts, rs = frame.reduce(p)
            assert t[i] == pytest.approx(ts, abs=2e-6 * (1.0 + abs(ts)))
            assert rho[i] == pytest.approx(rs, abs=2e-6 * (1.0 + abs(rs)))


class TestFullTransform:
    @given(frames_and_points())
    def test_to_frame_is_an_isometry(self, setup):
        frame, ca, cb, point = setup
        before = np.stack([ca, cb, point])
        after = frame.to_frame(before)
        for i in range(3):
            for j in range(3):
                assert np.linalg.norm(after[i] - after[j]) == pytest.approx(
                    np.linalg.norm(before[i] - before[j]), abs=1e-8
                )

    @given(frames_and_points())
    def test_to_frame_places_foci_on_first_axis(self, setup):
        frame, ca, cb, _ = setup
        out = frame.to_frame(np.stack([ca, cb]))
        scale = 1e-9 * (1.0 + 2 * frame.alpha)
        assert out[0][0] == pytest.approx(-frame.alpha, abs=max(1e-9, scale))
        assert np.allclose(out[0][1:], 0.0, atol=max(1e-9, scale))
        assert out[1][0] == pytest.approx(frame.alpha, abs=max(1e-9, scale))
        assert np.allclose(out[1][1:], 0.0, atol=max(1e-9, scale))

    @given(frames_and_points())
    def test_to_frame_first_coordinate_matches_reduce(self, setup):
        frame, _, _, point = setup
        t, rho = frame.reduce(point)
        transformed = frame.to_frame(point)
        # reduce() loses half the precision to sqrt cancellation when
        # rho ~ 0; the admissible error scales with the coordinates.
        slack = 1e-6 * (1.0 + float(np.abs(point).max()) + 2.0 * frame.alpha)
        assert transformed[0] == pytest.approx(t, abs=slack)
        assert float(np.linalg.norm(transformed[1:])) == pytest.approx(
            rho, abs=slack
        )


class TestLift:
    def test_round_trip_through_lift(self):
        frame = FocalFrame([0.0, 0.0, 0.0], [2.0, 0.0, 0.0])
        point = np.array([1.5, 2.0, -1.0])
        t, rho = frame.reduce(point)
        lifted = frame.lift(t, rho, toward=point)
        assert np.allclose(lifted, point)

    def test_lift_on_axis(self):
        frame = FocalFrame([0.0, 0.0], [2.0, 0.0])
        assert np.allclose(frame.lift(0.0, 0.0), [1.0, 0.0])

    def test_lift_without_toward_is_perpendicular(self):
        frame = FocalFrame([0.0, 0.0], [2.0, 0.0])
        lifted = frame.lift(0.0, 3.0)
        t, rho = frame.reduce(lifted)
        assert t == pytest.approx(0.0)
        assert rho == pytest.approx(3.0)

    def test_negative_rho_rejected(self):
        frame = FocalFrame([0.0], [1.0])
        with pytest.raises(GeometryError):
            frame.lift(0.0, -1.0)
