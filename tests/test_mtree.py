"""Unit and property tests for the M-tree index (extension)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.data.synthetic import synthetic_dataset
from repro.exceptions import IndexStructureError
from repro.geometry.distance import max_dist, min_dist
from repro.geometry.hypersphere import Hypersphere
from repro.index.mtree import MTree
from repro.queries.knn import knn_query, knn_reference


def make_items(rng, n: int, d: int):
    return [
        (i, Hypersphere(rng.normal(0.0, 10.0, d), float(abs(rng.normal(0.0, 1.0)))))
        for i in range(n)
    ]


class TestConstruction:
    def test_parameters_validated(self):
        with pytest.raises(IndexStructureError):
            MTree(0)
        with pytest.raises(IndexStructureError):
            MTree(2, max_entries=2)

    def test_empty_build_rejected(self):
        with pytest.raises(IndexStructureError):
            MTree.build([])

    def test_insert_wrong_dimension(self):
        tree = MTree(2)
        with pytest.raises(IndexStructureError):
            tree.insert("x", Hypersphere([0.0], 1.0))

    def test_all_items_preserved(self, rng):
        items = make_items(rng, 400, 3)
        tree = MTree.build(items, max_entries=8)
        tree.validate()
        assert sorted(key for key, _ in tree) == list(range(400))

    def test_routing_objects_are_data_centers(self, rng):
        """Every routing center must be some member's center (metric
        purity: the M-tree never synthesises points)."""
        items = make_items(rng, 200, 2)
        tree = MTree.build(items, max_entries=8)
        centers = {tuple(sphere.center) for _, sphere in items}

        def walk(node):
            assert tuple(node.routing) in centers
            if not node.is_leaf:
                for child in node.children:
                    walk(child)

        walk(tree.root)

    def test_duplicate_centers_terminate(self):
        items = [(i, Hypersphere([2.0, 2.0], 0.3)) for i in range(80)]
        tree = MTree.build(items, max_entries=6)
        tree.validate()
        assert len(tree) == 80


class TestInvariants:
    @given(
        st.integers(min_value=1, max_value=250),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=4, max_value=20),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25)
    def test_build_preserves_invariants(self, n, d, cap, seed):
        rng = np.random.default_rng(seed)
        tree = MTree.build(make_items(rng, n, d), max_entries=cap)
        tree.validate()
        assert len(tree) == n

    def test_node_bounds_bracket_member_distances(self, rng):
        items = make_items(rng, 400, 3)
        tree = MTree.build(items, max_entries=8)
        query = Hypersphere(rng.normal(0.0, 10.0, 3), 1.5)

        def members(node):
            stack, out = [node], []
            while stack:
                current = stack.pop()
                if current.is_leaf:
                    out.extend(current.entries)
                else:
                    stack.extend(current.children)
            return out

        def walk(node):
            lower_min = node.min_dist(query)
            lower_max = node.max_dist_lower_bound(query)
            for _, sphere in members(node):
                assert min_dist(sphere, query) >= lower_min - 1e-9
                assert max_dist(sphere, query) >= lower_max - 1e-9
            if not node.is_leaf:
                for child in node.children:
                    walk(child)

        walk(tree.root)


class TestQueries:
    def test_range_query_matches_linear_scan(self, rng):
        items = make_items(rng, 300, 2)
        tree = MTree.build(items, max_entries=8)
        for _ in range(10):
            query = Hypersphere(rng.normal(0.0, 10.0, 2), float(rng.uniform(0, 5)))
            found = {key for key, _ in tree.range_query(query)}
            expected = {key for key, sphere in items if sphere.overlaps(query)}
            assert found == expected

    @pytest.mark.parametrize("strategy", ("hs", "df"))
    def test_two_phase_knn_matches_reference(self, strategy):
        dataset = synthetic_dataset(600, 3, mu=8.0, seed=2)
        tree = MTree.build(dataset.items())
        items = list(dataset.items())
        for i in (0, 100, 400):
            query = dataset.sphere(i)
            expected = knn_reference(items, query, 8).key_set()
            got = knn_query(
                tree, query, 8, strategy=strategy, algorithm="two-phase"
            )
            assert got.key_set() == expected

    def test_incremental_knn_subset_of_truth(self):
        dataset = synthetic_dataset(600, 3, mu=8.0, seed=2)
        tree = MTree.build(dataset.items())
        items = list(dataset.items())
        for i in (5, 250):
            query = dataset.sphere(i)
            truth = knn_reference(items, query, 8).key_set()
            got = knn_query(tree, query, 8)
            assert got.key_set() <= truth

    def test_all_three_trees_agree(self):
        from repro.index.sstree import SSTree
        from repro.index.vptree import VPTree

        dataset = synthetic_dataset(500, 2, mu=5.0, seed=4)
        query = dataset.sphere(7)
        answers = []
        for tree in (
            MTree.build(dataset.items()),
            SSTree.bulk_load(dataset.items()),
            VPTree.build(dataset.items()),
        ):
            answers.append(
                knn_query(tree, query, 6, algorithm="two-phase").key_set()
            )
        assert answers[0] == answers[1] == answers[2]
