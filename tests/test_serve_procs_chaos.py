"""SIGKILL chaos matrix for supervised multi-process serving.

Real worker processes die here.  A :class:`~repro.serve.supervisor.
Supervisor` is booted over a snapshot shard and a streaming index,
query+mutate load runs against it, and workers are SIGKILLed mid-load
(directly by pid, and through the ``worker_kill`` / ``worker_heartbeat``
fault seams).  The standing degradation invariant is asserted end to
end:

- every response status stays in {200, 206, 429, 503};
- every *unflagged* (``degraded: false``) answer is bitwise equal to
  the fault-free single-process baseline over the same snapshot;
- no acked mutation is lost (it survives a post-mortem WAL replay) or
  doubled (ack seqs are unique and account for every durable append);
- the supervisor converges back to full worker quorum.

Worker boot costs ~1s (numpy import), so the suite keeps to a handful
of supervisor boots with small shards.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal

import pytest

from repro import obs
from repro.data.synthetic import synthetic_dataset
from repro.data.workload import knn_queries
from repro.index import snapshot as snapshot_io
from repro.index.sstree import SSTree
from repro.obs import names
from repro.robust import faults
from repro.serve.app import ServeApp
from repro.serve.smoke import request, run_smoke
from repro.serve.supervisor import Supervisor, SupervisorConfig
from repro.stream.engine import StreamingIndex

N, DIMENSION, K = 80, 3, 4
QUERIES = 6

#: Converging back to quorum after a SIGKILL must fit a respawn plus
#: one worker boot (~1s numpy import) with generous CI headroom.
CONVERGE_S = 30.0


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(N, DIMENSION, mu=0.15, seed=11)


@pytest.fixture(scope="module")
def snapshot_path(dataset, tmp_path_factory):
    tree = SSTree.bulk_load(dataset.items(), max_entries=8)
    path = tmp_path_factory.mktemp("procs") / "fixture.snap"
    snapshot_io.save(tree, path)
    return str(path)


@pytest.fixture(scope="module")
def query_bodies(dataset):
    spheres = knn_queries(dataset, count=QUERIES, seed=5)
    return [
        {
            "kind": "knn",
            "index": "default",
            "center": [float(c) for c in sphere.center],
            "radius": float(sphere.radius),
            "k": K,
        }
        for sphere in spheres
    ]


@pytest.fixture(scope="module")
def baseline(snapshot_path, query_bodies):
    """Fault-free single-process answers, keyed by query position.

    Workers run the very same :class:`ServeApp` handler stack, so a
    supervised unflagged answer must be *bitwise* equal to this.
    """
    from repro.serve.protocol import HttpRequest

    app = ServeApp.from_snapshots({"default": snapshot_path})

    async def go():
        answers = []
        for body in query_bodies:
            response = await app.handle(
                HttpRequest(
                    method="POST",
                    path="/query",
                    query={},
                    headers={},
                    body=json.dumps(body).encode(),
                )
            )
            payload = json.loads(response.body)
            assert response.status == 200 and payload["degraded"] is False
            answers.append(payload["result"])
        return answers

    try:
        return asyncio.run(go())
    finally:
        app.close(drain_s=0.0)


@pytest.fixture()
def stream_dir(tmp_path, dataset):
    directory = str(tmp_path / "stream")
    StreamingIndex.create(
        directory, list(dataset.items()), kind="sstree"
    ).close()
    return directory


def run_supervised(config: SupervisorConfig, scenario):
    """Boot a supervisor, run ``await scenario(sup, host, port)``, drain."""

    async def go():
        sup = Supervisor(config)
        host, port = await sup.start()
        try:
            return await scenario(sup, host, port)
        finally:
            await sup.drain_and_stop()

    with obs.enabled_scope(True), obs.scope():
        return asyncio.run(go()), obs.collect()


async def wait_for_quorum(host, port, *, full: bool = True) -> dict:
    """Poll /readyz until ready (and at full strength), else fail."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + CONVERGE_S
    body: dict = {}
    while loop.time() < deadline:
        status, _, raw = await request(host, port, "GET", "/readyz")
        body = json.loads(raw)
        workers = body["workers"]
        converged = body["ready"] and (
            not full
            or workers["query"]["live"] == workers["query"]["total"]
        )
        if status == 200 and converged:
            return body
        await asyncio.sleep(0.1)
    raise AssertionError(f"quorum never converged: {body}")


def check_invariant(responses, baseline):
    """The degradation invariant over collected (status, payload) pairs."""
    assert responses, "no load was applied"
    for status, _ in responses:
        assert status in {200, 206, 429, 503}, responses
    exact = 0
    for status, payload in responses:
        if status == 200 and payload.get("degraded") is False:
            assert payload["result"] == baseline[payload["_position"]]
            exact += 1
    return exact


class TestSigkillMatrix:
    def test_kills_mid_load_keep_answers_exact_and_acks_durable(
        self, snapshot_path, stream_dir, query_bodies, baseline
    ):
        config = SupervisorConfig(
            query_workers=2,
            snapshots={"default": snapshot_path},
            streams={"live": stream_dir},
            heartbeat_s=0.25,
            backoff_base_s=0.05,
            backoff_cap_s=0.5,
            drain_s=2.0,
        )
        acked: "list[tuple[int, object]]" = []
        mutation_statuses: "list[int]" = []

        async def scenario(sup: Supervisor, host, port):
            await wait_for_quorum(host, port)
            responses = []
            for round_no in range(3):
                for position, body in enumerate(query_bodies):
                    status, _, raw = await request(
                        host, port, "POST", "/query", body=body
                    )
                    payload = json.loads(raw) if raw else {}
                    payload["_position"] = position
                    responses.append((status, payload))
                key = f"chaos-{round_no}"
                status, _, raw = await request(
                    host, port, "POST", "/mutate",
                    body={
                        "index": "live",
                        "op": "insert",
                        "key": key,
                        "center": [50.0 + round_no, 50.0, 50.0],
                        "radius": 0.25,
                    },
                )
                mutation_statuses.append(status)
                if status == 200:
                    ack = json.loads(raw)
                    assert ack["acked"] is True
                    acked.append((ack["seq"], key))
                if round_no == 0:
                    os.kill(sup.worker_pids("query")[0], signal.SIGKILL)
                elif round_no == 1:
                    os.kill(sup.worker_pids("mutation")[0], signal.SIGKILL)
            converged = await wait_for_quorum(host, port)
            assert converged["workers"]["mutation"]["live"] is True
            restarts = sum(s["restarts"] for s in converged["workers"]["slots"])
            assert restarts >= 2  # both kills healed
            return responses

        responses, metrics = run_supervised(config, scenario)
        exact = check_invariant(responses, baseline)
        assert exact >= len(query_bodies)  # plenty of unflagged answers
        for status in mutation_statuses:
            assert status in {200, 429, 503}

        # Acked mutations: unique seqs (never doubled), and every ack
        # survives a post-mortem replay of the WAL (never lost).
        assert acked, "no mutation was ever acked"
        seqs = [seq for seq, _ in acked]
        assert len(set(seqs)) == len(seqs)
        replayed = StreamingIndex.open(stream_dir)
        try:
            assert replayed.last_seq >= max(seqs)
            surviving = {key for key, _ in replayed.effective_entries()}
            for _, key in acked:
                assert key in surviving
        finally:
            replayed.close()

        counters = metrics["counters"]
        assert counters.get(names.SERVE_WORKERS_EXITS, 0) >= 2
        assert counters.get(names.SERVE_WORKERS_RESPAWNS, 0) >= 2
        assert counters.get(names.SERVE_WORKERS_DRAINED) == 1


class TestWorkerKillSeam:
    def test_induced_kills_before_dispatch_fail_over(
        self, snapshot_path, query_bodies, baseline
    ):
        config = SupervisorConfig(
            query_workers=2,
            snapshots={"default": snapshot_path},
            backoff_base_s=0.05,
            backoff_cap_s=0.5,
        )

        async def scenario(sup: Supervisor, host, port):
            await wait_for_quorum(host, port)
            responses = []
            with faults.inject("worker_kill", "nan", every=4):
                for position, body in enumerate(query_bodies * 2):
                    status, _, raw = await request(
                        host, port, "POST", "/query", body=body
                    )
                    payload = json.loads(raw) if raw else {}
                    payload["_position"] = position % len(query_bodies)
                    responses.append((status, payload))
            await wait_for_quorum(host, port)
            return responses

        responses, metrics = run_supervised(config, scenario)
        check_invariant(responses, baseline)
        counters = metrics["counters"]
        assert counters.get(names.SERVE_WORKERS_KILLS, 0) >= 1
        assert counters.get(names.SERVE_WORKERS_FAILOVERS, 0) >= 1
        assert names.fault("worker_kill", "nan") in counters


class TestSmokeWorkersMode:
    def test_supervised_smoke_defaults_to_the_kill_seam_and_passes(self):
        summary = run_smoke(requests=9, every=4, seed=3, workers=2)
        assert summary["ok"], summary
        assert summary["workers"] == 2
        assert summary["seam"] == "worker_kill"
        assert summary["readyz_status"] == 200


class TestWorkerHeartbeatSeam:
    def test_heartbeat_misses_sigkill_and_respawn(self, snapshot_path):
        config = SupervisorConfig(
            query_workers=1,
            snapshots={"default": snapshot_path},
            heartbeat_s=0.1,
            backoff_base_s=0.05,
            backoff_cap_s=0.5,
        )

        async def scenario(sup: Supervisor, host, port):
            await wait_for_quorum(host, port)
            with faults.inject("worker_heartbeat", "raise") as handle:
                loop = asyncio.get_running_loop()
                deadline = loop.time() + 5.0
                while handle.hits == 0 and loop.time() < deadline:
                    await asyncio.sleep(0.05)
                assert handle.hits >= 1
            # Seam restored: the killed worker respawns and /readyz
            # converges back to quorum.
            converged = await wait_for_quorum(host, port)
            assert sum(
                s["restarts"] for s in converged["workers"]["slots"]
            ) >= 1

        _, metrics = run_supervised(config, scenario)
        counters = metrics["counters"]
        assert counters.get(names.SERVE_WORKERS_HEARTBEAT_MISSES, 0) >= 1
        assert counters.get(names.SERVE_WORKERS_KILLS, 0) >= 1
        assert counters.get(names.SERVE_WORKERS_RESPAWNS, 0) >= 1
