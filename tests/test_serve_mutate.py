"""Serve-layer streaming tests: POST /mutate, warm restarts, and slo.

Same harness as ``test_serve_app``: a real asyncio server on an
ephemeral port, full HTTP round trips.  The durability claim under test
is end-to-end — a 200 from ``/mutate`` means the record survives a
server restart over the same directory.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs
from repro.data.synthetic import synthetic_dataset
from repro.obs import export as obs_export
from repro.serve.app import ServeApp, start_server
from repro.serve.slo import aggregate
from repro.serve.slo import main as slo_main
from repro.serve.smoke import request
from repro.stream.engine import StreamingIndex

N, DIMENSION, K = 60, 3, 4


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(N, DIMENSION, mu=0.15, seed=13)


@pytest.fixture()
def stream_dir(tmp_path, dataset):
    directory = str(tmp_path / "stream")
    StreamingIndex.create(directory, list(dataset.items()), kind="sstree").close()
    return directory


def drive(app: ServeApp, scenario):
    async def go():
        server = await start_server(app)
        host, port = server.sockets[0].getsockname()[:2]
        try:
            return await scenario(host, port)
        finally:
            server.close()
            await server.wait_closed()

    with obs.enabled_scope(True), obs.scope():
        try:
            return asyncio.run(go()), obs.collect()
        finally:
            app.close()


def make_stream_app(stream_dir, **kwargs) -> ServeApp:
    app = ServeApp(**kwargs)
    state = app.load_stream("default", stream_dir)
    assert not state.quarantined, state.error
    return app


def mutate_body(**overrides):
    body = {
        "index": "default",
        "op": "insert",
        "key": 9001,
        "center": [100.0, 100.0, 100.0],
        "radius": 0.5,
    }
    body.update(overrides)
    return body


class TestMutateEndpoint:
    def test_insert_acks_with_monotone_seqs(self, stream_dir):
        async def scenario(host, port):
            first = await request(host, port, "POST", "/mutate",
                                  body=mutate_body())
            second = await request(host, port, "POST", "/mutate",
                                   body=mutate_body(key=9002))
            delete = await request(
                host, port, "POST", "/mutate",
                body={"index": "default", "op": "delete", "key": 9001},
            )
            return first, second, delete

        (first, second, delete), metrics = drive(
            make_stream_app(stream_dir), scenario
        )
        for status, _, _ in (first, second, delete):
            assert status == 200
        bodies = [json.loads(raw) for _, _, raw in (first, second, delete)]
        assert [b["seq"] for b in bodies] == [1, 2, 3]
        assert all(b["acked"] is True for b in bodies)
        assert bodies[2]["op"] == "delete"
        counters = metrics["counters"]
        assert counters["serve.mutations"] == 3
        assert counters["serve.mutations.acked"] == 3

    def test_mutation_worker_inherits_request_context(self, stream_dir):
        """Regression (DOM202): the executor hop runs under a copy of
        the request's context, so WAL metrics recorded inside the
        worker thread land in the request's contextvar-scoped obs
        registry instead of vanishing into the worker's empty context.
        """

        async def scenario(host, port):
            return await request(host, port, "POST", "/mutate",
                                 body=mutate_body())

        (status, _, _), metrics = drive(make_stream_app(stream_dir), scenario)
        assert status == 200
        counters = metrics["counters"]
        assert counters["wal.appends"] == 1
        assert counters["wal.fsyncs"] >= 1

    def test_acked_mutations_survive_a_server_restart(self, stream_dir, dataset):
        async def scenario(host, port):
            await request(host, port, "POST", "/mutate", body=mutate_body())
            gone = next(iter(dict(dataset.items())))
            await request(
                host, port, "POST", "/mutate",
                body={"index": "default", "op": "delete", "key": gone},
            )
            return gone

        gone, _ = drive(make_stream_app(stream_dir), scenario)

        # A second app over the same directory replays the WAL: the
        # acked insert is queryable, the acked delete never answers.
        async def after_restart(host, port):
            return await request(
                host, port, "POST", "/query",
                body={
                    "kind": "knn", "index": "default",
                    "center": [100.0, 100.0, 100.0], "radius": 0.5, "k": K,
                },
            )

        (status, _, raw), _ = drive(make_stream_app(stream_dir), after_restart)
        assert status == 200
        keys = json.loads(raw)["result"]["keys"]
        assert 9001 in keys
        assert gone not in keys

    @pytest.mark.parametrize(
        "body",
        [
            {"index": "default", "op": "upsert", "key": 1},
            mutate_body(center=[1.0, 2.0]),
            mutate_body(radius=-2.0),
            mutate_body(radius="wide"),
            {"index": "default", "op": "insert", "key": 1},
            {"index": "default", "op": "delete"},
            {"index": "default", "op": "delete", "key": [1, 2]},
        ],
    )
    def test_invalid_payloads_get_typed_400(self, stream_dir, body):
        async def scenario(host, port):
            return await request(host, port, "POST", "/mutate", body=body)

        (status, _, raw), metrics = drive(make_stream_app(stream_dir), scenario)
        assert status == 400
        parsed = json.loads(raw)
        assert parsed["type"] == "ValidationError"
        assert parsed["error"] == "validation"
        assert metrics["counters"]["serve.mutations.rejected"] == 1
        # The rejected payload never reached the WAL.
        with StreamingIndex.open(stream_dir) as stream:
            assert stream.last_seq == 0

    def test_snapshot_backed_index_is_immutable(self, tmp_path, dataset):
        from repro.index import snapshot as snapshot_io
        from repro.index.sstree import SSTree

        path = str(tmp_path / "frozen.snap")
        snapshot_io.save(SSTree.bulk_load(dataset.items()), path)
        app = ServeApp.from_snapshots({"default": path})

        async def scenario(host, port):
            return await request(host, port, "POST", "/mutate",
                                 body=mutate_body())

        (status, _, raw), _ = drive(app, scenario)
        assert status == 409
        assert json.loads(raw)["error"] == "immutable_index"

    def test_unknown_index_404_and_get_405(self, stream_dir):
        async def scenario(host, port):
            missing = await request(
                host, port, "POST", "/mutate",
                body=mutate_body(index="nope"),
            )
            wrong = await request(host, port, "GET", "/mutate")
            return missing, wrong

        (missing, wrong), _ = drive(make_stream_app(stream_dir), scenario)
        assert missing[0] == 404
        assert wrong[0] == 405

    def test_queries_merge_live_mutations(self, stream_dir):
        # An insert is visible to the very next query on the same app —
        # no compaction or restart required.
        async def scenario(host, port):
            await request(host, port, "POST", "/mutate", body=mutate_body())
            return await request(
                host, port, "POST", "/query",
                body={
                    "kind": "knn", "index": "default",
                    "center": [100.0, 100.0, 100.0], "radius": 0.4, "k": 1,
                },
            )

        (status, _, raw), _ = drive(make_stream_app(stream_dir), scenario)
        assert status == 200
        assert json.loads(raw)["result"]["keys"] == [9001]


class TestSloAggregation:
    def _event(self, tenant, status, duration_s=0.01):
        return obs_export.QueryEvent(
            kind="knn", duration_s=duration_s, answer_size=1,
            tenant=tenant, status=status,
        )

    def test_buckets_and_quantiles(self):
        events = (
            [self._event("standard", 200, 0.010 * (i + 1)) for i in range(10)]
            + [self._event("standard", 206, 0.5)]
            + [self._event("standard", 429)]
            + [self._event("standard", 400)]
            + [self._event("batch", 500)]
            + [obs_export.QueryEvent(kind="knn", duration_s=0.2, answer_size=1)]
        )
        table = aggregate(events)
        assert sorted(table) == ["batch", "standard", "unknown"]
        standard = table["standard"].to_dict()
        assert standard["requests"] == 13
        assert standard["ok"] == 10
        assert standard["degraded"] == 1
        assert standard["shed"] == 1
        assert standard["rejected"] == 1
        assert standard["errors"] == 0
        # Sheds/rejections contribute no latency samples.
        latency = standard["latency_s"]
        assert latency["p50"] == pytest.approx(0.06)
        assert latency["p99"] == 0.5
        assert table["batch"].errors == 1
        # Legacy events (no tenant/status) degrade to unknown/ok.
        assert table["unknown"].ok == 1

    def test_cli_round_trip(self, tmp_path, capsys):
        log_path = str(tmp_path / "events.jsonl")
        with obs_export.QueryEventLog.open(log_path) as log:
            for event in (
                self._event("standard", 200),
                self._event("standard", 429),
                self._event("interactive", 206),
            ):
                log.emit(event)
        assert slo_main([log_path]) == 0
        table_out = capsys.readouterr().out
        assert "standard" in table_out and "interactive" in table_out
        assert slo_main([log_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["standard"]["shed"] == 1
        assert payload["interactive"]["degraded"] == 1

    def test_unreadable_log_is_exit_1(self, tmp_path, capsys):
        assert slo_main([str(tmp_path / "missing.jsonl")]) == 1
        assert "slo error" in capsys.readouterr().err

    def test_serve_emits_tenant_and_status_fields(self, stream_dir, tmp_path):
        log_path = str(tmp_path / "serve-events.jsonl")
        app = make_stream_app(
            stream_dir, event_log=obs_export.QueryEventLog.open(log_path)
        )

        async def scenario(host, port):
            await request(host, port, "POST", "/mutate", body=mutate_body())
            await request(
                host, port, "POST", "/query",
                body={
                    "kind": "knn", "index": "default",
                    "center": [100.0, 100.0, 100.0], "radius": 0.4, "k": 1,
                },
            )
            await request(host, port, "POST", "/mutate",
                          body=mutate_body(radius=-1.0))

        drive(app, scenario)
        events = obs_export.read_events(log_path)
        statuses = sorted(event.status for event in events)
        assert statuses == [200, 200, 400]
        assert {event.tenant for event in events} == {"standard"}
        table = aggregate(events)
        assert table["standard"].ok == 2
        assert table["standard"].rejected == 1
