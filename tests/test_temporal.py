"""Tests for time-varying dominance (the paper's future-work direction)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core.temporal import (
    GrowingHypersphere,
    dominance_horizon,
    dominates_at,
)
from repro.exceptions import CriterionError, GeometryError
from repro.geometry.hypersphere import Hypersphere

SA = GrowingHypersphere(Hypersphere([0.0, 0.0], 1.0), rate=0.1)
SB = GrowingHypersphere(Hypersphere([20.0, 0.0], 1.0), rate=0.1)
SQ = GrowingHypersphere(Hypersphere([-2.0, 0.0], 0.5), rate=0.2)


class TestGrowingHypersphere:
    def test_snapshot(self):
        snap = SA.at(5.0)
        assert snap.radius == pytest.approx(1.5)
        assert np.array_equal(snap.center, SA.sphere.center)

    def test_negative_rate_rejected(self):
        with pytest.raises(GeometryError):
            GrowingHypersphere(Hypersphere([0.0], 1.0), rate=-0.1)

    def test_negative_time_rejected(self):
        with pytest.raises(GeometryError):
            SA.at(-1.0)

    def test_static_when_rate_zero(self):
        static = GrowingHypersphere(Hypersphere([1.0], 2.0))
        assert static.at(100.0).radius == 2.0


class TestHorizon:
    def test_dominance_eventually_lost(self):
        # Radii grow until the uncertainty swallows the separation.
        t_star = dominance_horizon(SA, SB, SQ, horizon=500.0)
        assert 0.0 < t_star < 500.0
        assert dominates_at(SA, SB, SQ, t_star * 0.99)
        assert not dominates_at(SA, SB, SQ, min(t_star * 1.01 + 1e-3, 500.0))

    def test_never_dominates(self):
        reversed_roles = dominance_horizon(SB, SA, SQ, horizon=10.0)
        assert reversed_roles == 0.0

    def test_always_dominates_within_horizon(self):
        frozen = GrowingHypersphere(Hypersphere([0.0, 0.0], 1.0))
        far = GrowingHypersphere(Hypersphere([1000.0, 0.0], 1.0))
        query = GrowingHypersphere(Hypersphere([-2.0, 0.0], 0.5))
        assert dominance_horizon(frozen, far, query, horizon=10.0) == 10.0

    def test_parameter_validation(self):
        with pytest.raises(CriterionError):
            dominance_horizon(SA, SB, SQ, horizon=0.0)
        with pytest.raises(CriterionError):
            dominance_horizon(SA, SB, SQ, horizon=1.0, tolerance=0.0)

    def test_tolerance_controls_precision(self):
        coarse = dominance_horizon(SA, SB, SQ, horizon=500.0, tolerance=1.0)
        fine = dominance_horizon(SA, SB, SQ, horizon=500.0, tolerance=1e-9)
        assert abs(coarse - fine) <= 1.0

    @given(
        st.floats(min_value=0.0, max_value=0.5),
        st.floats(min_value=0.0, max_value=0.5),
        st.floats(min_value=0.0, max_value=0.5),
        st.floats(min_value=3.0, max_value=40.0),
    )
    @settings(max_examples=30)
    def test_monotonicity(self, rate_a, rate_b, rate_q, separation):
        """Dominance, once lost, never returns (the bisection premise)."""
        sa = GrowingHypersphere(Hypersphere([0.0, 0.0], 0.5), rate_a)
        sb = GrowingHypersphere(Hypersphere([separation, 0.0], 0.5), rate_b)
        sq = GrowingHypersphere(Hypersphere([-1.0, 0.5], 0.3), rate_q)
        verdicts = [dominates_at(sa, sb, sq, t) for t in np.linspace(0, 60, 25)]
        # No False -> True transition anywhere.
        for early, late in zip(verdicts, verdicts[1:]):
            assert not (late and not early)
