"""Tests for weighted-Euclidean dominance (the paper's future-work)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core import get_criterion
from repro.core.weighted import WeightedEuclideanCriterion, weighted_dist
from repro.exceptions import CriterionError, DimensionalityMismatchError
from repro.geometry.hypersphere import Hypersphere


class TestWeightedDist:
    def test_reduces_to_euclidean(self):
        assert weighted_dist([0.0, 0.0], [3.0, 4.0], [1.0, 1.0]) == pytest.approx(5.0)

    def test_weights_applied(self):
        assert weighted_dist([0.0, 0.0], [1.0, 1.0], [4.0, 9.0]) == pytest.approx(
            np.sqrt(13.0)
        )

    def test_shape_mismatch(self):
        with pytest.raises(DimensionalityMismatchError):
            weighted_dist([0.0], [0.0, 1.0], [1.0, 1.0])


class TestCriterion:
    def test_validation(self):
        with pytest.raises(CriterionError):
            WeightedEuclideanCriterion([])
        with pytest.raises(CriterionError):
            WeightedEuclideanCriterion([1.0, 0.0])
        with pytest.raises(CriterionError):
            WeightedEuclideanCriterion([1.0, -2.0])
        with pytest.raises(CriterionError):
            WeightedEuclideanCriterion([[1.0], [2.0]])

    def test_weights_round_trip(self):
        crit = WeightedEuclideanCriterion([4.0, 0.25])
        assert np.allclose(crit.weights, [4.0, 0.25])

    def test_unit_weights_match_plain_hyperbola(self, rng):
        crit = WeightedEuclideanCriterion(np.ones(3))
        plain = get_criterion("hyperbola")
        for _ in range(100):
            spheres = [
                Hypersphere(rng.normal(0, 8, 3), float(abs(rng.normal(0, 2))))
                for _ in range(3)
            ]
            assert crit.dominates(*spheres) == plain.dominates(*spheres)

    def test_dimension_checked(self):
        crit = WeightedEuclideanCriterion([1.0, 1.0])
        with pytest.raises(DimensionalityMismatchError):
            crit.dominates(
                Hypersphere([0.0], 1.0),
                Hypersphere([5.0], 1.0),
                Hypersphere([-1.0], 0.1),
            )

    def test_weights_change_the_verdict(self):
        # Sb is farther along axis 0 but nearer along axis 1; weighting
        # axis 1 heavily flips which object wins.
        sa = Hypersphere([1.0, 10.0], 0.1)
        sb = Hypersphere([10.0, 1.0], 0.1)
        sq = Hypersphere([0.0, 0.0], 0.1)
        favour_axis0 = WeightedEuclideanCriterion([100.0, 0.01])
        favour_axis1 = WeightedEuclideanCriterion([0.01, 100.0])
        assert favour_axis0.dominates(sa, sb, sq)
        assert favour_axis1.dominates(sb, sa, sq)

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=2, max_size=5
        ),
        st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=40)
    def test_matches_explicit_rescaling(self, weights, seed):
        """The criterion must equal plain dominance in the scaled space."""
        d = len(weights)
        rng = np.random.default_rng(seed)
        spheres = [
            Hypersphere(rng.normal(0, 8, d), float(abs(rng.normal(0, 2))))
            for _ in range(3)
        ]
        crit = WeightedEuclideanCriterion(weights)
        scale = np.sqrt(np.asarray(weights))
        scaled = [Hypersphere(s.center * scale, s.radius) for s in spheres]
        plain = get_criterion("hyperbola")
        assert crit.dominates(*spheres) == plain.dominates(*scaled)

    def test_sampled_realisations_respect_verdict(self, rng):
        """Monte-Carlo check of the weighted-metric semantics."""
        weights = np.array([4.0, 0.5, 1.0])
        crit = WeightedEuclideanCriterion(weights)
        scale = np.sqrt(weights)
        found_positive = 0
        for _ in range(200):
            sa = Hypersphere(rng.normal(0, 4, 3), float(rng.uniform(0, 1)))
            direction = rng.normal(0, 1, 3)
            direction /= np.linalg.norm(direction)
            sb = Hypersphere(
                sa.center + direction * rng.uniform(2, 10),
                float(rng.uniform(0, 1)),
            )
            sq = Hypersphere(
                sa.center - direction * rng.uniform(0, 4),
                float(rng.uniform(0, 1)),
            )
            if not crit.dominates(sa, sb, sq):
                continue
            found_positive += 1
            # Sample realisations *in the weighted metric* (scaled space).
            def sample(s):
                return Hypersphere(s.center * scale, s.radius).sample(rng, 8)

            qs, as_, bs = sample(sq), sample(sa), sample(sb)
            for q in qs:
                for a in as_:
                    for b in bs:
                        assert np.linalg.norm(a - q) < np.linalg.norm(b - q)
        assert found_positive > 0  # the check must actually exercise
