"""The hand-rolled HTTP layer: parsing, limits, typed 4xx rejection."""

from __future__ import annotations

import asyncio

import pytest

from repro.exceptions import ProtocolError, ReproError, ServeError
from repro.serve.protocol import (
    MAX_BODY_BYTES,
    HttpRequest,
    HttpResponse,
    json_response,
    read_request,
)


def _parse(raw: bytes) -> HttpRequest:
    async def go() -> HttpRequest:
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


def _parse_error(raw: bytes) -> ProtocolError:
    with pytest.raises(ProtocolError) as excinfo:
        _parse(raw)
    return excinfo.value


class TestRequestParsing:
    def test_get_with_query_string(self):
        request = _parse(b"GET /metrics?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/metrics"
        assert request.query == {"verbose": "1"}
        assert request.header("host") == "x"
        assert request.header("HOST") == "x"  # lookup is case-insensitive
        assert request.body == b""

    def test_post_with_body(self):
        request = _parse(
            b"POST /query HTTP/1.1\r\nContent-Length: 9\r\n\r\n"
            b'{"k": 3}\n'
        )
        assert request.method == "POST"
        assert request.body == b'{"k": 3}\n'
        assert request.json() == {"k": 3}

    def test_json_rejects_non_object_and_garbage(self):
        request = _parse(
            b"POST / HTTP/1.1\r\nContent-Length: 7\r\n\r\n[1,2,3]"
        )
        with pytest.raises(ProtocolError, match="object"):
            request.json()
        request = _parse(b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\n{{{{")
        with pytest.raises(ProtocolError, match="JSON"):
            request.json()
        empty = _parse(b"POST / HTTP/1.1\r\n\r\n")
        with pytest.raises(ProtocolError, match="empty"):
            empty.json()

    def test_malformed_request_line(self):
        error = _parse_error(b"GETHTTP/1.1\r\n\r\n")
        assert getattr(error, "status", 400) == 400

    def test_unsupported_method_is_405(self):
        error = _parse_error(b"DELETE / HTTP/1.1\r\n\r\n")
        assert error.status == 405  # type: ignore[attr-defined]

    def test_unsupported_version_rejected(self):
        _parse_error(b"GET / SPDY/9\r\n\r\n")

    def test_oversized_body_is_413(self):
        error = _parse_error(
            f"POST / HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        assert error.status == 413  # type: ignore[attr-defined]

    def test_too_many_headers_is_431(self):
        headers = "".join(f"h{i}: v\r\n" for i in range(200))
        error = _parse_error(
            f"GET / HTTP/1.1\r\n{headers}\r\n".encode()
        )
        assert error.status == 431  # type: ignore[attr-defined]

    def test_negative_and_malformed_content_length(self):
        _parse_error(b"POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n")
        _parse_error(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")

    def test_truncated_body_rejected(self):
        _parse_error(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")

    def test_protocol_error_is_typed(self):
        # The serve exception family hangs off ReproError so callers
        # catching the library root see protocol failures too.
        assert issubclass(ProtocolError, ServeError)
        assert issubclass(ServeError, ReproError)


class TestResponseEncoding:
    def test_encode_roundtrip_headers(self):
        response = json_response(
            429, {"error": "shed"}, headers={"Retry-After": "0.5"}
        )
        wire = response.encode().decode("latin-1")
        head, _, body = wire.partition("\r\n\r\n")
        assert head.startswith("HTTP/1.1 429 Too Many Requests")
        assert "Retry-After: 0.5" in head
        assert "Connection: close" in head
        assert f"Content-Length: {len(body.encode())}" in head
        assert '"error": "shed"' in body

    def test_unknown_status_still_encodes(self):
        assert b"HTTP/1.1 299 Unknown" in HttpResponse(status=299).encode()
