"""Tests for the experiment harness (metrics, runners, reports)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import synthetic_dataset
from repro.exceptions import ExperimentError
from repro.experiments.config import PaperDefaults
from repro.experiments.dominance import run_dominance_experiment
from repro.experiments.knn import run_knn_experiment
from repro.experiments.metrics import (
    BinaryMetrics,
    binary_metrics,
    mean_and_std,
    time_callable,
)
from repro.experiments.report import format_value, render_table
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.table1 import run_table1


class TestMetrics:
    def test_confusion_counts(self):
        predicted = np.array([True, True, False, False])
        truth = np.array([True, False, True, False])
        scores = binary_metrics(predicted, truth)
        assert (
            scores.true_positives,
            scores.false_positives,
            scores.false_negatives,
            scores.true_negatives,
        ) == (1, 1, 1, 1)
        assert scores.precision == 50.0
        assert scores.recall == 50.0

    def test_edge_conventions(self):
        no_claims = BinaryMetrics(0, 0, 3, 7)
        assert no_claims.precision == 100.0
        nothing_true = BinaryMetrics(0, 2, 0, 8)
        assert nothing_true.recall == 100.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            binary_metrics(np.ones(3, dtype=bool), np.ones(4, dtype=bool))

    def test_time_callable(self):
        samples = time_callable(lambda: sum(range(100)), repeats=3)
        assert len(samples) == 3
        assert all(s >= 0.0 for s in samples)
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_mean_and_std(self):
        mean, std = mean_and_std([1.0, 3.0])
        assert mean == 2.0 and std == 1.0
        with pytest.raises(ValueError):
            mean_and_std([])


class TestReport:
    def test_render_alignment(self):
        table = render_table(
            ("name", "value"),
            [("alpha", 1.0), ("a-much-longer-name", 123456.0)],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert len({len(l) for l in lines[2:4]}) == 1  # aligned widths

    def test_row_width_validation(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [("only-one",)])

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(0.0) == "0"
        assert format_value(1.5e-06) == "1.500e-06"
        assert format_value("x") == "x"
        assert format_value(12) == "12"


class TestDominanceExperiment:
    def test_measurements_shape_and_flags(self):
        dataset = synthetic_dataset(300, 3, mu=10.0, seed=0)
        measurements = run_dominance_experiment(
            dataset, label="t", workload_size=300, repeats=1, seed=0
        )
        by_name = {m.criterion: m for m in measurements}
        assert set(by_name) == {"hyperbola", "minmax", "mbr", "gp", "trigonometric"}
        # The ground truth is hyperbola, so its scores are perfect.
        assert by_name["hyperbola"].precision == 100.0
        assert by_name["hyperbola"].recall == 100.0
        # Correct criteria never lose precision; sound ones never recall.
        for name in ("minmax", "mbr", "gp"):
            assert by_name[name].precision == 100.0
        assert by_name["trigonometric"].recall == 100.0
        for m in measurements:
            assert m.seconds_per_query > 0.0
            assert m.workload_size == 300

    def test_batch_timing_mode(self):
        dataset = synthetic_dataset(200, 2, mu=5.0, seed=0)
        measurements = run_dominance_experiment(
            dataset,
            label="t",
            workload_size=200,
            repeats=1,
            timing="batch",
            criteria=("hyperbola", "minmax"),
            seed=0,
        )
        assert len(measurements) == 2

    def test_invalid_timing_mode(self):
        dataset = synthetic_dataset(50, 2, seed=0)
        with pytest.raises(ExperimentError):
            run_dominance_experiment(
                dataset, label="t", workload_size=10, repeats=1, timing="gpu"
            )


class TestKNNExperiment:
    def test_measurement_grid(self):
        dataset = synthetic_dataset(400, 3, mu=8.0, seed=0)
        measurements = run_knn_experiment(
            dataset, label="t", k=5, queries=3, seed=0
        )
        assert len(measurements) == 8  # 2 strategies x 4 criteria
        by_algo = {m.algorithm: m for m in measurements}
        assert by_algo["HS(Hyper)"].precision == 100.0
        assert by_algo["DF(Hyper)"].precision == 100.0
        for m in measurements:
            assert 0.0 < m.seconds_per_query
            assert 0.0 <= m.precision <= 100.0
            assert 0.0 <= m.coverage <= 100.0
            assert m.queries == 3

    def test_requires_queries(self):
        dataset = synthetic_dataset(50, 2, seed=0)
        with pytest.raises(ExperimentError):
            run_knn_experiment(dataset, label="t", queries=0)


class TestTable1:
    def test_flags_match_claims(self):
        rows = run_table1(workload_size=600, dimension=4, seed=0)
        assert len(rows) == 5
        for row in rows:
            assert row.observed_correct == row.claimed_correct, row.criterion
            assert row.observed_sound == row.claimed_sound, row.criterion


class TestRunnerRegistry:
    def test_every_paper_artifact_has_a_runner(self):
        expected = {"table1", "claims", "ablations"} | {
            f"fig{i}" for i in range(8, 17)
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")

    def test_defaults_scaling(self):
        scaled = PaperDefaults().scaled(0.01)
        assert scaled.n == 1000
        assert scaled.workload_size == 100
        assert scaled.n_values[0] == 200
        with pytest.raises(ValueError):
            PaperDefaults().scaled(0.0)

    def test_claims_runner_all_hold(self):
        report = run_experiment("claims", scale=0.02, seed=0)
        assert report.rows
        assert all(row[2] for row in report.rows)  # every claim holds

    @pytest.mark.parametrize("name", ("table1", "fig9", "fig12"))
    def test_dominance_runners_smoke(self, name):
        report = run_experiment(name, scale=0.002, seed=0)
        assert report.experiment == name
        assert report.rows
        rendered = report.render()
        assert report.title in rendered
        payload = report.to_dict()
        assert payload["experiment"] == name
        assert len(payload["rows"]) == len(report.rows)

    def test_knn_runner_smoke(self):
        report = run_experiment("fig14", scale=0.001, seed=0)
        # 4 k-values x 8 algorithm combinations
        assert len(report.rows) == 32
        hyper_rows = [r for r in report.rows if r[1] == "HS(Hyper)"]
        assert all(row[3] == 100.0 for row in hyper_rows)  # precision

    def test_ablations_runner_smoke(self):
        report = run_experiment("ablations", scale=0.01, seed=0)
        studies = {row[0] for row in report.rows}
        assert studies == {"quartic", "kernels", "cascade", "knn-algorithm", "index"}
        two_phase = [r for r in report.rows if r[1] == "two-phase"]
        assert two_phase and "coverage 100.0%" in two_phase[0][3]
