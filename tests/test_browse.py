"""Tests for incremental distance browsing."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.data.synthetic import synthetic_dataset
from repro.geometry.hypersphere import Hypersphere
from repro.index import LinearIndex, MTree, SSTree, VPTree
from repro.queries import browse
from repro.resilience.budget import Budget
from repro.resilience.budget import scope as budget_scope


@pytest.fixture(scope="module")
def world():
    dataset = synthetic_dataset(400, 3, mu=5.0, seed=6)
    query = dataset.sphere(123).with_radius(2.0)
    return dataset, query


def indexes(dataset):
    items = list(dataset.items())
    return {
        "sstree": SSTree.bulk_load(items),
        "vptree": VPTree.build(items),
        "mtree": MTree.build(items),
        "linear": LinearIndex(items),
    }


class TestOrdering:
    def test_nondecreasing_and_complete(self, world):
        dataset, query = world
        flat = LinearIndex(dataset.items())
        expected_gaps = np.sort(flat.min_dists(query))
        for name, index in indexes(dataset).items():
            out = list(browse(index, query))
            assert len(out) == len(dataset), name
            gaps = [gap for _, _, gap in out]
            assert all(a <= b + 1e-12 for a, b in zip(gaps, gaps[1:])), name
            assert np.allclose(gaps, expected_gaps), name

    def test_reported_gap_matches_geometry(self, world):
        from repro.geometry.distance import min_dist

        dataset, query = world
        tree = SSTree.bulk_load(dataset.items())
        for key, sphere, gap in itertools.islice(browse(tree, query), 25):
            assert gap == pytest.approx(min_dist(sphere, query))

    def test_lazy_prefix_is_cheap(self, world):
        """Taking the first item must not enumerate the whole tree."""
        dataset, query = world
        tree = SSTree.bulk_load(dataset.items(), max_entries=8)
        iterator = browse(tree, query)
        first_key, first_sphere, first_gap = next(iterator)
        flat = LinearIndex(dataset.items())
        assert first_gap == pytest.approx(float(flat.min_dists(query).min()))

    def test_matches_knn_by_maxdist_prefix_semantics(self, world):
        """browse is ordered by MinDist — the pruning order of Section 6."""
        dataset, query = world
        tree = SSTree.bulk_load(dataset.items())
        prefix = [key for key, _, _ in itertools.islice(browse(tree, query), 10)]
        flat = LinearIndex(dataset.items())
        best10 = set(np.argsort(flat.min_dists(query), kind="stable")[:10])
        # Ties at equal MinDist may reorder; compare as multisets of gaps.
        got = sorted(flat.min_dists(query)[list(map(flat.keys.index, prefix))])
        want = sorted(flat.min_dists(query)[list(best10)])
        assert np.allclose(got, want)


class TestBudgetedBrowse:
    """Regression (DOM206): browsing is metered like every traversal.

    On budget exhaustion the generator stops; the prefix already
    yielded is still sorted and still correct.
    """

    def test_linear_stops_with_sorted_prefix(self, world):
        dataset, query = world
        flat = LinearIndex(dataset.items())
        full = [key for key, _, _ in browse(flat, query)]
        with budget_scope(Budget(max_candidates=7)):
            out = [key for key, _, _ in browse(flat, query)]
        assert out == full[:7]

    def test_tree_stops_with_sorted_prefix(self, world):
        dataset, query = world
        tree = SSTree.bulk_load(dataset.items(), max_entries=8)
        full = list(browse(tree, query))
        with budget_scope(Budget(max_candidates=9)):
            out = list(browse(tree, query))
        assert len(out) == 9
        assert out == full[:9]
        gaps = [gap for _, _, gap in out]
        assert all(a <= b + 1e-12 for a, b in zip(gaps, gaps[1:]))

    def test_zero_budget_yields_nothing(self, world):
        dataset, query = world
        for index in (LinearIndex(dataset.items()),
                      SSTree.bulk_load(dataset.items())):
            with budget_scope(Budget(max_candidates=0)):
                assert list(browse(index, query)) == []

    def test_no_budget_in_scope_is_unmetered(self, world):
        dataset, query = world
        tree = SSTree.bulk_load(dataset.items())
        assert len(list(browse(tree, query))) == len(dataset)
