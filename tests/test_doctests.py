"""Run every doctest in the package so docstring examples stay honest."""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_all_doctests_pass():
    attempted = 0
    for module in iter_modules():
        result = doctest.testmod(module, verbose=False)
        attempted += result.attempted
        assert result.failed == 0, f"doctest failure in {module.__name__}"
    assert attempted >= 8  # the package does ship examples
