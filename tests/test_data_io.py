"""Tests for dataset persistence (.npz save/load)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset, save_dataset, synthetic_dataset
from repro.exceptions import DatasetError


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        original = synthetic_dataset(120, 4, mu=7.0, seed=1)
        path = save_dataset(original, tmp_path / "ds.npz")
        loaded = load_dataset(path)
        assert loaded.name == original.name
        assert np.array_equal(loaded.centers, original.centers)
        assert np.array_equal(loaded.radii, original.radii)

    def test_suffix_appended(self, tmp_path):
        original = synthetic_dataset(10, 2, seed=0)
        path = save_dataset(original, tmp_path / "plain")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_directories_created(self, tmp_path):
        original = synthetic_dataset(10, 2, seed=0)
        path = save_dataset(original, tmp_path / "deep" / "nested" / "ds")
        assert path.exists()

    def test_loaded_dataset_is_usable(self, tmp_path):
        from repro.index import SSTree

        original = synthetic_dataset(60, 3, seed=2)
        loaded = load_dataset(save_dataset(original, tmp_path / "d"))
        tree = SSTree.bulk_load(loaded.items())
        assert len(tree) == 60


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset(tmp_path / "absent.npz")

    def test_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(DatasetError):
            load_dataset(path)

    def test_invalid_payload_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, centers=np.zeros((3, 2)), radii=-np.ones(3))
        with pytest.raises(DatasetError):
            load_dataset(path)  # Dataset validation fires
