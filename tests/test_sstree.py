"""Unit and property tests for the SS-tree index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.exceptions import IndexStructureError
from repro.geometry.hypersphere import Hypersphere
from repro.index.sstree import SSTree


def make_items(rng, n: int, d: int, radius_scale: float = 1.0):
    return [
        (
            i,
            Hypersphere(
                rng.normal(0.0, 10.0, d), float(abs(rng.normal(0.0, radius_scale)))
            ),
        )
        for i in range(n)
    ]


class TestConstruction:
    def test_parameters_validated(self):
        with pytest.raises(IndexStructureError):
            SSTree(0)
        with pytest.raises(IndexStructureError):
            SSTree(2, max_entries=3)

    def test_empty_tree(self):
        tree = SSTree(3)
        assert len(tree) == 0
        assert tree.height == 1
        assert list(tree) == []

    def test_insert_wrong_dimension(self):
        tree = SSTree(2)
        with pytest.raises(IndexStructureError):
            tree.insert("x", Hypersphere([0.0], 1.0))

    def test_bulk_load_empty_rejected(self):
        with pytest.raises(IndexStructureError):
            SSTree.bulk_load([])

    def test_incremental_growth(self, rng):
        tree = SSTree(3, max_entries=8)
        items = make_items(rng, 300, 3)
        for i, (key, sphere) in enumerate(items):
            tree.insert(key, sphere)
            assert len(tree) == i + 1
        tree.validate()
        assert tree.height >= 2
        assert sorted(key for key, _ in tree) == sorted(k for k, _ in items)

    def test_bulk_load_various_sizes(self, rng):
        # Sizes chosen around capacity boundaries, including the
        # remainder-distribution edge (n = capacity*k + 1).
        for n in (1, 2, 16, 17, 33, 100, 161, 257):
            items = make_items(rng, n, 2)
            tree = SSTree.bulk_load(items, max_entries=16)
            tree.validate()
            assert len(tree) == n
            assert sorted(key for key, _ in tree) == list(range(n))

    def test_duplicate_centers_handled(self):
        items = [(i, Hypersphere([1.0, 1.0], 0.5)) for i in range(40)]
        tree = SSTree.bulk_load(items, max_entries=8)
        tree.validate()
        incremental = SSTree(2, max_entries=8)
        for key, sphere in items:
            incremental.insert(key, sphere)
        incremental.validate()


class TestInvariants:
    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=4, max_value=24),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30)
    def test_insertion_preserves_invariants(self, n, d, cap, seed):
        rng = np.random.default_rng(seed)
        tree = SSTree(d, max_entries=cap)
        for key, sphere in make_items(rng, n, d):
            tree.insert(key, sphere)
        tree.validate()
        assert len(tree) == n

    @given(
        st.integers(min_value=1, max_value=400),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30)
    def test_bulk_load_preserves_invariants(self, n, d, seed):
        rng = np.random.default_rng(seed)
        tree = SSTree.bulk_load(make_items(rng, n, d))
        tree.validate()
        assert len(tree) == n

    def test_covering_radius_wraps_every_object(self, rng):
        items = make_items(rng, 500, 3)
        tree = SSTree.bulk_load(items)
        root = tree.root.sphere
        for _, sphere in items:
            gap = float(np.linalg.norm(sphere.center - root.center))
            assert gap + sphere.radius <= root.radius + 1e-6

    def test_node_bounds_bracket_object_distances(self, rng):
        """Node MinDist/MaxDist must bound every member's distances."""
        from repro.geometry.distance import max_dist, min_dist

        items = make_items(rng, 300, 3)
        tree = SSTree.bulk_load(items, max_entries=8)
        query = Hypersphere(rng.normal(0.0, 10.0, 3), 2.0)

        def walk(node):
            lower = node.min_dist(query)
            upper = node.max_dist(query)
            if node.is_leaf:
                for _, sphere in node.entries:
                    assert min_dist(sphere, query) >= lower - 1e-9
                    assert max_dist(sphere, query) <= upper + 1e-9
            else:
                for child in node.children:
                    walk(child)

        walk(tree.root)


class TestQueries:
    def test_range_query_matches_linear_scan(self, rng):
        items = make_items(rng, 400, 2)
        tree = SSTree.bulk_load(items, max_entries=8)
        for _ in range(10):
            query = Hypersphere(rng.normal(0.0, 10.0, 2), float(rng.uniform(0, 6)))
            found = {key for key, _ in tree.range_query(query)}
            expected = {
                key for key, sphere in items if sphere.overlaps(query)
            }
            assert found == expected

    def test_range_query_on_insert_built_tree(self, rng):
        items = make_items(rng, 200, 3)
        tree = SSTree(3, max_entries=8)
        for key, sphere in items:
            tree.insert(key, sphere)
        query = Hypersphere(np.zeros(3), 5.0)
        found = {key for key, _ in tree.range_query(query)}
        expected = {key for key, sphere in items if sphere.overlaps(query)}
        assert found == expected


class TestStatistics:
    def test_height_and_node_count_grow(self, rng):
        small = SSTree.bulk_load(make_items(rng, 10, 2), max_entries=8)
        large = SSTree.bulk_load(make_items(rng, 1000, 2), max_entries=8)
        assert large.height > small.height
        assert large.node_count() > small.node_count()

    def test_validate_detects_corruption(self, rng):
        tree = SSTree.bulk_load(make_items(rng, 100, 2), max_entries=8)
        tree.root.radius = 0.001  # break the covering invariant
        with pytest.raises(IndexStructureError):
            tree.validate()

    def test_validate_detects_count_corruption(self, rng):
        tree = SSTree.bulk_load(make_items(rng, 100, 2), max_entries=8)
        tree.root.count = 7
        with pytest.raises(IndexStructureError):
            tree.validate()


class TestRemoval:
    def test_remove_existing_entry(self, rng):
        items = make_items(rng, 100, 3)
        tree = SSTree.bulk_load(items, max_entries=8)
        key, sphere = items[42]
        assert tree.remove(key, sphere)
        tree.validate()
        assert len(tree) == 99
        assert key not in {k for k, _ in tree}

    def test_remove_missing_entry(self, rng):
        items = make_items(rng, 50, 2)
        tree = SSTree.bulk_load(items, max_entries=8)
        assert not tree.remove("ghost", Hypersphere([0.0, 0.0], 1.0))
        assert len(tree) == 50
        tree.validate()

    def test_remove_wrong_dimension(self, rng):
        tree = SSTree.bulk_load(make_items(rng, 10, 2))
        import pytest as _pytest

        with _pytest.raises(IndexStructureError):
            tree.remove(0, Hypersphere([0.0], 1.0))

    def test_remove_everything(self, rng):
        items = make_items(rng, 120, 2)
        tree = SSTree.bulk_load(items, max_entries=8)
        order = list(items)
        rng.shuffle(order)
        for i, (key, sphere) in enumerate(order):
            assert tree.remove(key, sphere), key
            tree.validate()
            assert len(tree) == len(items) - i - 1
        assert list(tree) == []

    def test_interleaved_insert_remove(self, rng):
        tree = SSTree(3, max_entries=8)
        alive = {}
        items = make_items(rng, 400, 3)
        for step, (key, sphere) in enumerate(items):
            tree.insert(key, sphere)
            alive[key] = sphere
            if step % 3 == 2:  # remove a random survivor
                victim = list(alive)[int(rng.integers(len(alive)))]
                assert tree.remove(victim, alive.pop(victim))
        tree.validate()
        assert {k for k, _ in tree} == set(alive)
        assert len(tree) == len(alive)

    def test_queries_correct_after_removals(self, rng):
        from repro.queries.knn import knn_query, knn_reference

        items = make_items(rng, 300, 2)
        tree = SSTree.bulk_load(items, max_entries=8)
        survivors = dict(items)
        for key, sphere in items[::3]:
            tree.remove(key, sphere)
            del survivors[key]
        query = Hypersphere([0.0, 0.0], 1.0)
        expected = knn_reference(list(survivors.items()), query, 5).key_set()
        got = knn_query(tree, query, 5, algorithm="two-phase")
        assert got.key_set() == expected
