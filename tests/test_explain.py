"""Tests for the per-query EXPLAIN facility (:mod:`repro.queries.explain`).

Covers the determinism contract (two identical seeded queries produce
identical signatures), the structured content (per-level node accesses,
cascade tiers, pruning effectiveness), answer equivalence with and
without ``explain=True``, budgeted/partial capture, ambient-registry
isolation, and the ``repro explain`` CLI.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.data.synthetic import synthetic_dataset
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.index.sstree import SSTree
from repro.queries.dominating import top_k_dominating
from repro.queries.explain import ExplainedResult, QueryExplain
from repro.queries.knn import KNNResult, knn_query
from repro.queries.rknn import rnn_candidates
from repro.resilience import Budget
from repro.resilience import scope as budget_scope


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture()
def world():
    dataset = synthetic_dataset(300, 3, seed=5)
    tree = SSTree.bulk_load(dataset.items())
    query = Hypersphere(np.asarray(dataset.centers[0]), 0.4)
    return dataset, tree, query


class TestKnnExplain:
    def test_off_by_default_returns_plain_result(self, world):
        _, tree, query = world
        result = knn_query(tree, query, 5)
        assert isinstance(result, KNNResult)

    def test_explained_answer_matches_plain_answer(self, world):
        _, tree, query = world
        plain = knn_query(tree, query, 5)
        explained = knn_query(tree, query, 5, explain=True)
        assert isinstance(explained, ExplainedResult)
        assert isinstance(explained.explain, QueryExplain)
        assert sorted(map(str, explained.keys)) == sorted(map(str, plain.keys))
        assert explained.distk == plain.distk  # attribute forwarding

    def test_identical_seeded_queries_have_identical_signatures(self, world):
        _, tree, query = world
        first = knn_query(tree, query, 5, explain=True).explain
        second = knn_query(tree, query, 5, explain=True).explain
        assert first.signature() == second.signature()
        # Identical content, not just identical shape.
        assert json.dumps(first.signature(), sort_keys=True) == json.dumps(
            second.signature(), sort_keys=True
        )

    def test_per_level_node_accesses_sum_to_total(self, world):
        _, tree, query = world
        detail = knn_query(tree, query, 5, explain=True).explain
        assert detail.nodes_by_level  # tree traversal: levels recorded
        assert 0 in detail.nodes_by_level  # the root was visited
        assert (
            sum(detail.nodes_by_level.values())
            == detail.traversal["nodes_visited"]
        )

    def test_cascade_tiers_add_up(self, world):
        _, tree, query = world
        detail = knn_query(
            tree, query, 5, criterion="cascade", explain=True
        ).explain
        assert detail.cascade["calls"] > 0
        tiers = (
            detail.cascade.get("overlap_reject", 0)
            + detail.cascade.get("minmax_fast_accept", 0)
            + detail.cascade.get("minmax_fast_reject", 0)
            + detail.cascade.get("hyperbola_fall_through", 0)
        )
        assert tiers == detail.cascade["calls"]

    def test_pruning_effectiveness_between_zero_and_one(self, world):
        _, tree, query = world
        detail = knn_query(tree, query, 5, explain=True).explain
        assert 0.0 <= detail.pruning_effectiveness <= 1.0

    def test_ambient_registry_untouched(self, world):
        _, tree, query = world
        with obs.enabled_scope(), obs.scope():
            knn_query(tree, query, 5, explain=True)
            counters = obs.collect()["counters"]
        # The capture ran under a private scope: nothing leaked out.
        assert "explain.queries" not in counters
        assert "hyperbola.calls" not in counters

    def test_two_phase_and_df_capture_levels(self, world):
        _, tree, query = world
        for kwargs in (
            {"strategy": "df"},
            {"algorithm": "two-phase"},
        ):
            detail = knn_query(tree, query, 5, explain=True, **kwargs).explain
            assert detail.nodes_by_level

    def test_render_mentions_the_key_sections(self, world):
        _, tree, query = world
        text = knn_query(
            tree, query, 5, criterion="cascade", explain=True
        ).explain.render()
        assert "KNN explain" in text
        assert "traversal:" in text
        assert "pruning:" in text
        assert "cascade:" in text
        assert "budget:" in text

    def test_budgeted_query_reports_partial(self, world):
        _, tree, query = world
        with budget_scope(Budget(max_candidates=10)):
            explained = knn_query(tree, query, 5, explain=True)
        detail = explained.explain
        assert detail.budget is not None
        assert not detail.budget["complete"]
        assert detail.budget["candidates_charged"] > 0
        assert "PARTIAL" in detail.render()

    def test_ladder_counters_for_verified_criterion(self, world):
        _, tree, query = world
        detail = knn_query(
            tree, query, 5, criterion="verified", explain=True
        ).explain
        assert detail.ladder
        assert all(
            key.startswith("verified.stage.") for key in detail.ladder
        )

    def test_to_dict_is_json_serialisable(self, world):
        _, tree, query = world
        payload = knn_query(tree, query, 5, explain=True).explain.to_dict()
        json.dumps(payload)  # must not raise
        assert payload["kind"] == "knn"
        assert "duration_s" in payload


class TestOtherKindsExplain:
    def test_rknn_explain(self, world):
        dataset, _, query = world
        flat = LinearIndex(dataset.items())
        plain = rnn_candidates(flat, query)
        explained = rnn_candidates(flat, query, explain=True)
        assert list(plain) == list(explained)
        assert explained.explain.kind == "rknn"
        assert (
            explained.explain.signature()
            == rnn_candidates(flat, query, explain=True).explain.signature()
        )

    def test_dominating_explain(self, world):
        dataset, _, query = world
        flat = LinearIndex(dataset.items())
        plain = top_k_dominating(flat, query, 3)
        explained = top_k_dominating(flat, query, 3, explain=True)
        assert [s.key for s in plain] == [s.key for s in explained]
        assert explained.explain.kind == "dominating"
        assert explained.explain.answer_size == 3


class TestExplainCli:
    def test_text_render(self, capsys):
        assert cli_main(["explain", "knn", "--n", "120", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "KNN explain" in out
        assert "traversal:" in out

    def test_json_output(self, capsys):
        assert (
            cli_main(
                ["explain", "dominating", "--n", "60", "--k", "2", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "dominating"
        assert payload["answer_size"] == 2

    def test_rknn_kind(self, capsys):
        assert cli_main(["explain", "rknn", "--n", "60"]) == 0
        assert "RKNN explain" in capsys.readouterr().out
